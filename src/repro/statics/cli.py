"""``python -m repro statics`` — the static-analysis command line.

::

    python -m repro statics check
    python -m repro statics check --protocol guided-mst --format json
    python -m repro statics check --write-baseline
    python -m repro statics rules

``check`` exits 0 when every finding is waived or baselined, 1 when any
finding is active, 2 on usage errors — so CI can gate on it directly.
``--out PATH`` writes the JSON report regardless of format, for artifact
upload.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.statics.analyzer import (
    DEFAULT_BASELINE,
    analyze_registry,
    finalize,
)
from repro.statics.model import write_baseline
from repro.statics.report import build_report, render_ascii
from repro.statics.rules import RULE_CATALOG

__all__ = ["main", "register_statics"]


def add_check_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", action="append", metavar="NAME",
                        help="restrict to one registry protocol "
                             "(repeatable; default: all)")
    parser.add_argument("--format", choices=("ascii", "json"),
                        default="ascii",
                        help="stdout rendering (default: ascii)")
    parser.add_argument("--baseline", metavar="PATH",
                        default=str(DEFAULT_BASELINE),
                        help="committed baseline of acknowledged findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="acknowledge every current finding into "
                             "--baseline and exit 0")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the JSON report to PATH "
                             "(the CI artifact)")
    parser.add_argument("--no-runtime", action="store_true",
                        help="skip the ComposedProtocol bridge audit")


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.experiments.registry import PROTOCOLS
    names = args.protocol
    if names:
        unknown = [n for n in names if n not in PROTOCOLS]
        if unknown:
            print(f"error: unknown protocol(s): {', '.join(unknown)} "
                  f"(known: {', '.join(sorted(PROTOCOLS))})",
                  file=sys.stderr)
            return 2
    findings = analyze_registry(names,
                                include_runtime=not args.no_runtime)

    if args.write_baseline:
        finalize(findings, baseline=None)  # inline waivers still apply
        write_baseline(args.baseline, findings)
        kept = sum(1 for f in findings if not f.waived)
        print(f"wrote {args.baseline}: {kept} finding(s) acknowledged")
        return 0

    finalize(findings, baseline=args.baseline)
    report = build_report(findings,
                          sorted(names) if names else sorted(PROTOCOLS))
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(render_ascii(report))
    active = report["counts"]["active"]
    if active:
        print(f"STATICS GATE FAILED: {active} active finding(s) — fix, "
              f"waive with '# statics: ignore[RULE]', or acknowledge "
              f"via --write-baseline", file=sys.stderr)
        return 1
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    rows = [(rid, series, what) for rid, series, what in RULE_CATALOG]
    print(format_table("statics rule catalog (see EXPERIMENTS.md)",
                       ["rule", "series", "what it catches"], rows))
    return 0


def register_statics(subparsers) -> None:
    """Attach the ``statics`` subcommand to ``python -m repro``."""
    p = subparsers.add_parser(
        "statics",
        help="AST rule-surface analyzer (locality/ownership/determinism)")
    ssub = p.add_subparsers(dest="subcommand", required=True)

    p_check = ssub.add_parser(
        "check", help="analyze the protocol registry; exit 1 on findings")
    add_check_options(p_check)
    p_check.set_defaults(fn=_cmd_check)

    p_rules = ssub.add_parser("rules", help="print the rule catalog")
    p_rules.set_defaults(fn=_cmd_rules)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro statics",
        description="static rule-surface analysis of registered protocols")
    sub = parser.add_subparsers(dest="subcommand", required=True)
    p_check = sub.add_parser("check")
    add_check_options(p_check)
    p_check.set_defaults(fn=_cmd_check)
    p_rules = sub.add_parser("rules")
    p_rules.set_defaults(fn=_cmd_rules)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Findings, waivers and the committed baseline of ``repro.statics``.

A :class:`Finding` is one rule violation at one source location, tagged
with the protocol and layer whose rule surface it was discovered on.  Two
suppression mechanisms exist, mirroring the perf-gate's philosophy that
every exception must be *visible in the diff*:

* an inline waiver comment ``# statics: ignore[RULE]`` on the finding's
  line (or the line above it, or any call site of the chain that reached
  it) — for violations that are individually argued sound, with the
  argument sitting right next to the waiver;
* a committed baseline file mapping finding *fingerprints* to an
  acknowledgement — for grandfathering a batch during a migration.
  Fingerprints deliberately exclude line numbers so unrelated edits to a
  file do not invalidate the baseline.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "BASELINE_SCHEMA",
    "Finding",
    "Site",
    "apply_waivers",
    "load_baseline",
    "waiver_codes",
    "write_baseline",
]

#: Bump on incompatible baseline-shape changes.
BASELINE_SCHEMA = 1

_WAIVER_RE = re.compile(r"#\s*statics:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def waiver_codes(line: str) -> frozenset[str]:
    """The waiver codes carried by one source line (empty when none).

    A code is either a full rule id (``L001``) or a bare series letter
    (``L``) waiving the whole series at that site.
    """
    match = _WAIVER_RE.search(line)
    if match is None:
        return frozenset()
    return frozenset(
        code.strip() for code in match.group(1).split(",") if code.strip())


@dataclass(frozen=True)
class Site:
    """One source location (repo-relative rendering happens in reports)."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class Finding:
    """One rule violation on one protocol's rule surface."""

    rule: str               #: rule id, e.g. ``"L001"``
    protocol: str           #: registry name of the analyzed protocol
    layer: str              #: class name of the layer owning the surface
    path: str               #: rule path: step / fast_step / fast_step_slots
    function: str           #: qualname of the function holding the issue
    site: Site              #: where the violating expression sits
    message: str            #: human-readable description
    #: call chain from the rule entrypoint down to ``function`` (qualnames)
    chain: tuple[str, ...] = ()
    #: every location where an inline waiver comment counts: the finding
    #: line itself plus each call site of the chain that reached it
    waiver_sites: tuple[Site, ...] = ()
    waived: bool = False        #: suppressed by an inline comment
    waived_at: str | None = None
    baselined: bool = False     #: suppressed by the committed baseline

    @property
    def series(self) -> str:
        return self.rule[:1]

    @property
    def active(self) -> bool:
        """Whether this finding should fail the gate."""
        return not (self.waived or self.baselined)

    def fingerprint(self) -> str:
        """Line-number-free identity used by the committed baseline."""
        key = "|".join(
            (self.rule, self.protocol, self.layer, self.path,
             self.function, self.message))
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "series": self.series,
            "protocol": self.protocol,
            "layer": self.layer,
            "path": self.path,
            "function": self.function,
            "file": self.site.file,
            "line": self.site.line,
            "message": self.message,
            "chain": list(self.chain),
            "fingerprint": self.fingerprint(),
            "waived": self.waived,
            "waived_at": self.waived_at,
            "baselined": self.baselined,
            "active": self.active,
        }


def apply_waivers(findings: list[Finding],
                  read_line: Callable[[str, int], str]) -> None:
    """Mark findings suppressed by inline ``# statics: ignore[...]``.

    ``read_line(file, lineno)`` returns one source line (1-based), or
    ``""`` when out of range.  A waiver counts on the finding's own line,
    on the line directly above it (comment-above style), and on any call
    site of the chain that reached the finding — so a protocol can waive
    a violation occurring inside a helper it calls at the call site it
    owns.
    """
    for finding in findings:
        sites: list[Site] = [finding.site, *finding.waiver_sites]
        for site in sites:
            for lineno in (site.line, site.line - 1):
                if lineno < 1:
                    continue
                codes = waiver_codes(read_line(site.file, lineno))
                if finding.rule in codes or finding.series in codes:
                    finding.waived = True
                    finding.waived_at = f"{site.file}:{lineno}"
                    break
            if finding.waived:
                break


# ----------------------------------------------------------------------
# baseline file
# ----------------------------------------------------------------------

def load_baseline(path: str | Path) -> set[str]:
    """The acknowledged fingerprints of a committed baseline file."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a statics baseline "
            f"(schema {BASELINE_SCHEMA} expected)")
    entries = data.get("findings", [])
    return {str(e["fingerprint"]) for e in entries}


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Acknowledge every *active* finding into ``path``.

    Waived findings stay out: their suppression lives next to the code.
    """
    entries = [
        {
            "fingerprint": f.fingerprint(),
            "rule": f.rule,
            "protocol": f.protocol,
            "layer": f.layer,
            "function": f.function,
            "message": f.message,
        }
        for f in findings if not f.waived
    ]
    entries.sort(key=lambda e: (e["rule"], e["protocol"], e["fingerprint"]))
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")

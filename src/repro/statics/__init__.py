"""Static analysis of protocol rule surfaces.

The paper's state model gives every complexity and space claim its
footing: a rule reads only its 1-hop view and writes only its own
register, atomically.  This package proves the *shape* of those
contracts — locality, write ownership, schema coverage, determinism, and
agreement between the three rule implementations each protocol may carry
(``step`` / ``fast_step`` / ``fast_step_slots``) — by AST inspection of
the registered protocols, before any test executes a single move.  In
the spirit of proof-labeling schemes, well-formedness of the rules
themselves carries part of the proof.

Entry points: ``python -m repro statics check`` (the CI gate) and
:func:`repro.statics.analyzer.analyze_protocol` (the library API the
tests drive).
"""

from repro.statics.analyzer import (
    analyze_protocol,
    analyze_registry,
    analyze_runtime_bridges,
    finalize,
)
from repro.statics.model import Finding, Site
from repro.statics.rules import ALL_RULES, RULE_CATALOG

__all__ = [
    "ALL_RULES",
    "Finding",
    "RULE_CATALOG",
    "Site",
    "analyze_protocol",
    "analyze_registry",
    "analyze_runtime_bridges",
    "finalize",
]

"""The pluggable rule series of ``repro.statics``.

Five series, one per contract of the paper's state model (each rule is a
class; the registry at the bottom is what the analyzer runs):

* **L (locality)** — a ``read_locality="neighborhood"`` layer's rules
  must not reach net-global accessors or iterate the configuration; a
  ``"global"`` declaration must be *accurate* (some global read exists),
  or the engine over-invalidates for nothing.
* **W (write-ownership)** — rules communicate through returned deltas
  only; registers, neighbor rows and views are never mutated in place.
* **S (schema coverage)** — every field literal on any rule path
  resolves to a declared ``RegisterSpec`` field, and the slot path
  resolves slots only through ``StateSchema`` (no hard-coded slot ints).
* **D (determinism)** — no ambient randomness or clocks, no iteration
  over unordered sets feeding a proposal.
* **C (path consistency)** — the literal read/write field sets of
  ``step`` / ``fast_step`` / ``fast_step_slots`` / ``vector_step`` agree
  field-for-field.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from types import ModuleType

from repro.statics.bindings import ScopeMap, Tag, build_scopes
from repro.statics.model import Finding, Site
from repro.statics.scan import FuncUnit, RulePath

__all__ = ["ALL_RULES", "LayerContext", "Rule", "RULE_CATALOG"]


@dataclass
class LayerContext:
    """Everything the rules know about the layer under analysis."""

    protocol: str               #: registry name of the analyzed protocol
    layer: object               #: the live layer instance
    layer_name: str             #: class name of the layer
    read_locality: str          #: the layer's declared read locality
    universe: frozenset[str]    #: the composed register's field names


class Rule:
    """One pluggable check.  Subclasses override one of the two hooks."""

    rule_id: str = "X000"
    series: str = "X"
    title: str = ""

    def check_layer(self, ctx: LayerContext, paths: list[RulePath],
                    scopes: dict[int, ScopeMap]) -> list[Finding]:
        findings: list[Finding] = []
        for path in paths:
            findings.extend(self.check_path(ctx, path, scopes))
        return findings

    def check_path(self, ctx: LayerContext, path: RulePath,
                   scopes: dict[int, ScopeMap]) -> list[Finding]:
        return []

    # ------------------------------------------------------------------

    @staticmethod
    def finding(rule_id: str, ctx: LayerContext, path: RulePath,
                unit: FuncUnit, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule_id,
            protocol=ctx.protocol,
            layer=ctx.layer_name,
            path=path.path,
            function=unit.qualname,
            site=Site(unit.src.path, getattr(node, "lineno", unit.node.lineno)),
            message=message,
            chain=unit.via_names + (unit.qualname,),
            waiver_sites=unit.via_sites,
        )


def _scope_map(scopes: dict[int, ScopeMap], unit: FuncUnit) -> ScopeMap:
    sm = scopes.get(id(unit.node))
    if sm is None:
        sm = scopes[id(unit.node)] = build_scopes(unit.node)
    return sm


# ----------------------------------------------------------------------
# L-series: locality
# ----------------------------------------------------------------------

#: Network accessors a 1-hop rule may legally touch: a node's
#: incorruptible constants (its adjacency, incident weights, the public
#: bounds).  Everything else on Network is global by default.
ALLOWED_NET_ACCESSORS = frozenset({
    "neighbors", "neighbor_set", "degree", "weight", "n_bound", "id_space",
})

_CONFIG_SWEEP_ATTRS = frozenset({"items", "keys", "values"})


class LocalityRule(Rule):
    rule_id = "L001"
    series = "L"
    title = ("neighborhood-declared rules must not reach global "
             "accessors; global declarations must be accurate")

    def check_layer(self, ctx: LayerContext, paths: list[RulePath],
                    scopes: dict[int, ScopeMap]) -> list[Finding]:
        raw: list[Finding] = []
        for path in paths:
            for unit in path.units:
                raw.extend(self._scan_unit(ctx, path, unit,
                                           _scope_map(scopes, unit)))
        if ctx.read_locality != "neighborhood":
            if raw:
                return []  # honest "global" declaration
            if not paths:
                return []
            path = paths[0]
            return [self.finding(
                "L003", ctx, path, path.entry, path.entry.node,
                "declares read_locality=\"global\" but no global read was "
                "found on any rule path — tighten the declaration to "
                "\"neighborhood\" (or waive if the global read is dynamic)")]
        return raw

    def _scan_unit(self, ctx: LayerContext, path: RulePath, unit: FuncUnit,
                   sm: ScopeMap) -> list[Finding]:
        out: list[Finding] = []
        for node in unit.walk():
            if isinstance(node, ast.Attribute):
                if (sm.tag(node.value) == Tag.NET
                        and node.attr not in ALLOWED_NET_ACCESSORS
                        and not node.attr.startswith("__")):
                    out.append(self.finding(
                        "L001", ctx, path, unit, node,
                        f"reads net.{node.attr} — a global accessor "
                        f"outside the 1-hop view (allowed: "
                        f"{', '.join(sorted(ALLOWED_NET_ACCESSORS))})"))
                elif (sm.tag(node.value) == Tag.CONFIG
                        and node.attr in _CONFIG_SWEEP_ATTRS):
                    out.append(self.finding(
                        "L002", ctx, path, unit, node,
                        f"sweeps the whole configuration via "
                        f".{node.attr}() — a neighborhood rule may only "
                        f"read its own and its neighbors' registers"))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if sm.tag(node.iter) == Tag.CONFIG:
                    out.append(self.finding(
                        "L002", ctx, path, unit, node,
                        "iterates over the whole configuration — a "
                        "neighborhood rule may only read its own and its "
                        "neighbors' registers"))
            elif isinstance(node, ast.comprehension):
                if sm.tag(node.iter) == Tag.CONFIG:
                    out.append(self.finding(
                        "L002", ctx, path, unit, node.iter,
                        "iterates over the whole configuration — a "
                        "neighborhood rule may only read its own and its "
                        "neighbors' registers"))
        return out


# ----------------------------------------------------------------------
# W-series: write ownership
# ----------------------------------------------------------------------

_STATE_TAGS = frozenset({Tag.ROW, Tag.CONFIG, Tag.NBR_ROWS, Tag.VIEW})
_MUTATORS = frozenset({
    "update", "setdefault", "pop", "popitem", "clear",
    "append", "extend", "insert", "remove", "sort", "add", "discard",
})


class WriteOwnershipRule(Rule):
    rule_id = "W001"
    series = "W"
    title = "rules return deltas; they never mutate registers in place"

    def check_path(self, ctx: LayerContext, path: RulePath,
                   scopes: dict[int, ScopeMap]) -> list[Finding]:
        out: list[Finding] = []
        for unit in path.units:
            sm = _scope_map(scopes, unit)
            for node in unit.walk():
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if (isinstance(target, ast.Subscript)
                                and sm.tag(target.value) in _STATE_TAGS):
                            out.append(self.finding(
                                "W001", ctx, path, unit, node,
                                "writes a register in place — rules "
                                "communicate only through the returned "
                                "delta (the engine applies it atomically)"))
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATORS
                        and sm.tag(node.func.value) in
                        (_STATE_TAGS - {Tag.VIEW})):
                    out.append(self.finding(
                        "W002", ctx, path, unit, node,
                        f"calls .{node.func.attr}() on a register/state "
                        f"value — in-place mutation breaks the "
                        f"single-writer atomic-step model"))
        return out


# ----------------------------------------------------------------------
# S-series: schema coverage
# ----------------------------------------------------------------------

#: Rule paths that traffic in compiled slot indices (S002 applies).
_SLOT_PATHS = frozenset({"fast_step_slots", "vector_step", "shard_step",
                         "interrupt_step"})


class SchemaCoverageRule(Rule):
    rule_id = "S001"
    series = "S"
    title = ("field literals resolve to RegisterSpec fields; slots "
             "resolve only through StateSchema")

    def check_path(self, ctx: LayerContext, path: RulePath,
                   scopes: dict[int, ScopeMap]) -> list[Finding]:
        out: list[Finding] = []
        for unit in path.units:
            sm = _scope_map(scopes, unit)
            owned = unit.owner is ctx.layer
            for node in unit.walk():
                if isinstance(node, ast.Subscript):
                    out.extend(self._check_subscript(
                        ctx, path, unit, sm, node, owned))
                elif isinstance(node, ast.Call):
                    out.extend(self._check_call(ctx, path, unit, sm, node))
                elif isinstance(node, ast.Dict) and owned:
                    out.extend(self._check_dict(
                        ctx, path, unit, sm, node))
        return out

    def _unknown(self, ctx: LayerContext, field: str) -> bool:
        return field not in ctx.universe

    def _check_subscript(self, ctx, path, unit, sm, node, owned):
        base_tag = sm.tag(node.value)
        key = node.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            state_like = base_tag in (Tag.VIEW, Tag.ROW)
            scratch = owned and base_tag == Tag.LOCALDICT
            if (state_like or scratch) and self._unknown(ctx, key.value):
                return [self.finding(
                    "S001", ctx, path, unit, node,
                    f"field {key.value!r} does not resolve to any "
                    f"RegisterSpec field of {ctx.protocol} "
                    f"(fields: {', '.join(sorted(ctx.universe))})")]
            if base_tag == Tag.SINDEX and self._unknown(ctx, key.value):
                return [self.finding(
                    "S001", ctx, path, unit, node,
                    f"schema.index[{key.value!r}] does not resolve — "
                    f"no such field in the compiled layout")]
        elif (isinstance(key, ast.Constant) and isinstance(key.value, int)
                and not isinstance(key.value, bool)
                and path.path in _SLOT_PATHS
                and base_tag == Tag.ROW):
            return [self.finding(
                "S002", ctx, path, unit, node,
                f"hard-coded slot index {key.value} on a register row — "
                f"slots must be resolved through StateSchema "
                f"(schema.slot/schema.index), never written literally")]
        return []

    def _check_call(self, ctx, path, unit, sm, node):
        func = node.func
        if not (isinstance(func, ast.Attribute) and node.args):
            return []
        key = node.args[0]
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return []
        base_tag = sm.tag(func.value)
        if (func.attr == "slot" and base_tag == Tag.SCHEMA
                and self._unknown(ctx, key.value)):
            return [self.finding(
                "S001", ctx, path, unit, node,
                f"schema.slot({key.value!r}) does not resolve — no such "
                f"field in the compiled layout")]
        if func.attr == "slots" and base_tag == Tag.SCHEMA:
            return [self.finding(
                "S001", ctx, path, unit, node,
                f"schema.slots(... {arg.value!r} ...) does not resolve — "
                f"no such field in the compiled layout")
                for arg in node.args
                if isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and self._unknown(ctx, arg.value)]
        if (func.attr == "get" and base_tag == Tag.ROW
                and self._unknown(ctx, key.value)):
            # .get() is the sanctioned absence-tolerant accessor — a
            # layer may probe for a sibling layer's field that this
            # composition does not carry, so unknown names are fine here.
            return []
        return []

    def _check_dict(self, ctx, path, unit, sm, node):
        out = []
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                if self._unknown(ctx, key.value):
                    out.append(self.finding(
                        "S001", ctx, path, unit, key,
                        f"delta key {key.value!r} does not resolve to any "
                        f"RegisterSpec field of {ctx.protocol}"))
            elif (isinstance(key, ast.Constant)
                    and isinstance(key.value, int)
                    and not isinstance(key.value, bool)
                    and path.path in _SLOT_PATHS):
                out.append(self.finding(
                    "S002", ctx, path, unit, key,
                    f"hard-coded slot index {key.value} as a delta key — "
                    f"slots must be resolved through StateSchema"))
        return out


# ----------------------------------------------------------------------
# D-series: determinism
# ----------------------------------------------------------------------

_AMBIENT_MODULES = frozenset({
    "random", "time", "secrets", "uuid", "datetime", "os", "_random",
})


class DeterminismRule(Rule):
    rule_id = "D001"
    series = "D"
    title = "no ambient randomness/clocks, no unordered-set iteration"

    def check_path(self, ctx: LayerContext, path: RulePath,
                   scopes: dict[int, ScopeMap]) -> list[Finding]:
        out: list[Finding] = []
        for unit in path.units:
            sm = _scope_map(scopes, unit)
            for node in unit.walk():
                if isinstance(node, ast.Call):
                    name = self._ambient_call(node, unit)
                    if name is not None:
                        out.append(self.finding(
                            "D001", ctx, path, unit, node,
                            f"calls {name} — rules must be pure functions "
                            f"of the 1-hop view; ambient randomness/clocks "
                            f"break proposal caching and replayability"))
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if self._unordered(sm, node.iter):
                        out.append(self.finding(
                            "D002", ctx, path, unit, node,
                            "iterates an unordered set — iteration order "
                            "feeds the proposal; wrap in sorted() for a "
                            "deterministic order"))
                elif isinstance(node, ast.comprehension):
                    if self._unordered(sm, node.iter):
                        out.append(self.finding(
                            "D002", ctx, path, unit, node.iter,
                            "comprehends over an unordered set — wrap in "
                            "sorted() for a deterministic order"))
        return out

    @staticmethod
    def _unordered(sm: ScopeMap, iter_node: ast.AST) -> bool:
        return sm.tag(iter_node) == Tag.SETVAL

    @staticmethod
    def _ambient_call(node: ast.Call, unit: FuncUnit) -> str | None:
        func = node.func
        module_ns = unit.module.__dict__
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            base = func.value.id
            if (base in _AMBIENT_MODULES
                    and isinstance(module_ns.get(base), ModuleType)):
                return f"{base}.{func.attr}()"
        elif isinstance(func, ast.Name):
            target = module_ns.get(func.id)
            mod = getattr(target, "__module__", None)
            if target is not None and mod in _AMBIENT_MODULES:
                return f"{mod}.{func.id}()"
        return None


# ----------------------------------------------------------------------
# C-series: triple-path consistency
# ----------------------------------------------------------------------

class PathConsistencyRule(Rule):
    rule_id = "C001"
    series = "C"
    title = ("step / fast_step / fast_step_slots / vector_step read "
             "and write the same fields")

    def check_layer(self, ctx: LayerContext, paths: list[RulePath],
                    scopes: dict[int, ScopeMap]) -> list[Finding]:
        if len(paths) < 2:
            return []
        footprints = [
            (path, *self._footprint(ctx, path, scopes)) for path in paths]
        base_path, base_reads, base_writes = footprints[0]
        out: list[Finding] = []
        for path, reads, writes in footprints[1:]:
            if reads != base_reads:
                out.append(self.finding(
                    "C001", ctx, path, path.entry, path.entry.node,
                    self._diff_message("read", path, base_path,
                                       reads, base_reads)))
            if writes != base_writes:
                out.append(self.finding(
                    "C002", ctx, path, path.entry, path.entry.node,
                    self._diff_message("write", path, base_path,
                                       writes, base_writes)))
        return out

    @staticmethod
    def _diff_message(kind: str, path: RulePath, base: RulePath,
                      mine: frozenset[str], theirs: frozenset[str]) -> str:
        extra = sorted(mine - theirs)
        missing = sorted(theirs - mine)
        parts = []
        if extra:
            parts.append(f"also touches {', '.join(extra)}")
        if missing:
            parts.append(f"misses {', '.join(missing)}")
        return (f"{kind}-set of {path.path} disagrees with {base.path} "
                f"({'; '.join(parts)}) — a ported rule silently "
                f"{'dropped' if missing else 'grew'} a field dependency")

    def _footprint(self, ctx: LayerContext, path: RulePath,
                   scopes: dict[int, ScopeMap]
                   ) -> tuple[frozenset[str], frozenset[str]]:
        """Literal (read, write) field sets of one rule path.

        Only statically-resolvable accesses count: string literals and
        slot variables bound from ``schema.slot``/``schema.index``
        lookups.  Dynamic accesses (a field name held in an instance
        attribute) are invisible on *every* path, so a rule that is
        dynamic the same way on both planes still compares equal.
        """
        reads: set[str] = set()
        writes: set[str] = set()
        for unit in path.units:
            sm = _scope_map(scopes, unit)
            owned = unit.owner is ctx.layer
            for node in unit.walk():
                if isinstance(node, ast.Subscript):
                    field = self._key_field(sm, node.slice)
                    if field is None:
                        continue
                    base_tag = sm.tag(node.value)
                    is_store = isinstance(node.ctx, (ast.Store, ast.Del))
                    if base_tag in (Tag.VIEW, Tag.ROW) and not is_store:
                        reads.add(field)
                    elif base_tag == Tag.LOCALDICT and is_store and owned:
                        writes.add(field)
                elif isinstance(node, ast.Call):
                    func = node.func
                    if not (isinstance(func, ast.Attribute) and node.args):
                        continue
                    base_tag = sm.tag(func.value)
                    if (func.attr == "get"
                            and base_tag in (Tag.VIEW, Tag.ROW)):
                        field = self._key_field(sm, node.args[0])
                        if field is not None:
                            reads.add(field)
                    elif (func.attr in ("col", "valid_slot")
                            and base_tag == Tag.COLS):
                        # columnar reads: store.col(SLOT) materializes the
                        # field's column; valid_slot guards the same
                        # dependency (decline-to-scalar still *consumed*
                        # the field)
                        for arg in node.args:
                            field = self._key_field(sm, arg)
                            if field is not None:
                                reads.add(field)
                elif isinstance(node, ast.Dict) and owned:
                    for key in node.keys:
                        field = self._key_field(sm, key)
                        if field is not None:
                            writes.add(field)
        return frozenset(reads), frozenset(writes)

    @staticmethod
    def _key_field(sm: ScopeMap, key: ast.AST | None) -> str | None:
        if key is None:
            return None
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return key.value
        tag = sm.tag(key)
        return Tag.slot_field(tag)


ALL_RULES: tuple[Rule, ...] = (
    LocalityRule(),
    WriteOwnershipRule(),
    SchemaCoverageRule(),
    DeterminismRule(),
    PathConsistencyRule(),
)

#: Rule catalog for ``statics list`` and the docs.
RULE_CATALOG: tuple[tuple[str, str, str], ...] = (
    ("L001", "L", "global net accessor reached from a neighborhood rule"),
    ("L002", "L", "whole-configuration sweep from a neighborhood rule"),
    ("L003", "L", "read_locality=\"global\" declared but never exercised"),
    ("W001", "W", "in-place register write (rules must return deltas)"),
    ("W002", "W", "mutating method call on a register/state value"),
    ("S001", "S", "field literal does not resolve to a RegisterSpec field"),
    ("S002", "S", "hard-coded slot integer on the slot path"),
    ("D001", "D", "ambient randomness/clock inside a rule"),
    ("D002", "D", "iteration over an unordered set feeds the proposal"),
    ("C001", "C", "read-sets of the rule paths disagree"),
    ("C002", "C", "write-sets of the rule paths disagree"),
)

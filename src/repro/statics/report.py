"""Rendering: findings -> JSON report / ascii table.

The JSON shape is the CI artifact contract (``statics_findings.json``);
its ``schema`` field gates consumers the same way the BENCH reports do.
Reports are deliberately timestamp-free so a re-run on an unchanged tree
is byte-identical.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.statics.model import Finding
from repro.statics.rules import RULE_CATALOG
from repro.statics.scan import PACKAGE_ROOT

__all__ = ["REPORT_SCHEMA", "build_report", "render_ascii"]

#: Bump on incompatible findings-report shape changes.
REPORT_SCHEMA = 1

_REPO_ROOT = PACKAGE_ROOT.parents[1]


def _relpath(path: str) -> str:
    try:
        return str(Path(path).resolve().relative_to(_REPO_ROOT))
    except ValueError:
        return path


def build_report(findings: list[Finding],
                 protocols: list[str]) -> dict[str, Any]:
    records = []
    for finding in findings:
        record = finding.to_json()
        record["file"] = _relpath(str(record["file"]))
        records.append(record)
    records.sort(key=lambda r: (r["protocol"], r["rule"], r["file"],
                                r["line"], r["message"]))
    return {
        "schema": REPORT_SCHEMA,
        "tool": "repro.statics",
        "protocols": list(protocols),
        "rules": [{"id": rid, "series": series, "what": what}
                  for rid, series, what in RULE_CATALOG],
        "counts": {
            "total": len(findings),
            "active": sum(1 for f in findings if f.active),
            "waived": sum(1 for f in findings if f.waived),
            "baselined": sum(1 for f in findings if f.baselined),
        },
        "findings": records,
    }


def render_ascii(report: dict[str, Any]) -> str:
    from repro.analysis import format_table
    counts = report["counts"]
    rows = []
    for rec in report["findings"]:
        state = ("waived" if rec["waived"]
                 else "baselined" if rec["baselined"] else "ACTIVE")
        rows.append((rec["rule"], rec["protocol"], rec["layer"],
                     f"{rec['file']}:{rec['line']}", state,
                     rec["message"]))
    if not rows:
        rows.append(("-", "-", "-", "-", "-",
                     "no findings: every rule surface is clean"))
    title = (f"statics: {counts['active']} active / {counts['total']} total "
             f"({counts['waived']} waived, {counts['baselined']} baselined) "
             f"over {len(report['protocols'])} protocols")
    return format_table(title,
                        ["rule", "protocol", "layer", "where", "state",
                         "finding"],
                        rows)

"""Rule-surface extraction: from live protocol layers to analyzable ASTs.

The analyzer works on *instances*, not on import paths: given a layer it
resolves each rule entrypoint (``step`` / ``fast_step`` /
``fast_step_slots``) through the class MRO, parses the defining module's
source once, and locates the matching ``ast.FunctionDef`` by name and
first line.  From each entrypoint it then walks the call graph —
``self.helper()`` through the MRO of the *concrete* class (so hook
overrides like ``next_phase`` resolve to the subclass), bare names
through the defining module, ``self._attr.method()`` through the live
attribute — collecting every reachable function whose source lives in
the repository (or in the module defining the layer's own classes, so
test fixtures analyze like first-class protocols).

Two boundaries are sanctioned and never crossed:

* :meth:`repro.certify.oracle.CertifiedOracle.consult`.  The
  digest-keyed write-once memo is the repo's *mechanism* for letting a
  rule consult a globally-computed decision while remaining a pure
  function of its 1-hop view (see the oracle module's docstring), so
  the compute thunk passed to ``consult`` is exempt from the locality
  rules: traversal stops at the call and the thunk argument's subtree
  is excluded from rule scans.  A rule that reaches the detector
  *without* going through ``consult`` gets no such exemption — that is
  exactly the PR 1 stale-oracle bug, and the L-series test
  re-introduces it to prove the analyzer catches it.
* the observer entrypoints (``OBS_ENTRYPOINTS`` on the protocol
  contract, e.g. ``probe_potential``).  Probes run *between* atomic
  steps, never from inside one, and read the whole configuration by
  design — they are telemetry, not rules, so traversal stops at any
  call into one instead of flagging its global sweep as a locality
  violation.  The probe body itself is simply outside the rule
  surface; nothing a rule computes may depend on it, and the engine
  enforces that by construction (probes fire from the recorder hook,
  not from rule code).
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from pathlib import Path
from types import FunctionType, ModuleType
from typing import Optional

from repro.runtime.protocol import OBS_ENTRYPOINTS
from repro.statics.model import Site

__all__ = [
    "FuncUnit",
    "RulePath",
    "SourceModule",
    "build_paths",
    "closure_of",
    "source_module",
]

#: Root of the analyzable package tree (``src/repro``).
PACKAGE_ROOT = Path(__file__).resolve().parents[1]

#: Call-graph traversal depth cap (entrypoint = depth 0).
MAX_DEPTH = 8

_MODULE_CACHE: dict[str, "SourceModule"] = {}


class SourceModule:
    """One parsed source file: AST plus line access, cached per path."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.source = Path(path).read_text()
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=path)
        self._funcs: dict[str, list[ast.FunctionDef]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._funcs.setdefault(node.name, []).append(node)

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def function_node(self, fn: FunctionType) -> Optional[ast.FunctionDef]:
        """The ``FunctionDef`` matching a live function, by name + line.

        ``co_firstlineno`` points at the first decorator when the
        function is decorated, so the match tolerates that offset.
        """
        lineno = fn.__code__.co_firstlineno
        candidates = self._funcs.get(fn.__name__, [])
        for node in candidates:
            if node.lineno == lineno:
                return node
            decorators = node.decorator_list
            if decorators and decorators[0].lineno <= lineno <= node.lineno:
                return node
        return None


def source_module(path: str) -> SourceModule:
    cached = _MODULE_CACHE.get(path)
    if cached is None:
        cached = _MODULE_CACHE[path] = SourceModule(path)
    return cached


def read_source_line(file: str, lineno: int) -> str:
    """Waiver-lookup hook shared with :func:`model.apply_waivers`."""
    try:
        return source_module(file).line(lineno)
    except OSError:  # pragma: no cover - vanished file
        return ""


@dataclass
class FuncUnit:
    """One reachable function of a rule surface, ready for rule scans."""

    fn: FunctionType
    node: ast.FunctionDef
    src: SourceModule
    module: ModuleType
    #: instance used to resolve further ``self.x`` calls from this unit
    owner: object | None
    qualname: str
    depth: int
    #: call-site chain (entrypoint-side first) that reached this unit;
    #: inline waivers at any of these sites suppress findings inside it
    via_sites: tuple[Site, ...] = ()
    via_names: tuple[str, ...] = ()
    #: AST nodes (by id) excluded from rule scans: arguments handed to
    #: the sanctioned ``CertifiedOracle.consult`` boundary
    skip_nodes: set[int] = field(default_factory=set)

    def walk(self):
        """``ast.walk`` over this unit minus the sanctioned subtrees."""
        stack: list[ast.AST] = [self.node]
        skip = self.skip_nodes
        while stack:
            node = stack.pop()
            if id(node) in skip:
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


@dataclass
class RulePath:
    """One rule implementation path of one layer, transitively closed."""

    path: str                   #: "step" | "fast_step" | "fast_step_slots"
    layer: object
    units: list[FuncUnit]

    @property
    def entry(self) -> FuncUnit:
        return self.units[0]


# ----------------------------------------------------------------------
# resolution helpers
# ----------------------------------------------------------------------

def _unwrap(obj: object) -> FunctionType | None:
    """A plain function out of methods/static/class wrappers, or None."""
    if isinstance(obj, (staticmethod, classmethod)):
        obj = obj.__func__
    obj = getattr(obj, "__func__", obj)
    return obj if isinstance(obj, FunctionType) else None


def _source_file(fn: FunctionType) -> str | None:
    try:
        path = inspect.getsourcefile(fn)
    except TypeError:  # pragma: no cover - builtins
        return None
    return str(Path(path).resolve()) if path else None


def _allowed_roots(layer: object) -> tuple[Path, ...]:
    """Where traversal may follow calls: the package tree plus the files
    defining the layer's own classes (test fixtures live outside src)."""
    roots = [PACKAGE_ROOT]
    for cls in type(layer).__mro__:
        try:
            path = inspect.getsourcefile(cls)
        except TypeError:
            continue
        if path:
            roots.append(Path(path).resolve().parent)
    return tuple(roots)


def _traversable(fn: FunctionType, roots: tuple[Path, ...]) -> bool:
    path = _source_file(fn)
    if path is None:
        return False
    resolved = Path(path)
    return any(root == resolved.parent or root in resolved.parents
               for root in roots)


def _is_sanctioned(fn: FunctionType) -> bool:
    """The oracle-consult boundary (see module docstring)."""
    return (fn.__qualname__ == "CertifiedOracle.consult"
            and fn.__module__.endswith("certify.oracle"))


def _is_observer(fn: FunctionType) -> bool:
    """The probe boundary (see module docstring): observer entrypoints
    are telemetry outside the rule surface, never chased."""
    return fn.__name__ in OBS_ENTRYPOINTS


def _resolve_call(call: ast.Call, unit: FuncUnit,
                  local_defs: set[str]) -> FunctionType | object | None:
    """Best-effort resolution of a call target to a live function.

    Returns the resolved function (plus, implicitly through
    ``__self__`` on bound methods, its owner), a non-function object, or
    ``None`` when the target is dynamic.  Names defined by nested
    ``def``s inside the same unit resolve to ``None`` — their bodies are
    already part of this unit's AST and must not be enqueued twice.
    """
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in local_defs:
            return None
        return unit.module.__dict__.get(func.id)
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    owner = unit.owner
    # self.method(...)
    if isinstance(base, ast.Name):
        if base.id == "self" and owner is not None:
            return getattr(type(owner), func.attr, None)
        target = unit.module.__dict__.get(base.id)
        if target is not None and not isinstance(target, type):
            # module.function(...) — modules only; instances at module
            # scope are registries, not rule helpers
            if isinstance(target, ModuleType):
                return target.__dict__.get(func.attr)
        return None
    # self._attr.method(...): resolve through the live instance
    if (isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self" and owner is not None):
        try:
            held = getattr(owner, base.attr)
        except AttributeError:
            return None
        return getattr(held, func.attr, None)
    return None


def _local_def_names(node: ast.FunctionDef) -> set[str]:
    return {child.name for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node}


# ----------------------------------------------------------------------
# closure construction
# ----------------------------------------------------------------------

def _make_unit(fn: FunctionType, owner: object | None, depth: int,
               via_sites: tuple[Site, ...],
               via_names: tuple[str, ...]) -> FuncUnit | None:
    path = _source_file(fn)
    if path is None:
        return None
    try:
        src = source_module(path)
    except (OSError, SyntaxError):  # pragma: no cover - unreadable source
        return None
    node = src.function_node(fn)
    if node is None:
        return None
    module = inspect.getmodule(fn)
    if module is None:
        return None
    return FuncUnit(fn=fn, node=node, src=src, module=module, owner=owner,
                    qualname=fn.__qualname__, depth=depth,
                    via_sites=via_sites, via_names=via_names)


def closure_of(entry_fn: FunctionType, owner: object) -> list[FuncUnit]:
    """Transitive call closure of one entrypoint, sanctioned-boundary
    aware; the entry unit always comes first."""
    roots = _allowed_roots(owner)
    units: list[FuncUnit] = []
    seen: set[object] = set()
    queue: list[FuncUnit] = []

    first = _make_unit(entry_fn, owner, 0, (), ())
    if first is None:
        return []
    seen.add(entry_fn.__code__)
    queue.append(first)

    while queue:
        unit = queue.pop(0)
        units.append(unit)
        if unit.depth >= MAX_DEPTH:
            continue
        local_defs = _local_def_names(unit.node)
        for node in unit.walk():
            if not isinstance(node, ast.Call):
                continue
            raw = _resolve_call(node, unit, local_defs)
            if raw is None:
                continue
            bound_owner = getattr(raw, "__self__", None)
            fn = _unwrap(raw)
            if fn is None:
                continue
            if _is_sanctioned(fn):
                # the compute thunk handed to the oracle memo is exempt
                # from rule scans: it is the sanctioned global read
                for arg in node.args[1:]:
                    for sub in ast.walk(arg):
                        unit.skip_nodes.add(id(sub))
                continue
            if _is_observer(fn):
                # probe callbacks are telemetry between atomic steps,
                # not rule code: stop at the boundary, scan nothing
                continue
            if fn.__code__ in seen or not _traversable(fn, roots):
                continue
            seen.add(fn.__code__)
            if bound_owner is not None and not isinstance(bound_owner, type):
                callee_owner: object | None = bound_owner
            elif (fn.__code__.co_argcount
                    and fn.__code__.co_varnames[0] == "self"):
                callee_owner = unit.owner
            else:
                callee_owner = None
            site = Site(unit.src.path, node.lineno)
            sub = _make_unit(fn, callee_owner, unit.depth + 1,
                             unit.via_sites + (site,),
                             unit.via_names + (unit.qualname,))
            if sub is not None:
                queue.append(sub)
    return units


# ----------------------------------------------------------------------
# rule-path discovery
# ----------------------------------------------------------------------

def build_paths(layer: object) -> list[RulePath]:
    """The implemented rule paths of one layer, each transitively closed.

    Uses the layer's machine-readable contract
    (:meth:`repro.runtime.protocol.Protocol.rule_contract`) to decide
    which entrypoints exist, so the analyzer and the runtime agree on
    what the rule surface *is*.
    """
    contract = layer.rule_contract()
    paths: list[RulePath] = []
    for name, implemented in contract["entrypoints"].items():
        if not implemented:
            continue
        entry = _unwrap(inspect.getattr_static(type(layer), name, None)
                        or getattr(type(layer), name, None))
        if entry is None:
            continue
        units = closure_of(entry, layer)
        if units:
            paths.append(RulePath(path=name, layer=layer, units=units))
    return paths

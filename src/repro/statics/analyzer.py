"""Registry-wide orchestration of the static rule checks.

``analyze_protocol`` inspects one live protocol — a
:class:`~repro.runtime.protocol.ComposedProtocol` is analyzed layer by
layer against the *composed* register universe, exactly how the runtime
executes it — and ``analyze_registry`` sweeps every registered protocol
plus the runtime's composition bridges.  Protocols are instantiated on a
small probe network only to materialize their ``RegisterSpec``; no rule
is ever executed.
"""

from __future__ import annotations

from pathlib import Path

from repro.statics.bindings import ScopeMap
from repro.statics.model import Finding, apply_waivers, load_baseline
from repro.statics.rules import ALL_RULES, LayerContext
from repro.statics.scan import (
    RulePath,
    build_paths,
    closure_of,
    read_source_line,
)

__all__ = [
    "DEFAULT_BASELINE",
    "analyze_protocol",
    "analyze_registry",
    "analyze_runtime_bridges",
    "finalize",
    "probe_network",
]

#: The committed baseline the CLI loads by default (repo-root relative).
DEFAULT_BASELINE = Path("benchmarks") / "statics_baseline.json"


def probe_network():
    """A small weighted ring: enough to materialize every RegisterSpec."""
    from repro.graphs import generators
    return generators.ring(6, seed=0, weighted=True)


def iter_layers(protocol) -> list:
    from repro.runtime.protocol import ComposedProtocol
    if isinstance(protocol, ComposedProtocol):
        return list(protocol.layers)
    return [protocol]


def analyze_protocol(protocol, name: str | None = None, net=None,
                     scopes: dict[int, ScopeMap] | None = None
                     ) -> list[Finding]:
    """All rule findings for one protocol instance (layer-wise)."""
    if net is None:
        net = probe_network()
    if scopes is None:
        scopes = {}
    protocol_name = name or protocol.name
    universe = frozenset(protocol.register_spec(net).names)
    findings: list[Finding] = []
    for layer in iter_layers(protocol):
        ctx = LayerContext(
            protocol=protocol_name,
            layer=layer,
            layer_name=type(layer).__name__,
            read_locality=layer.read_locality,
            universe=universe,
        )
        paths = build_paths(layer)
        for rule in ALL_RULES:
            findings.extend(rule.check_layer(ctx, paths, scopes))
    return findings


def analyze_runtime_bridges(scopes: dict[int, ScopeMap] | None = None
                            ) -> list[Finding]:
    """The composition machinery itself, held to the same W/L/D bar.

    ``ComposedProtocol.step`` / ``fast_step_slots``,
    :func:`~repro.runtime.protocol.adapt_step_to_slots` and
    :func:`~repro.runtime.protocol.effective_delta` sit between every
    layer and the engine: an in-place mutation there would corrupt
    *all* protocols at once, so the audit runs them through the same
    rules with an empty field universe (the bridges are field-agnostic
    by design — any literal field access in them would itself be a
    smell, and fails S-series here).
    """
    from repro.runtime import protocol as runtime_protocol
    if scopes is None:
        scopes = {}
    targets = (
        ("step", runtime_protocol.ComposedProtocol.step),
        ("fast_step_slots",
         runtime_protocol.ComposedProtocol.fast_step_slots),
        ("vector_step", runtime_protocol.ComposedProtocol.vector_step),
        ("step", runtime_protocol.adapt_step_to_slots),
        ("step", runtime_protocol.effective_delta),
    )
    ctx = LayerContext(
        protocol="<runtime>",
        layer=None,
        layer_name="ComposedProtocol",
        read_locality="neighborhood",
        universe=frozenset(),
    )
    findings: list[Finding] = []
    for path_name, fn in targets:
        units = closure_of(fn, None)
        if not units:  # pragma: no cover - source always present
            continue
        paths = [RulePath(path=path_name, layer=None, units=units)]
        for rule in ALL_RULES:
            findings.extend(rule.check_layer(ctx, paths, scopes))
    return findings


def analyze_registry(names: list[str] | None = None,
                     include_runtime: bool = True) -> list[Finding]:
    """Sweep the whole protocol registry (optionally a subset)."""
    from repro.experiments.registry import PROTOCOLS, build_protocol
    net = probe_network()
    scopes: dict[int, ScopeMap] = {}
    findings: list[Finding] = []
    for protocol_name in (names if names is not None else sorted(PROTOCOLS)):
        protocol, _entry = build_protocol(protocol_name)
        findings.extend(analyze_protocol(protocol, name=protocol_name,
                                         net=net, scopes=scopes))
    if include_runtime:
        findings.extend(analyze_runtime_bridges(scopes))
    return findings


def finalize(findings: list[Finding],
             baseline: str | Path | None = None) -> list[Finding]:
    """Apply inline waivers and the committed baseline; returns the list."""
    apply_waivers(findings, read_source_line)
    if baseline is not None and Path(baseline).exists():
        acknowledged = load_baseline(baseline)
        for finding in findings:
            if finding.fingerprint() in acknowledged:
                finding.baselined = True
    return findings

"""Convention-based value tagging for rule-surface expressions.

The rule series need to know, for an arbitrary expression inside a rule,
*what kind of value* it denotes: the network, the configuration, a
node's register (own or a neighbor's), a local scratch dict, a compiled
slot index, an unordered set.  Full dataflow analysis is out of scope —
instead this module exploits the repo's rigid rule-surface calling
conventions (``step(self, view)``, ``fast_step(self, net, config, me,
nbr_rows)``, ``rule(net, config, node, own, nbr_rows)``,
``fast_step_slots(self, schema)``, ``vector_step(self, schema, cols)``
with its compiled ``rule(store, active, patch)``) to seed parameter tags
by name, then
propagates tags through the straight-line assignments, loop targets and
comprehension generators of each function scope.

Known limitation (documented, deliberate): a name is tagged with its
*final* binding in the scope — ``cur = own`` rebound to ``cur =
own.copy()`` tags ``cur`` as a local dict, which matches the only idiom
the runtime uses (copy-before-mutate).  Instance-attribute caches
(``self._bound_net`` style memoization) are opaque to the tagger and
therefore exempt from the determinism rules; the seeding suite still
exercises those dynamically.
"""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["Tag", "ScopeEnv", "ScopeMap", "build_scopes"]


class Tag:
    """Value-kind tags (plain strings; ``SLOT:<field>`` carries a field)."""

    VIEW = "VIEW"            #: a NodeView
    NET = "NET"              #: the Network
    CONFIG = "CONFIG"        #: the whole configuration mapping
    ROW = "ROW"              #: one node's register (dict, SlotState or row)
    NBR_ROWS = "NBR_ROWS"    #: the (neighbor, register) pair sequence
    SCHEMA = "SCHEMA"        #: a StateSchema
    SINDEX = "SINDEX"        #: schema.index (name -> slot table)
    COLS = "COLS"            #: a ColumnStore (the columnar state plane)
    COLROWS = "COLROWS"      #: ColumnStore.rows (the aligned row list)
    LOCALDICT = "LOCALDICT"  #: a scratch dict owned by the rule
    SETVAL = "SETVAL"        #: an unordered set/frozenset value
    NODE = "NODE"            #: a node identity
    OBS = "OBS"              #: a telemetry recorder/probe handle — opaque
                             #: plumbing outside the rule dataflow (the
                             #: scan stops at observer entrypoints, so a
                             #: tagged handle never reaches a rule scan;
                             #: the tag keeps the convention explicit)
    OTHER = "OTHER"

    SLOT_PREFIX = "SLOT:"

    @staticmethod
    def slot(field: str) -> str:
        return Tag.SLOT_PREFIX + field

    @staticmethod
    def slot_field(tag: str) -> Optional[str]:
        if tag.startswith(Tag.SLOT_PREFIX):
            return tag[len(Tag.SLOT_PREFIX):]
        return None


#: Parameter-name conventions of the rule surfaces (see module docstring).
PARAM_TAGS: dict[str, str] = {
    "view": Tag.VIEW,
    "layer_view": Tag.VIEW,
    "net": Tag.NET,
    "config": Tag.CONFIG,
    "own": Tag.ROW,
    "cur": Tag.ROW,
    "st": Tag.ROW,
    "state": Tag.ROW,
    "nbr_rows": Tag.NBR_ROWS,
    "rows": Tag.NBR_ROWS,
    "schema": Tag.SCHEMA,
    "cols": Tag.COLS,
    "store": Tag.COLS,
    "node": Tag.NODE,
    "me": Tag.NODE,
    "intended": Tag.LOCALDICT,
    "delta": Tag.LOCALDICT,
    "updates": Tag.LOCALDICT,
    "recorder": Tag.OBS,
    "probe": Tag.OBS,
}

#: NodeView attributes yielding state-plane values.
_VIEW_STATE_ATTRS = {"state": Tag.ROW, "_config": Tag.CONFIG, "net": Tag.NET}

#: NodeView method calls yielding state-plane values.
_VIEW_STATE_CALLS = {"nbr": Tag.ROW, "nbr_or_none": Tag.ROW,
                     "nbr_states": Tag.NBR_ROWS}


class ScopeEnv:
    """Name -> tag for one function/lambda scope, chained to its parent."""

    def __init__(self, node: ast.AST, parent: Optional["ScopeEnv"]) -> None:
        self.node = node
        self.parent = parent
        self.names: dict[str, str] = {}

    def lookup(self, name: str) -> str:
        env: Optional[ScopeEnv] = self
        while env is not None:
            tag = env.names.get(name)
            if tag is not None:
                return tag
            env = env.parent
        return Tag.OTHER

    # -- expression tagging -------------------------------------------

    def tag(self, node: ast.AST) -> str:
        """The value-kind tag of an expression in this scope."""
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.Attribute):
            return self._tag_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._tag_subscript(node)
        if isinstance(node, ast.Call):
            return self._tag_call(node)
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return Tag.LOCALDICT
        if isinstance(node, (ast.Set, ast.SetComp)):
            return Tag.SETVAL
        if isinstance(node, ast.IfExp):
            return self._prefer(self.tag(node.body), self.tag(node.orelse))
        if isinstance(node, ast.BoolOp):
            tags = [self.tag(v) for v in node.values]
            out = Tag.OTHER
            for t in tags:
                out = self._prefer(out, t)
            return out
        if isinstance(node, ast.NamedExpr):
            return self.tag(node.value)
        return Tag.OTHER

    @staticmethod
    def _prefer(a: str, b: str) -> str:
        """Merge branch tags: a state-plane tag wins over OTHER/constants
        (``view.nbr(p) if ... else None`` is still a register)."""
        if a == Tag.OTHER:
            return b
        if b == Tag.OTHER:
            return a
        return a if a == b else Tag.OTHER

    def _tag_attribute(self, node: ast.Attribute) -> str:
        base = self.tag(node.value)
        if base == Tag.VIEW:
            return _VIEW_STATE_ATTRS.get(node.attr, Tag.OTHER)
        if base == Tag.SCHEMA and node.attr == "index":
            return Tag.SINDEX
        if base == Tag.ROW and node.attr == "row":
            return Tag.ROW  # SlotState.row: same register, raw plane
        if base == Tag.COLS and node.attr == "rows":
            return Tag.COLROWS  # the store's aligned slot rows
        return Tag.OTHER

    def _tag_subscript(self, node: ast.Subscript) -> str:
        base = self.tag(node.value)
        if base == Tag.CONFIG:
            return Tag.ROW
        if base == Tag.COLROWS:
            return Tag.ROW  # cols.rows[i]: one node's register row
        if base == Tag.SINDEX:
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                return Tag.slot(key.value)
        return Tag.OTHER

    def _tag_call(self, node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return Tag.SETVAL
            if func.id == "dict":
                return Tag.LOCALDICT
            return Tag.OTHER
        if not isinstance(func, ast.Attribute):
            return Tag.OTHER
        base = self.tag(func.value)
        attr = func.attr
        if base == Tag.VIEW and attr in _VIEW_STATE_CALLS:
            return _VIEW_STATE_CALLS[attr]
        if base == Tag.SCHEMA and attr == "slot":
            key = node.args[0] if node.args else None
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                return Tag.slot(key.value)
        if base == Tag.SINDEX and attr == "get":
            key = node.args[0] if node.args else None
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                return Tag.slot(key.value)
        if base == Tag.NET and attr == "neighbor_set":
            return Tag.SETVAL
        if attr == "copy" and base in (Tag.ROW, Tag.LOCALDICT):
            return Tag.LOCALDICT
        return Tag.OTHER

    # -- binding construction -----------------------------------------

    def bind_target(self, target: ast.AST, value_tag: str,
                    value: ast.AST | None = None) -> None:
        if isinstance(target, ast.Name):
            self.names[target.id] = value_tag
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                for t, v in zip(target.elts, value.elts):
                    self.bind_target(t, self.tag(v), v)
                return
            slot_fields = self._slots_call_fields(value)
            if slot_fields is not None and \
                    len(slot_fields) == len(target.elts):
                # RID, PAR, D = schema.slots("rid", "par", "d")
                for t, field in zip(target.elts, slot_fields):
                    self.bind_target(t, Tag.slot(field))
                return
            if value_tag == Tag.NBR_ROWS and len(target.elts) == 2:
                # for u, st in nbr_rows: ...
                self.bind_target(target.elts[0], Tag.NODE)
                self.bind_target(target.elts[1], Tag.ROW)
                return
            for t in target.elts:
                self.bind_target(t, Tag.OTHER)

    def _slots_call_fields(self, value: ast.AST | None
                           ) -> Optional[list[str]]:
        """The field names of a ``schema.slots("a", "b", ...)`` call, or
        None when ``value`` is anything else (dynamic args included)."""
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "slots"
                and not value.keywords
                and self.tag(value.func.value) == Tag.SCHEMA):
            return None
        fields: list[str] = []
        for arg in value.args:
            if not (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)):
                return None
            fields.append(arg.value)
        return fields

    def process_assignments(self, stmts: list[ast.AST]) -> None:
        """Seed bindings from the scope's assignments in source order."""
        for node in stmts:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self.bind_target(target, self.tag(node.value), node.value)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if node.value is not None:
                    self.bind_target(node.target, self.tag(node.value),
                                     node.value)
            elif isinstance(node, ast.NamedExpr):
                self.bind_target(node.target, self.tag(node.value),
                                 node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                iter_tag = self.tag(node.iter)
                if iter_tag == Tag.NBR_ROWS:
                    self.bind_target(node.target, Tag.NBR_ROWS)
                else:
                    self.bind_target(node.target, Tag.OTHER)
            elif isinstance(node, ast.comprehension):
                iter_tag = self.tag(node.iter)
                if iter_tag == Tag.NBR_ROWS:
                    self.bind_target(node.target, Tag.NBR_ROWS)
                else:
                    self.bind_target(node.target, Tag.OTHER)


def _is_scope(node: ast.AST) -> bool:
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda))


def _seed_params(env: ScopeEnv, node: ast.AST) -> None:
    args = getattr(node, "args", None)
    if args is None:
        return
    all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    for arg in all_args:
        tag = PARAM_TAGS.get(arg.arg)
        if tag is not None:
            env.names[arg.arg] = tag


class ScopeMap:
    """The scope environments of one function unit plus node -> scope
    resolution (via a parent map over the whole subtree)."""

    def __init__(self, root: ast.FunctionDef) -> None:
        self.root = root
        self.envs: dict[int, ScopeEnv] = {}
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(root):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._build(root, None)

    def _build(self, scope_node: ast.AST, parent: Optional[ScopeEnv]) -> None:
        env = ScopeEnv(scope_node, parent)
        self.envs[id(scope_node)] = env
        _seed_params(env, scope_node)
        # collect this scope's statements (not descending into sub-scopes),
        # then recurse into the sub-scopes with this env as parent
        own_stmts: list[ast.AST] = []
        sub_scopes: list[ast.AST] = []
        stack = list(ast.iter_child_nodes(scope_node))
        while stack:
            node = stack.pop(0)
            if _is_scope(node):
                sub_scopes.append(node)
                continue
            own_stmts.append(node)
            stack.extend(ast.iter_child_nodes(node))
        own_stmts.sort(key=lambda n: (getattr(n, "lineno", 0),
                                      getattr(n, "col_offset", 0)))
        env.process_assignments(own_stmts)
        for sub in sub_scopes:
            self._build(sub, env)

    def scope_of(self, node: ast.AST) -> ScopeEnv:
        """The innermost scope environment enclosing ``node``."""
        cur: ast.AST | None = node
        while cur is not None:
            env = self.envs.get(id(cur))
            if env is not None:
                return env
            cur = self._parents.get(id(cur))
        return self.envs[id(self.root)]

    def tag(self, node: ast.AST) -> str:
        """Tag an expression in its own enclosing scope."""
        return self.scope_of(node).tag(node)


def build_scopes(root: ast.FunctionDef) -> ScopeMap:
    """Scope environments for ``root`` and every nested def/lambda.

    Comprehension generators bind into the *enclosing* function scope (a
    harmless over-approximation that keeps loop-variable tags visible to
    the element expressions)."""
    return ScopeMap(root)

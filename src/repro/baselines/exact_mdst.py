"""Exact minimum-degree spanning trees by branch and bound.

Deciding ``Delta_min(G) <= k`` is NP-hard (Hamiltonian path is the k = 2
case, Section II-B of the paper), so this oracle is exponential and only
meant for the small instances the tests and benchmarks use to certify that
the Fuerer–Raghavachari output is within +1 of the optimum.

The search walks spanning trees edge by edge (connected expansion) with two
prunings: degrees are capped at the candidate bound ``k``, and a node whose
remaining incident capacity cannot connect the remainder is abandoned via
the standard "all edges decided" cut.  ``exact_minimum_degree`` then binary
searches ``k`` downward from any heuristic tree.
"""

from __future__ import annotations

from repro.graphs.network import Network, UWEdge

__all__ = ["spanning_tree_with_max_degree", "exact_minimum_degree", "exact_mdst_tree"]


def spanning_tree_with_max_degree(net: Network, k: int) -> set[tuple[int, int]] | None:
    """A spanning tree with maximum degree <= k, or None if none exists."""
    if net.n == 1:
        return set()
    if k < 1:
        return None
    nodes = list(net.nodes)
    deg = {v: 0 for v in nodes}
    in_tree = {nodes[0]}
    chosen: list[tuple[int, int]] = []

    # order frontier expansions deterministically for reproducibility
    def frontier_edges() -> list[tuple[int, int]]:
        out = []
        for u in in_tree:
            if deg[u] >= k:
                continue
            for v in net.neighbors(u):
                if v not in in_tree:
                    out.append((u, v))
        # heuristics: expand toward low-connectivity nodes first
        out.sort(key=lambda e: (len(net.neighbors(e[1])), e))
        return out

    def extend() -> bool:
        if len(in_tree) == net.n:
            return True
        candidates = frontier_edges()
        if not candidates:
            return False
        for u, v in candidates:
            deg[u] += 1
            deg[v] += 1
            in_tree.add(v)
            chosen.append(UWEdge(u, v))
            if extend():
                return True
            chosen.pop()
            in_tree.discard(v)
            deg[u] -= 1
            deg[v] -= 1
        return False

    if extend():
        return set(chosen)
    return None


def exact_minimum_degree(net: Network) -> int:
    """Delta_min(G): the minimum over spanning trees of the maximum degree."""
    if net.n == 1:
        return 0
    # a spanning tree of max degree 1 exists only for a single edge
    lo = 1
    for k in range(lo, net.n):
        if spanning_tree_with_max_degree(net, k) is not None:
            return k
    raise AssertionError("a connected graph has a spanning tree of degree < n")


def exact_mdst_tree(net: Network) -> set[tuple[int, int]]:
    """One optimal minimum-degree spanning tree (edge set)."""
    k = exact_minimum_degree(net)
    tree = spanning_tree_with_max_degree(net, k)
    assert tree is not None
    return tree

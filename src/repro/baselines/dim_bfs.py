"""The ad hoc self-stabilizing BFS baseline (Dolev–Israeli–Moran style).

The classical non-framework construction the related work recalls: nodes
greedily adopt the best (root id, distance) claim in their neighborhood.
This is exactly the :class:`repro.core.sst.SpanningTreeProtocol`; the alias
exists so the benchmarks read naturally when comparing the paper's
PLS-guided BFS against the classic ad hoc one (same task, different
mechanism: the ad hoc protocol re-hooks parents freely and is *not*
loop-free during convergence, while the guided protocol mutates the tree
only through verified Section IV switches).
"""

from repro.core.sst import SpanningTreeProtocol

__all__ = ["AdHocBFSProtocol"]


class AdHocBFSProtocol(SpanningTreeProtocol):
    """The classic baseline under its benchmark name."""

    name = "adhoc-bfs"

"""The ad hoc self-stabilizing BFS baseline (Dolev–Israeli–Moran style).

The classical non-framework construction the related work recalls: nodes
greedily adopt the best (root id, distance) claim in their neighborhood.
This is exactly the :class:`repro.core.sst.SpanningTreeProtocol`; the alias
exists so the benchmarks read naturally when comparing the paper's
PLS-guided BFS against the classic ad hoc one (same task, different
mechanism: the ad hoc protocol re-hooks parents freely and is *not*
loop-free during convergence, while the guided protocol mutates the tree
only through verified Section IV switches).
"""

from repro.core.sst import SpanningTreeProtocol
from repro.graphs.network import Network

__all__ = ["AdHocBFSProtocol"]


class AdHocBFSProtocol(SpanningTreeProtocol):
    """The classic baseline under its benchmark name."""

    name = "adhoc-bfs"

    def probe_potential(self, net: Network, config) -> int:
        """BFS depth potential: the sum of claimed distances.

        The BFS-flavored convergence measure for this baseline (the
        related BFS-revised lines argue round complexity through exactly
        this descent): once root claims settle, progress is the claimed
        depths ``d`` contracting onto the true BFS distances.  Junk or
        out-of-range depths contribute the bound ``n_bound`` — total on
        arbitrary configurations.  Observer surface only; no rule reads
        this.
        """
        bound = net.n_bound
        total = 0
        for v in net.nodes:
            d = config[v]["d"]
            total += d if (type(d) is int and 0 <= d < bound) else bound
        return total

"""Baseline algorithms the paper compares against (Sections I-C, I-D).

Ground truth:

* :mod:`sequential_mst` — Kruskal / Prim / Boruvka;
* :mod:`exact_mdst` — exact minimum-degree spanning trees by branch and
  bound (small instances; the problem is NP-hard).

Distributed baselines (faithful in the complexity dimensions the paper
compares on — memory and silence):

* :mod:`dim_bfs` — a Dolev–Israeli–Moran style ad hoc self-stabilizing BFS;
* :mod:`bgr_mdst` — a non-silent MDST construction keeping Omega(n log n)
  bits per node, in the style of ref [16];
* :mod:`compact_mst` — a non-silent O(log n)-bit MST token walker, in the
  style of refs [17]/[51].
"""

from repro.baselines.sequential_mst import (
    kruskal_mst,
    prim_mst,
    boruvka_mst,
    is_mst,
)
from repro.baselines.exact_mdst import exact_minimum_degree, exact_mdst_tree
from repro.baselines.dim_bfs import AdHocBFSProtocol
from repro.baselines.compact_mst import CompactNonSilentMST
from repro.baselines.bgr_mdst import BigMemoryMDST

__all__ = [
    "kruskal_mst",
    "prim_mst",
    "boruvka_mst",
    "is_mst",
    "exact_minimum_degree",
    "exact_mdst_tree",
    "AdHocBFSProtocol",
    "CompactNonSilentMST",
    "BigMemoryMDST",
]

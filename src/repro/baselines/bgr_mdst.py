"""A non-silent Omega(n log n)-bit MDST baseline in the style of ref [16].

The Section I-C comparison for MDST: the only previously known
self-stabilizing (OPT+1)-approximation [16] is *not silent* and needs
Omega(n log n) bits per node (every node maintains global tree knowledge —
an edge list / routing table of the current spanning tree).

This stand-in reproduces the two compared dimensions:

* per-node memory Omega(n log n): each node's register holds a full copy
  of the current tree's edge set (the bit accounting charges it exactly);
* non-silence: nodes perpetually re-gossip a version counter validating
  their copies.

The tree itself is the Fuerer–Raghavachari result, so the *quality*
matches the paper's algorithm and the benchmark isolates the memory and
silence comparison (DESIGN.md, substitution 4).
"""

from __future__ import annotations

from repro.core.fr import fuerer_raghavachari
from repro.graphs.network import Network
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.registers import RegisterSpec, counter_field, custom_field

__all__ = ["BigMemoryMDST"]


class BigMemoryMDST(Protocol):
    """Omega(n log n) bits, never silent: the ref [16] trade-off."""

    name = "bgr-mdst"

    MOD = 8

    def register_spec(self, net: Network) -> RegisterSpec:
        def edges_bits(net_, value):
            # a global edge list: (n - 1) edges, two identities each
            return 2 * net_.id_bits() * max(1, len(value))

        def edges_corrupt(net_, node, rng):
            k = rng.randrange(1, net_.n)
            out = []
            for _ in range(k):
                u = rng.randint(1, net_.id_space)
                v = rng.randint(1, net_.id_space)
                if u != v:
                    out.append((min(u, v), max(u, v)))
            return tuple(out)

        return RegisterSpec([
            custom_field("tree_copy", lambda n, v: (), edges_bits,
                         edges_corrupt),
            counter_field("beat", lambda n: self.MOD - 1),
        ])

    def _target(self, net: Network) -> tuple:
        cached = getattr(self, "_target_cache", None)
        if cached is None or cached[0] is not net:
            # Waived as sound: the FR detector reads only the
            # *incorruptible topology* (nodes/edges/weights), never a
            # register, so its result is a per-network constant — no
            # register write can stale a cached proposal and the default
            # neighborhood invalidation is safe.  Its set iterations
            # cannot leak nondeterminism into rules either: the computed
            # tree is pinned by the instance cache for the lifetime of
            # the run, so every evaluation path sees one value.
            run = fuerer_raghavachari(net)  # statics: ignore[L, D]
            cached = (net, tuple(sorted(run.tree.edges())))
            self._target_cache = cached
        return cached[1]

    def step(self, view: NodeView) -> dict | None:
        target = self._target(view.net)
        delta = {}
        if view["tree_copy"] != target:
            delta["tree_copy"] = target
        # perpetual gossip: advance once no neighbor lags behind
        my = view["beat"]
        lag = [u for u in view.neighbors
               if (view.nbr(u)["beat"] - my) % self.MOD > self.MOD // 2]
        if not lag:
            delta["beat"] = (my + 1) % self.MOD
        return delta or None

    def is_legal(self, net: Network, config) -> bool:
        target = self._target(net)
        return all(config[v]["tree_copy"] == target for v in net.nodes)

"""Sequential MST algorithms (ground truth for Section VI).

With pairwise-distinct weights (the paper's w.l.o.g. assumption) the MST is
unique, so ``kruskal_mst``, ``prim_mst`` and ``boruvka_mst`` must all return
the same edge set — itself a useful cross-check exercised by the tests.
"""

from __future__ import annotations

from repro.graphs.network import Network, UWEdge

__all__ = ["kruskal_mst", "prim_mst", "boruvka_mst", "is_mst"]


class _UnionFind:
    def __init__(self, items) -> None:
        self._parent = {x: x for x in items}
        self._rank = {x: 0 for x in items}

    def find(self, x):
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a, b) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True


def kruskal_mst(net: Network) -> set[tuple[int, int]]:
    """The unique MST by Kruskal's algorithm."""
    uf = _UnionFind(net.nodes)
    chosen: set[tuple[int, int]] = set()
    for e in sorted(net.edges, key=net.weight_of):
        if uf.union(*e):
            chosen.add(e)
    return chosen


def prim_mst(net: Network, start: int | None = None) -> set[tuple[int, int]]:
    """The unique MST by Prim's algorithm (binary-heap free, O(n m))."""
    start = net.min_id if start is None else start
    in_tree = {start}
    chosen: set[tuple[int, int]] = set()
    while len(in_tree) < net.n:
        best = None
        for u in in_tree:
            for v in net.neighbors(u):
                if v in in_tree:
                    continue
                w = net.weight(u, v)
                if best is None or w < best[0]:
                    best = (w, u, v)
        assert best is not None, "network is connected"
        _, u, v = best
        chosen.add(UWEdge(u, v))
        in_tree.add(v)
    return chosen


def boruvka_mst(net: Network) -> set[tuple[int, int]]:
    """The unique MST by Boruvka's algorithm (the paper's Section VI engine).

    Each phase selects, for every fragment, its minimum-weight outgoing
    edge, then merges along the selected edges; at most ceil(log2 n) phases.
    """
    fragment = {v: v for v in net.nodes}
    chosen: set[tuple[int, int]] = set()
    while len(set(fragment.values())) > 1:
        best: dict[int, tuple[int, tuple[int, int]]] = {}
        for e in net.edges:
            u, v = e
            fu, fv = fragment[u], fragment[v]
            if fu == fv:
                continue
            w = net.weight_of(e)
            for f in (fu, fv):
                if f not in best or w < best[f][0]:
                    best[f] = (w, e)
        for _, e in best.values():
            chosen.add(e)
        # recompute fragments as components of the chosen edges
        fragment = _components_min_id(net, chosen)
    return chosen


def _components_min_id(net: Network, edges: set[tuple[int, int]]) -> dict[int, int]:
    """Component labels (minimum member id) of the subgraph ``edges``."""
    adj: dict[int, list[int]] = {v: [] for v in net.nodes}
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    label: dict[int, int] = {}
    for v in net.nodes:
        if v in label:
            continue
        comp = [v]
        seen = {v}
        stack = [v]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y not in seen:
                    seen.add(y)
                    comp.append(y)
                    stack.append(y)
        mid = min(comp)
        for x in comp:
            label[x] = mid
    return label


def is_mst(net: Network, edges: set[tuple[int, int]]) -> bool:
    """Whether ``edges`` is the (unique) MST of ``net``."""
    return {UWEdge(*e) for e in edges} == kruskal_mst(net)

"""A non-silent O(log n)-bit MST baseline in the style of refs [17]/[51].

The paper's Section I-C comparison: there exist *more compact* MST
algorithms (O(log n) bits per node instead of the Theta(log^2 n) needed by
any silent one, per ref [50]) — but they are **not silent**: they verify
the tree by perpetually circulating tokens/waves, so registers keep
changing even in a legal state.

This stand-in reproduces exactly the two compared dimensions:

* per-node memory O(log n) bits: a parent pointer and a wave counter —
  no Boruvka trace, no per-level fragment certificates;
* perpetual motion: a verification wave sweeps the tree forever (each node
  increments its counter once its tree neighbors caught up), so the
  protocol never reaches a silent configuration by design.

The tree it maintains is produced by a distributed Boruvka oracle at
wave boundaries (the full message-passing engine of [51] is out of scope —
the comparison the paper makes is about silence and register width, which
this baseline reproduces faithfully; see DESIGN.md, substitution 4).
"""

from __future__ import annotations

from repro.baselines.sequential_mst import kruskal_mst
from repro.core.trees import tree_from_edges
from repro.graphs.network import Network
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.registers import (
    NONE,
    RegisterSpec,
    counter_field,
    opt_id_field,
)

__all__ = ["CompactNonSilentMST"]


class CompactNonSilentMST(Protocol):
    """O(log n) bits, never silent: the refs [17]/[51] trade-off."""

    name = "compact-mst"

    #: wave counter modulus (any constant >= 3 works)
    MOD = 8

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            opt_id_field("par"),
            counter_field("wave", lambda n: self.MOD - 1),
        ])

    def initial_configuration(self, net: Network):
        cfg = super().initial_configuration(net)
        tree = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
        for v in net.nodes:
            cfg[v]["par"] = tree.parent(v) or NONE
        return cfg

    def step(self, view: NodeView) -> dict | None:
        # perpetual verification wave: advance once every tree neighbor is
        # at my counter or one ahead (mod MOD) — an unsynchronized unison
        me = view.id
        my = view["wave"]
        tree_nbrs = [u for u in view.neighbors
                     if view.nbr(u)["par"] == me or view["par"] == u]
        behind = [u for u in tree_nbrs
                  if (view.nbr(u)["wave"] - my) % self.MOD > self.MOD // 2]
        if behind:
            return None  # wait for laggards
        return {"wave": (my + 1) % self.MOD}

    def fast_step_slots(self, schema):
        """The wave rule compiled to slot indices (Protocol.fast_step_slots).

        A transliteration of :meth:`step`: every tree neighbor's lag test
        is evaluated (no early exit) so junk wave values raise the same
        TypeError at the same selection the NodeView path would.
        """
        PAR, WAVE = schema.slots("par", "wave")
        MOD = self.MOD
        HALF = MOD // 2

        def rule(net, config, me, own, nbr_rows):
            my = own[WAVE]
            mypar = own[PAR]
            behind = False
            for u, st in nbr_rows:
                if st[PAR] == me or mypar == u:
                    if (st[WAVE] - my) % MOD > HALF:
                        behind = True
            if behind:
                return None
            return {WAVE: (my + 1) % MOD}

        return rule

    def is_legal(self, net: Network, config) -> bool:
        """Legal = the parent pointers encode the MST (the wave counters
        keep spinning regardless — that is the point)."""
        edges = set()
        for v in net.nodes:
            p = config[v]["par"]
            if p is not NONE:
                edges.add((min(v, p), max(v, p)))
        return edges == kruskal_mst(net)

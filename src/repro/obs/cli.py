"""``python -m repro obs`` — convergence telemetry commands.

::

    python -m repro obs record --workload smoke-sst-48 --out trace.jsonl
    python -m repro obs report trace.jsonl
    python -m repro obs tail trace.jsonl
    python -m repro obs validate trace.jsonl other.jsonl
    python -m repro obs overhead

``record`` replays a pinned benchmark workload once with a
:class:`~repro.obs.probes.TraceRecorder` attached, so the trace
describes exactly the execution the perf numbers are quoted on —
including sharded workloads, which stream per-round frames from the
worker processes.  ``report`` renders a finished trace (sparklines +
per-round table); ``tail`` follows a live capture line by line.
``overhead`` is the CI gate for the zero-overhead claim: it asserts
*structurally* that a recorder-less simulator runs the exact
pre-telemetry round loop (no shadowed ``run_round``), then interleaves
A/B timed runs to bound any residual construction-path drift.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

__all__ = ["register_obs"]


def _workload(name: str):
    from repro.perf.workloads import WORKLOADS
    if name not in WORKLOADS:
        raise SystemExit(f"error: unknown workload {name!r}; "
                         f"known: {', '.join(sorted(WORKLOADS))}")
    return WORKLOADS[name]


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.obs.probes import TraceRecorder
    from repro.obs.trace import validate_trace
    from repro.perf.harness import _one_execution

    workload = _workload(args.workload)
    out = Path(args.out)
    recorder = TraceRecorder(out, header_extra={"workload": workload.name})
    try:
        _, moves, rounds, silent, n, m = _one_execution(
            workload, recorder=recorder)
    except BaseException:
        recorder.abort()
        raise
    problems = validate_trace(out)
    if problems:  # pragma: no cover - recorder bug, not a user error
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        raise SystemExit(f"error: recorded trace {out} failed validation")
    print(f"recorded {workload.name} (n={n}, m={m}): "
          f"rounds={rounds} moves={moves} silent={silent}")
    print(f"trace written to {out} "
          f"(render: python -m repro obs report {out})")
    return 0


def _load(path: str):
    from repro.obs.trace import read_trace
    try:
        return read_trace(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_report
    header, rows, end = _load(args.path)
    print(render_report(header, rows, end, max_rows=args.max_rows), end="")
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    """Follow a (possibly still growing) trace until its ``end`` record.

    The file is polled and parsed line-wise; a torn final line — a
    capture mid-write — is simply held back until the writer finishes
    it, which is why rows are flushed whole by the recorder.
    """
    from repro.obs.report import render_row
    path = Path(args.path)
    pos = 0
    buf = ""
    deadline = time.monotonic() + args.timeout if args.timeout else None
    try:
        while True:
            if path.exists():
                with path.open() as fh:
                    fh.seek(pos)
                    chunk = fh.read()
                    pos = fh.tell()
                buf += chunk
                while "\n" in buf:
                    line, buf = buf.split("\n", 1)
                    if not line.strip():
                        continue
                    try:
                        obj = json.loads(line)
                    except ValueError:
                        print("  (unparseable line skipped)",
                              file=sys.stderr)
                        continue
                    kind = obj.get("kind")
                    if kind == "header":
                        print(f"trace: protocol={obj.get('protocol')} "
                              f"scheduler={obj.get('scheduler')} "
                              f"n={obj.get('n')} "
                              f"probes={','.join(obj.get('probes', []))}")
                    elif kind == "round":
                        print(render_row(obj), flush=True)
                    elif kind == "end":
                        print(f"end: rounds={obj.get('rounds')} "
                              f"moves={obj.get('moves')} "
                              f"silent={obj.get('silent')}")
                        return 0
            if deadline is not None and time.monotonic() > deadline:
                print("tail: timeout before the end record", file=sys.stderr)
                return 1
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.obs.trace import validate_trace
    failures = 0
    for path in args.paths:
        problems = validate_trace(path)
        if problems:
            failures += 1
            print(f"{path}: INVALID")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


_OMIT = object()  # sentinel: build without passing the recorder kwarg


def _build_sim(workload, recorder=_OMIT):
    from repro.experiments.registry import (
        SCHEDULERS,
        build_config,
        build_network,
        build_protocol,
    )
    from repro.runtime.simulator import Simulator
    net = build_network(workload.topology, workload.topo, random.Random(0))
    proto, _ = build_protocol(workload.protocol)
    config, _ = build_config(workload.init, net, proto, random.Random(1),
                             workload.init_args)
    scheduler = SCHEDULERS[workload.scheduler](workload.scheduler_seed)
    if recorder is _OMIT:
        return Simulator(net, proto, scheduler, config=config)
    return Simulator(net, proto, scheduler, config=config, recorder=recorder)


def _timed_to_silence(sim) -> tuple[float, int]:
    t0 = time.perf_counter()
    while sim.run_round(max_moves=10_000_000):
        pass
    return time.perf_counter() - t0, sim.moves


def _timed_sample(workload, inner: int, recorder=_OMIT) -> tuple[float, int]:
    """One timed sample: ``inner`` consecutive build+run-to-silence
    executions.  A single acceptance run lasts ~0.1s — short enough
    that one scheduler hiccup skews it by several percent; aggregating
    stretches the sample past the noise scale."""
    total = 0.0
    moves = 0
    for _ in range(inner):
        sec, moves = _timed_to_silence(_build_sim(workload,
                                                  recorder=recorder))
        total += sec
    return total, moves


def _cmd_overhead(args: argparse.Namespace) -> int:
    """The zero-overhead gate for disabled probes.

    Two checks.  The structural one is the proof: without a recorder
    the ``run_round`` entry point must be the plain class method (no
    instance attribute shadowing it), because that is *how* the
    disabled path is the pre-telemetry byte path — hook selection
    happens once at construction, never per move, so the per-move cost
    of a disabled probe is zero instructions, not merely "under 2%".
    The timed A/B (no ``recorder`` argument vs. an explicit
    ``recorder=None``) is the tripwire behind the proof: the two sides
    run identical code, so its median within-pair ratio should sit at
    1.0 up to scheduler noise, and a breach of the (deliberately
    noise-sized, like the bench gate's 2.5x) tolerance means someone
    re-engaged the observed loop on the disabled path — a ~2x shift,
    unmistakable at any tolerance.
    """
    import tempfile

    from repro.obs.probes import TraceRecorder
    from repro.runtime.simulator import Simulator

    workload = _workload(args.workload)
    if workload.shards:
        raise SystemExit("error: overhead gates the single-process engine; "
                         "pick an unsharded workload")

    # -- structural: the disabled path leaves run_round unshadowed
    sim = _build_sim(workload, recorder=None)
    if "run_round" in vars(sim):
        raise SystemExit(
            "FAIL: recorder=None shadowed run_round on the instance — "
            "the disabled path is no longer the pre-telemetry byte path")
    assert type(sim).run_round is Simulator.run_round
    with tempfile.TemporaryDirectory() as tmp:
        recorder = TraceRecorder(Path(tmp) / "probe.jsonl")
        sim_obs = _build_sim(workload, recorder=recorder)
        if "run_round" not in vars(sim_obs):
            raise SystemExit(
                "FAIL: attaching a recorder did not engage the observed "
                "round loop")
        recorder.abort()
    print("structural: ok — recorder=None leaves run_round on the class, "
          "a live recorder shadows it")

    # -- timed A/B.  Wall clocks drift heavily across a process's
    # lifetime (frequency ramp, cache warmth: identical runs vary by
    # tens of percent end to end), so absolute medians cannot gate at
    # 2%.  Adjacent runs barely drift — so each pair is timed
    # back-to-back, the order alternates pair to pair (drift bias flips
    # sign), and the gate is on the *median of within-pair ratios*.
    _timed_to_silence(_build_sim(workload))  # warmup, discarded
    ratios: list[float] = []
    moves = 0
    for i in range(args.repeats):
        if i % 2 == 0:
            sec_a, moves = _timed_sample(workload, args.inner)
            sec_b, _ = _timed_sample(workload, args.inner, recorder=None)
        else:
            sec_b, _ = _timed_sample(workload, args.inner, recorder=None)
            sec_a, moves = _timed_sample(workload, args.inner)
        ratios.append(sec_b / sec_a)
    med = statistics.median(ratios)
    rel = abs(med - 1.0)
    print(f"timed: {workload.name} to silence ({moves} moves), "
          f"{args.repeats} alternating back-to-back pairs")
    print(f"  recorder=None vs default, per-pair time ratio: "
          f"{' '.join(f'{r:.3f}' for r in ratios)}")
    print(f"  median ratio           {med:.4f} "
          f"(delta {rel * 100:.2f}%, tolerance "
          f"{args.tolerance * 100:.0f}%)")
    if rel > args.tolerance:
        print("FAIL: disabled-probe overhead outside tolerance",
              file=sys.stderr)
        return 1

    # -- informational: what enabling the probes costs (not gated)
    with tempfile.TemporaryDirectory() as tmp:
        rec = TraceRecorder(Path(tmp) / "enabled.jsonl")
        sim_on = _build_sim(workload, recorder=rec)
        sec_on, moves_on = _timed_to_silence(sim_on)
        rec.finalize(silent=sim_on.is_silent())
    print(f"  probes enabled (info)  {sec_on:.4f}s "
          f"({moves_on / sec_on:,.0f} moves/s) — traces and timings are "
          f"recorded in separate runs by design")
    print("overhead gate: PASS")
    return 0


def register_obs(subparsers) -> None:
    """Attach the ``obs`` subcommand to ``python -m repro``."""
    obs = subparsers.add_parser(
        "obs", help="convergence telemetry: record, render, gate")
    osub = obs.add_subparsers(dest="subcommand", required=True)

    p_record = osub.add_parser(
        "record", help="record a convergence trace of a pinned workload")
    p_record.add_argument("--workload", required=True,
                          help="a repro.perf workload name "
                               "(see `python -m repro bench --list`)")
    p_record.add_argument("--out", required=True, metavar="PATH",
                          help="where the JSONL trace lands")
    p_record.set_defaults(fn=_cmd_record)

    p_report = osub.add_parser(
        "report", help="render a finished trace (sparklines + table)")
    p_report.add_argument("path")
    p_report.add_argument("--max-rows", type=int, default=40,
                          help="per-round table rows before eliding "
                               "the middle (default 40)")
    p_report.set_defaults(fn=_cmd_report)

    p_tail = osub.add_parser(
        "tail", help="follow a live capture line by line")
    p_tail.add_argument("path")
    p_tail.add_argument("--interval", type=float, default=0.25,
                        help="poll interval in seconds (default 0.25)")
    p_tail.add_argument("--timeout", type=float, default=0.0,
                        help="give up after this many seconds without an "
                             "end record (default: wait forever)")
    p_tail.set_defaults(fn=_cmd_tail)

    p_validate = osub.add_parser(
        "validate", help="check trace files against the schema")
    p_validate.add_argument("paths", nargs="+")
    p_validate.set_defaults(fn=_cmd_validate)

    p_over = osub.add_parser(
        "overhead",
        help="CI gate: disabled probes must cost nothing (structural + "
             "timed)")
    p_over.add_argument("--workload", default="acceptance-sst-512")
    p_over.add_argument("--repeats", type=int, default=5,
                        help="interleaved A/B pairs (default 5)")
    p_over.add_argument("--inner", type=int, default=3,
                        help="executions aggregated per timed sample "
                             "(default 3)")
    p_over.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed |median pair ratio - 1| (default "
                             "0.15: sized to shared-runner noise — an "
                             "accidentally engaged observed loop shows "
                             "as ~2x, far outside any tolerance)")
    p_over.set_defaults(fn=_cmd_overhead)

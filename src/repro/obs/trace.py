"""The convergence-trace format: schema, canonical emission, validation.

A trace is one JSONL file per execution — a ``header`` line describing
the workload and the engine configuration that produced it, one
``round`` line per executed round, optional ``event`` lines marking
topology events between rounds (schema v2, the dynamics engine), and an
``end`` line carrying the final totals.  The format is the observability twin of the
``BENCH_*.json`` perf reports (:mod:`repro.perf.emitter`): schema
versioned, self-describing, validated before anything consumes it.

Two properties are load-bearing:

* **Byte determinism.**  Lines are canonical JSON (sorted keys, no
  whitespace) and carry *no* wall-clock fields — two runs of the same
  pinned workload produce byte-identical traces, which is what the
  determinism tests diff.  Timing lives in the perf reports; traces
  record only the convergence trajectory.
* **Torn-tail honesty.**  A trace being written when the process dies
  ends mid-line.  Like the campaign result store, validation treats a
  torn *final* line as a distinct, recognizable condition (the file is
  an honest prefix) while garbage *mid-file* is corruption, full stop.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "dump_line",
    "make_header",
    "make_event",
    "make_end",
    "validate_trace",
    "read_trace",
]

#: Bump on incompatible trace-shape changes; validate_trace refuses
#: traces written under any other version.  v2 added ``event`` rows
#: (topology events interleaved between rounds).
TRACE_SCHEMA_VERSION = 2

#: Keys every header line must carry.
_REQUIRED_HEADER_KEYS = ("kind", "schema", "protocol", "scheduler", "n",
                         "engine", "probes")

#: Keys every round line must carry (probe columns beyond these are
#: declared by the header's ``probes`` list and validated per-trace).
_REQUIRED_ROUND_KEYS = ("kind", "round", "moves", "enabled_start",
                        "enabled_end")

#: Keys every event line must carry (schema v2): which round it landed
#: after, the event payload, and the post-event network/enabled sizes.
_REQUIRED_EVENT_KEYS = ("kind", "after_round", "event", "n", "enabled")

#: Keys the end line must carry (the totals the validator cross-checks
#: against the per-round rows).
_REQUIRED_END_KEYS = ("kind", "rounds", "moves", "silent")


def dump_line(obj: dict[str, Any]) -> str:
    """Canonical single-line JSON — the only serialization traces use.

    Sorted keys and fixed separators make emission a pure function of
    the payload, which is what buys byte-identical traces across
    repeats and engine paths.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def make_header(*, protocol: str, scheduler: str, n: int,
                engine: dict[str, Any], probes: list[str],
                **extra: Any) -> dict[str, Any]:
    """Assemble a header line payload (``extra`` for workload/shards)."""
    header: dict[str, Any] = {
        "kind": "header",
        "schema": TRACE_SCHEMA_VERSION,
        "protocol": protocol,
        "scheduler": scheduler,
        "n": n,
        "engine": engine,
        "probes": sorted(probes),
    }
    header.update(extra)
    return header


def make_event(*, after_round: int, event: dict[str, Any], n: int,
               enabled: int) -> dict[str, Any]:
    """Assemble a topology-event line payload (schema v2).

    ``after_round`` pins the event between rounds — it equals the number
    of round records emitted before it, which the validator re-derives.
    """
    return {"kind": "event", "after_round": after_round, "event": event,
            "n": n, "enabled": enabled}


def make_end(*, rounds: int, moves: int, silent: bool) -> dict[str, Any]:
    """Assemble the end line payload (totals the validator cross-checks)."""
    return {"kind": "end", "rounds": rounds, "moves": moves,
            "silent": silent}


def _split_lines(text: str) -> tuple[list[str], bool]:
    """Complete lines plus whether the file ended with a torn fragment."""
    lines = text.split("\n")
    torn = lines[-1] != ""  # no trailing newline: last line is torn
    if not torn:
        lines = lines[:-1]  # drop the empty element after the final \n
    return lines, torn


def validate_trace(path: str | Path) -> list[str]:
    """Schema errors as human-readable strings (empty when valid).

    Checks the header, row shape, round numbering (consecutive from 1),
    and that the end line's totals equal the per-round sums exactly —
    a trace whose footer disagrees with its own rows is rejected, the
    same way the perf emitter refuses to write an invalid report.
    """
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        return [f"unreadable trace: {exc}"]
    if not text:
        return ["empty trace file"]

    lines, torn = _split_lines(text)
    errors: list[str] = []
    records: list[dict[str, Any]] = []
    for i, ln in enumerate(lines, start=1):
        is_last = i == len(lines)
        if not ln.strip():
            errors.append(f"line {i}: blank line inside trace")
            continue
        try:
            rec = json.loads(ln)
        except json.JSONDecodeError:
            if is_last:
                errors.append(f"line {i}: torn tail (unparseable final "
                              "line — truncated write)")
            else:
                errors.append(f"line {i}: corrupt record mid-file")
            continue
        if is_last and torn:
            # parseable but unterminated: still a torn tail — the writer
            # terminates every line, so the trailing newline is part of
            # the record's byte contract
            errors.append(f"line {i}: torn tail (final line not "
                          "newline-terminated)")
        if not isinstance(rec, dict):
            errors.append(f"line {i}: record is not an object")
            continue
        records.append(rec)
    if errors:
        return errors

    if not records or records[0].get("kind") != "header":
        return ["line 1: first record is not a header"]
    header = records[0]
    for key in _REQUIRED_HEADER_KEYS:
        if key not in header:
            errors.append(f"header: missing {key!r}")
    if header.get("schema") != TRACE_SCHEMA_VERSION:
        errors.append(f"header: schema version {header.get('schema')!r} "
                      f"!= {TRACE_SCHEMA_VERSION}")
    if errors:
        return errors

    if records[-1].get("kind") != "end":
        return ["missing end record (trace never finalized)"]
    end = records[-1]
    for key in _REQUIRED_END_KEYS:
        if key not in end:
            errors.append(f"end: missing {key!r}")
    if errors:
        return errors

    rows = records[1:-1]
    probes = header.get("probes", [])
    total_moves = 0
    n_rounds = 0
    for pos, row in enumerate(rows, start=1):
        kind = row.get("kind")
        if kind == "event":
            # v2 topology-event marker: pinned to the round count at the
            # moment it landed, never advancing the round numbering
            where = f"record {pos} (event)"
            for key in _REQUIRED_EVENT_KEYS:
                if key not in row:
                    errors.append(f"{where}: missing {key!r}")
            if row.get("after_round") != n_rounds:
                errors.append(
                    f"{where}: after_round {row.get('after_round')!r} "
                    f"(expected {n_rounds}, the rounds executed so far)")
            continue
        where = f"round record {n_rounds + 1}"
        if kind != "round":
            errors.append(f"{where}: kind {kind!r} != 'round'")
            continue
        n_rounds += 1
        for key in _REQUIRED_ROUND_KEYS:
            if key not in row:
                errors.append(f"{where}: missing {key!r}")
        for probe in probes:
            if probe not in row:
                errors.append(f"{where}: missing declared probe column "
                              f"{probe!r}")
        if row.get("round") != n_rounds:
            errors.append(f"{where}: round number {row.get('round')!r} "
                          f"(expected consecutive {n_rounds})")
        moves = row.get("moves")
        if isinstance(moves, int):
            total_moves += moves
    if errors:
        return errors

    if end["rounds"] != n_rounds:
        errors.append(f"end: rounds {end['rounds']!r} != {n_rounds} "
                      "round records")
    if end["moves"] != total_moves:
        errors.append(f"end: moves {end['moves']!r} != per-round sum "
                      f"{total_moves}")
    return errors


def read_trace(path: str | Path) -> tuple[dict[str, Any],
                                          list[dict[str, Any]],
                                          dict[str, Any]]:
    """Validate then parse a trace into ``(header, rounds, end)``."""
    errors = validate_trace(path)
    if errors:
        raise ValueError(f"{path}: invalid trace: {errors}")
    records = [json.loads(ln)
               for ln in Path(path).read_text().splitlines() if ln.strip()]
    return records[0], records[1:-1], records[-1]

"""Ascii rendering of convergence traces: tables and sparklines.

Everything here is a pure function of a parsed trace — a report is
reproducible from the JSONL file alone, with no engine, network, or
protocol in sight.  That is the point: the trace is the durable
artifact, the rendering is a view.
"""

from __future__ import annotations

from typing import Any

__all__ = ["sparkline", "render_report", "render_row"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 60) -> str:
    """Render a numeric series as unicode block characters.

    Series longer than ``width`` are bucketed by max (the convergence
    plots care about the envelope of the decay, not individual rounds).
    An all-equal series renders flat at the lowest block.
    """
    if not values:
        return ""
    if len(values) > width:
        # bucket by max: preserves the envelope
        per = len(values) / width
        bucketed = []
        for i in range(width):
            lo, hi = int(i * per), max(int((i + 1) * per), int(i * per) + 1)
            bucketed.append(max(values[lo:hi]))
        values = bucketed
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def render_row(row: dict[str, Any]) -> str:
    """One-line rendering of a round record (the ``tail`` line shape)."""
    parts = [f"round {row.get('round', '?'):>4}",
             f"moves {row.get('moves', '?'):>7}",
             f"enabled {row.get('enabled_start', '?'):>6} "
             f"-> {row.get('enabled_end', '?'):>6}"]
    if "potential" in row:
        parts.append(f"potential {row['potential']}")
    if "per_shard" in row:
        parts.append(f"per_shard {row['per_shard']}")
    return "  ".join(parts)


def _fmt_table(columns: list[str], rows: list[list[Any]]) -> list[str]:
    cells = [[str(c) for c in r] for r in rows]
    widths = [max(len(columns[i]), *(len(r[i]) for r in cells))
              if cells else len(columns[i]) for i in range(len(columns))]
    out = ["  ".join(c.rjust(w) for c, w in zip(columns, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return out


def render_report(header: dict[str, Any], rows: list[dict[str, Any]],
                  end: dict[str, Any], *, max_rows: int = 40) -> str:
    """The full ``repro obs report`` rendering of one parsed trace."""
    lines: list[str] = []
    events = [row for row in rows if row.get("kind") == "event"]
    rows = [row for row in rows if row.get("kind") != "event"]
    engine = header.get("engine", {})
    lines.append(
        f"trace: protocol={header.get('protocol')} "
        f"scheduler={header.get('scheduler')} n={header.get('n')}")
    lines.append(
        f"engine: " + " ".join(f"{k}={v}" for k, v in sorted(engine.items()))
        + f"  probes: {','.join(header.get('probes', [])) or '(none)'}")
    if "workload" in header:
        lines.append(f"workload: {header['workload']}")
    lines.append(
        f"outcome: rounds={end['rounds']} moves={end['moves']} "
        f"silent={end['silent']}")
    if events:
        lines.append(f"topology events: {len(events)}")
        for ev in events:
            payload = ev.get("event", {})
            lines.append(f"  after round {ev.get('after_round')}: "
                         f"{payload.get('kind', '?')} {payload}  "
                         f"-> n={ev.get('n')} enabled={ev.get('enabled')}")
    lines.append("")

    # sparklines: the convergence trajectory at a glance.  The initial
    # configuration's values (header) prefix the per-round series so the
    # first descent step is visible.
    enabled = [row.get("enabled_end", 0) for row in rows]
    if "enabled_initial" in header:
        enabled = [header["enabled_initial"], *enabled]
    lines.append(f"enabled-set decay   {sparkline([float(v) for v in enabled])}")
    lines.append(f"                    start={enabled[0]} end={enabled[-1]}"
                 if enabled else "")
    moves = [float(row.get("moves", 0)) for row in rows]
    lines.append(f"moves per round     {sparkline(moves)}")
    potentials = [row["potential"] for row in rows if "potential" in row]
    if potentials:
        series = potentials
        if "potential_initial" in header:
            series = [header["potential_initial"], *series]
        lines.append(f"potential descent   "
                     f"{sparkline([float(v) for v in series])}")
        lines.append(f"                    start={series[0]} end={series[-1]}")
    lines.append("")

    # the per-round table (head and tail when the trace is long)
    base_cols = ["round", "moves", "enabled_start", "enabled_end"]
    optional = [c for c in ("selections", "dirty_peak", "settled", "vector",
                            "potential", "certified", "per_shard")
                if any(c in row for row in rows)]
    columns = base_cols + optional
    shown = rows
    elided = 0
    if len(rows) > max_rows:
        head = rows[:max_rows // 2]
        tail = rows[-(max_rows - len(head)):]
        elided = len(rows) - len(head) - len(tail)
        shown = head + [{}] + tail
    table_rows = []
    for row in shown:
        if not row:
            table_rows.append([f"... {elided} rounds elided ..."]
                              + [""] * (len(columns) - 1))
            continue
        table_rows.append([row.get(c, "") for c in columns])
    lines.extend(_fmt_table(columns, table_rows))
    return "\n".join(lines) + "\n"

"""The probe layer: recorders the engine invokes between atomic steps.

A :class:`TraceRecorder` is handed to a simulator at *construction*
(``Simulator(..., recorder=...)``); the engine then swaps in its
observed round loop once, at setup.  With no recorder the engine byte
path is exactly the pre-telemetry one — hook selection happens at
construction, never per move, which is what keeps the disabled-path
overhead inside the CI perf gate's envelope *structurally*.

Probe callbacks run **between** atomic steps, never from inside one:
they read the whole configuration by design and live outside the rule
contract (see ``OBS_ENTRYPOINTS`` in :mod:`repro.runtime.protocol` —
the statics analyzer treats them as an observer boundary, like the
certification oracle).

The module also tracks whether any capture is live in this process
(:func:`capture_active`): the perf harness refuses to record timings
while a recorder is attached anywhere, because probe work inside the
measured loop would silently poison the throughput numbers.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable

from repro.obs.trace import dump_line, make_end, make_event, make_header

__all__ = ["TraceRecorder", "capture_active"]

#: Live recorders in this process (attach increments, finalize/abort
#: decrements).  The perf harness consults this through
#: :func:`capture_active` before trusting any timing.
_ACTIVE = 0


def capture_active() -> bool:
    """Whether any trace capture is live in this process.

    ``REPRO_OBS_CAPTURE=1`` forces the answer to True — the escape used
    by sharded workers (which capture on the parent's behalf) and by the
    tests of the harness refusal path.
    """
    if os.environ.get("REPRO_OBS_CAPTURE", "") not in ("", "0"):
        return True
    return _ACTIVE > 0


class TraceRecorder:
    """Writes one convergence trace (see :mod:`repro.obs.trace`).

    One recorder serves exactly one execution: the engine attaches it at
    construction (writing the header), feeds it one row per round, and
    the driver finalizes it (writing the ``end`` totals) once the run
    stops.  Rows are flushed as written so ``repro obs tail`` can follow
    a live capture.

    Parameters
    ----------
    path:
        Where the JSONL trace lands (parents created).
    potential:
        Try the protocol's ``probe_potential`` observer at attach time;
        when it yields a value the ``potential`` column is captured
        every round (the SST packed-claim sum, the BFS depth potential).
    extra_probes:
        Optional named zero-argument callables sampled once per round —
        e.g. a ``certified`` probe wrapping the spec's local certifier,
        whose 0/1 column is what flicker counts are read from.
    header_extra:
        Extra header fields (workload name, shard count, ...).
    """

    def __init__(self, path: str | Path, *, potential: bool = True,
                 extra_probes: dict[str, Callable[[], Any]] | None = None,
                 header_extra: dict[str, Any] | None = None) -> None:
        self.path = Path(path)
        self._want_potential = potential
        self._extra_probes = dict(extra_probes or {})
        self._header_extra = dict(header_extra or {})
        self._fh: Any = None
        self._sim: Any = None
        self._potential_on = False
        self._rounds = 0
        self._moves = 0
        self._finalized = False

    # -- lifecycle -----------------------------------------------------

    def open(self, header: dict[str, Any]) -> None:
        """Write the header and go live (the engine calls this via attach)."""
        global _ACTIVE
        if self._fh is not None:
            raise RuntimeError(
                f"recorder for {self.path} already attached; one recorder "
                "serves one execution")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        self._fh.write(dump_line(header))
        self._fh.flush()
        _ACTIVE += 1

    def attach(self, sim: Any) -> None:
        """Bind to a single-process :class:`~repro.runtime.simulator.Simulator`.

        Probes the protocol's potential observer once on the initial
        configuration (a ``None`` answer disables the column for the
        whole trace), and records the engine path capabilities so a
        trace is self-describing about what produced it.
        """
        self._sim = sim
        initial = None
        if self._want_potential:
            initial = sim.protocol.probe_potential(sim.net, sim.config)
            self._potential_on = initial is not None
        probes = sorted(self._extra_probes)
        if self._potential_on:
            probes.append("potential")
        engine = {
            "slot": sim._slot_rule is not None,
            "vector": sim._vector_rule is not None,
            "fused_capable": (sim._slot_rule is not None
                              and not sim._global_reads
                              and sim._notify is None),
        }
        extra = dict(self._header_extra)
        extra["enabled_initial"] = len(sim.enabled_set())
        if self._potential_on:
            extra["potential_initial"] = initial
        self.open(make_header(
            protocol=sim.protocol.name,
            scheduler=sim.scheduler.name,
            n=sim.net.n,
            engine=engine,
            probes=probes,
            **extra))

    def attach_sharded(self, sharded: Any) -> None:
        """Bind to a :class:`~repro.runtime.sharding.engine.ShardedSimulator`.

        Sharded rows carry a ``per_shard`` moves column instead of the
        potential probe (sampling a global potential would mean
        collecting every shard's configuration each round).
        """
        probes = sorted(self._extra_probes) + ["per_shard"]
        extra = dict(self._header_extra)
        self.open(make_header(
            protocol=sharded.protocol_name,
            scheduler="synchronous-sharded",
            n=sharded.plan.n,
            engine={"sharded": True, "shards": sharded.k,
                    "processes": sharded._processes},
            probes=probes,
            **extra))

    def finalize(self, *, silent: bool) -> None:
        """Write the ``end`` totals and close (idempotent)."""
        global _ACTIVE
        if self._finalized or self._fh is None:
            return
        self._fh.write(dump_line(make_end(
            rounds=self._rounds, moves=self._moves, silent=silent)))
        self._fh.close()
        self._fh = None
        self._finalized = True
        _ACTIVE -= 1

    def abort(self) -> None:
        """Close without an ``end`` record — the honest crash shape."""
        global _ACTIVE
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            _ACTIVE -= 1

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.abort()

    # -- per-round emission --------------------------------------------

    def round_row(self, **fields: Any) -> None:
        """Emit one round record (engine-facing; totals accumulate here)."""
        if self._fh is None:
            raise RuntimeError(f"recorder for {self.path} is not open")
        self._rounds += 1
        self._moves += int(fields.get("moves", 0))
        row = {"kind": "round", "round": self._rounds}
        row.update(fields)
        for name, fn in self._extra_probes.items():
            row[name] = fn()
        self._fh.write(dump_line(row))
        self._fh.flush()

    def event_row(self, *, event: dict[str, Any], n: int,
                  enabled: int) -> None:
        """Emit one topology-event record (schema v2).

        Event rows never advance the round numbering or the move totals:
        they are markers *between* rounds, so a churned trace's ``end``
        totals still equal its per-round sums exactly.
        """
        if self._fh is None:
            raise RuntimeError(f"recorder for {self.path} is not open")
        self._fh.write(dump_line(make_event(
            after_round=self._rounds, event=event, n=n, enabled=enabled)))
        self._fh.flush()

    def on_round(self, sim: Any, **stats: Any) -> None:
        """The simulator's per-round callback (adds the potential column)."""
        if self._potential_on:
            stats["potential"] = sim.protocol.probe_potential(
                sim.net, sim.config)
        self.round_row(**stats)

"""Convergence telemetry: engine probes, trace schema, and reports.

The observability layer for the reproduction.  ``trace`` defines the
schema-versioned JSONL convergence-trace format (the observability twin
of :mod:`repro.perf.emitter`), ``probes`` holds the recorder the engine
invokes between atomic steps, and ``report`` renders ascii convergence
tables and sparklines from a trace file alone.

Probes are wired at *simulator construction* — with no recorder the
engine runs the exact pre-telemetry byte path, zero per-move branches —
so the disabled path stays inside the CI perf gate's 2% envelope by
construction, not by luck.
"""

from repro.obs.probes import TraceRecorder, capture_active
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    read_trace,
    validate_trace,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "capture_active",
    "read_trace",
    "validate_trace",
]

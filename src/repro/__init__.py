"""repro — reproduction of Blin & Fraigniaud, ICDCS 2015.

*Space-Optimal Time-Efficient Silent Self-Stabilizing Constructions of
Constrained Spanning Trees.*

The package is organised as the paper is:

* :mod:`repro.graphs`   — networks of the state model (Section II-A);
* :mod:`repro.runtime`  — registers, schedulers, execution engine (II-A);
* :mod:`repro.labeling` — proof-labeling schemes: spanning-tree, malleable
  (Lemma 4.1), NCA (+ its PLS, Lemma 5.1), MST (Section VI), FR-tree
  (Lemma 8.1);
* :mod:`repro.core`     — the PLS-guided framework: Algorithms 1-4, the
  Section IV switch protocol, and the BFS / MST / MDST instantiations;
* :mod:`repro.baselines` — the comparison algorithms of Section I-C/D;
* :mod:`repro.analysis` — experiment harness used by ``benchmarks/``.

Quickstart::

    from repro.graphs import random_connected_graph
    from repro.core.mst import SilentSelfStabilizingMST
    from repro.runtime import Simulator, random_configuration

    net = random_connected_graph(16, weighted=True, seed=1)
    proto = SilentSelfStabilizingMST()
    sim = Simulator(net, proto,
                    config=random_configuration(net, proto, seed=2))
    result = sim.run(max_rounds=200_000)
    assert result.silent and proto.is_legal(net, sim.config)
"""

__version__ = "1.0.0"

"""Bit-size accounting helpers.

The paper's space-complexity claims are stated in bits per register
(O(log n) for the tree layer and FR labels, O(log^2 n) for the MST labels).
To *measure* those claims rather than assert them, every register field in
the runtime carries an encoder; this module provides the arithmetic shared
by those encoders.

All sizes are exact bit counts for the concrete value domain used by the
simulator, e.g. an identity drawn from {1, ..., id_space} costs
``ceil(log2(id_space + 1))`` bits.
"""

from __future__ import annotations

import math

__all__ = [
    "bits_for_range",
    "bits_for_id",
    "bits_for_counter",
    "bits_for_weight",
    "bits_for_option",
    "bits_for_flag",
    "bits_for_enum",
]


def bits_for_range(cardinality: int) -> int:
    """Bits needed to store one value out of ``cardinality`` possibilities.

    >>> bits_for_range(1)
    0
    >>> bits_for_range(2)
    1
    >>> bits_for_range(1024)
    10
    """
    if cardinality < 1:
        raise ValueError(f"cardinality must be >= 1, got {cardinality}")
    return math.ceil(math.log2(cardinality)) if cardinality > 1 else 0


def bits_for_id(id_space: int) -> int:
    """Bits for a node identity in {1, ..., id_space}."""
    return bits_for_range(id_space)


def bits_for_counter(max_value: int) -> int:
    """Bits for an integer counter in {0, ..., max_value}."""
    return bits_for_range(max_value + 1)


def bits_for_weight(weight_space: int) -> int:
    """Bits for an edge weight in {1, ..., weight_space}."""
    return bits_for_range(weight_space)


def bits_for_option(inner_bits: int) -> int:
    """Bits for an optional value: one presence bit plus the payload."""
    return 1 + inner_bits


def bits_for_flag() -> int:
    """Bits for a boolean flag."""
    return 1


def bits_for_enum(n_states: int) -> int:
    """Bits for an enum with ``n_states`` states."""
    return bits_for_range(n_states)

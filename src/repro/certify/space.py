"""Bits-per-node space accounting against the paper's bounds.

The headline claims are *space* claims: O(log n)-bit registers for the
tree/BFS/NCA/FR constructions, O(log^2 n) for the MST certificate
(optimal, ref [50]).  This module measures every certified task's
register footprint — runtime registers plus certificate fields, through
the exact per-field encoders of :mod:`repro._bits` — on certified
legitimate configurations across an ``n`` sweep, and reduces each row to
the ratio ``max bits / log2(N)`` (or ``/ log2(N)^2`` for MST) that the
bound predicts stays constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.certify.schemes import CERTIFIERS, LocalCertifier

__all__ = ["SpaceRow", "measure_task", "space_rows", "render_space_table",
           "DEFAULT_SIZES"]

DEFAULT_SIZES = (16, 64, 256)


@dataclass(frozen=True)
class SpaceRow:
    """One (task, n) space measurement."""

    task: str
    bound: str
    n: int
    m: int
    max_bits: int
    mean_bits: float
    #: max_bits normalized by the bound's growth term — log2(N) for
    #: O(log n) tasks, log2(N)^2 for the MST certificate.  The paper's
    #: claim is that this column stays bounded as n grows.
    normalized: float


def _norm_term(bound: str, n_bound: int) -> float:
    log = math.log2(max(2, n_bound))
    return log * log if "2" in bound else log


def measure_task(certifier: LocalCertifier, n: int, seed: int = 1) -> SpaceRow:
    """Measure one task at one size on its certified legitimate config."""
    net = certifier.build_network(n, seed=seed)
    spec = certifier.register_spec(net)
    cfg = certifier.legitimate(net)
    per_node = [spec.state_bits(net, cfg[v]) for v in net.nodes]
    max_bits = max(per_node)
    return SpaceRow(
        task=certifier.task,
        bound=certifier.space_bound,
        n=net.n,
        m=net.m,
        max_bits=max_bits,
        mean_bits=sum(per_node) / len(per_node),
        normalized=max_bits / _norm_term(certifier.space_bound, net.n_bound),
    )


def space_rows(sizes: tuple[int, ...] = DEFAULT_SIZES,
               tasks: list[str] | None = None,
               seed: int = 1) -> list[SpaceRow]:
    """The full space table: every certified task across the size sweep."""
    chosen = tasks if tasks is not None else list(CERTIFIERS)
    rows = []
    for task in chosen:
        for n in sizes:
            rows.append(measure_task(CERTIFIERS[task], n, seed=seed))
    return rows


def render_space_table(rows: list[SpaceRow], markdown: bool = False) -> str:
    from repro.analysis import format_table
    table_rows = [
        (r.task, r.bound, r.n, r.m, r.max_bits, f"{r.mean_bits:.1f}",
         f"{r.normalized:.2f}")
        for r in rows
    ]
    return format_table(
        "space accounting: certified register bits vs the paper's bounds",
        ["task", "bound", "n", "m", "max bits", "mean bits",
         "max/bound-term"],
        table_rows, markdown=markdown)

"""The certificate-backed oracle: subtree digests + a digest-keyed memo.

The PLS-guided MST/MDST constructions take their *detector decision* —
which ``(e, f)`` improvement to execute next — at the root (DESIGN.md,
substitution 6: the paper's companion report implements this decision
with convergecast/broadcast waves over the certificates; this repo
substitutes a sequential decision procedure).  Until PR 4 the root's rule
simply read the whole configuration, which forced
``read_locality = "global"`` on the engine: any write anywhere had to
invalidate every cached proposal, the exact O(n)-rescan behavior the
incremental enabled-set engine exists to avoid.

This module removes the global read from the *transition function*:

* :class:`DigestLayer` maintains, at every node, a register field ``ver``
  holding a Merkle-style digest of the node's oracle-relevant fields plus
  its tree children's digests.  The rule is a pure 1-hop fixpoint
  (recompute-when-stale), silent exactly when every digest is consistent;
  at the fixpoint the root's 1-hop neighborhood determines (through the
  digest chain) the oracle-relevant content of the *entire* configuration.
  A remote write therefore reaches the root as a chain of ordinary
  register writes — exactly the invalidation discipline the incremental
  engine already implements for neighborhood readers.

* :class:`CertifiedOracle` memoizes the decision procedure keyed by the
  root's 1-hop digest.  The expensive global computation runs once per
  distinct digest; *every* re-evaluation of the root's rule under the
  same digest — the engine's cached proposal, the from-scratch rescan the
  property tests cross-check against, a different daemon interleaving —
  returns the identical memoized decision.  Cached proposals can thus
  never go stale relative to ``step``: the consulting rule is a pure
  function of the 1-hop view (plus the write-once memo both evaluation
  paths share), and the guided protocols honestly declare
  ``read_locality = "neighborhood"``.

The digest is the *certificate* backing the oracle: 64 bits of sha256,
constant-size per register (the space table reports it), self-correcting
from any corruption, and collision-resistant enough that two different
oracle-relevant configurations sharing a digest chain is not a practical
concern (and would cost at most one stale — valid but useless — decision,
which the phase machinery already tolerates from arbitrary initial
states).
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Mapping

from repro.graphs.network import Network
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.registers import RegisterSpec, custom_field

__all__ = ["DigestLayer", "CertifiedOracle", "DIGEST_BITS"]

#: Digest width carried per register (sha256 truncated).
DIGEST_BITS = 64


def _digest(payload: str) -> int:
    return int.from_bytes(
        hashlib.sha256(payload.encode("utf-8")).digest()[:8], "big")


def node_digest(node: int, content: tuple, kids: tuple) -> int:
    """The Merkle node formula shared by the runtime rule
    (:meth:`DigestLayer.expected`), the assigner (:func:`config_digest`)
    and the local verifier (``repro.certify.schemes._ver_ok``) — one
    definition, so the three sites cannot drift apart."""
    return _digest(repr((node, content, kids)))


class DigestLayer(Protocol):
    """Register-carried Merkle digests over the oracle-relevant fields.

    ``ver(v) = H(v, content(v), sorted (c, ver(c)) over tree children c)``
    where ``content`` is the tuple of :attr:`fields` values and children
    are the neighbors whose ``par`` pointer names ``v``.  The rule
    rewrites a stale ``ver`` — a pure 1-hop fixpoint.

    Convergence: on a stable tree the children relation is acyclic, so
    digests settle bottom-up in O(depth) rounds.  While parent pointers
    still form cycles the digests may chase each other, but a selected
    node always applies *all* of its layers' corrections in one atomic
    step (collateral composition), so the tree layer's distance chase
    advances with every such step and flushes the cycle — digest churn
    cannot starve recovery.
    """

    name = "cert-digest"

    def __init__(self, fields: tuple[str, ...] = ("rid", "par", "d", "s"),
                 parent_field: str = "par") -> None:
        self.fields = tuple(fields)
        self.parent_field = parent_field
        # Writing ``ver`` leaves the expected digest unchanged (it hashes
        # the content fields and the *children's* digests), so the writer
        # lands exactly on its target — unless ``ver`` is itself hashed,
        # which makes the digest chase its own tail.
        self.settles_after_move = "ver" not in self.fields

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            custom_field(
                "ver",
                lambda n, v: 0,
                lambda n, value: DIGEST_BITS,
                lambda n, v, rng: rng.getrandbits(DIGEST_BITS),
            ),
        ])

    # ------------------------------------------------------------------

    def expected(self, view: NodeView) -> int:
        """The digest the 1-hop neighborhood dictates for this node."""
        me = view.node
        own = view.state
        content = tuple(repr(own.get(f)) for f in self.fields)
        par_field = self.parent_field
        kids = tuple(sorted(
            (u, st.get("ver")) for u, st in view.nbr_states()
            if st.get(par_field) == me))
        return node_digest(me, content, kids)

    def step(self, view: NodeView) -> dict | None:
        want = self.expected(view)
        if view.state.get("ver") != want:
            return {"ver": want}
        return None

    def fast_step_slots(self, schema):
        """The digest fixpoint compiled to slot indices.

        Mirrors :meth:`expected`/:meth:`step` exactly — the three digest
        sites (runtime rule, assigner, verifier) still share
        :func:`node_digest`, and covered fields absent from the schema
        contribute ``repr(None)`` just as ``state.get`` does.  Reads its
        own (possibly composition-patched) register only through ``own``.
        """
        index = schema.index
        VER = index["ver"]
        PARF = index.get(self.parent_field)
        field_slots = tuple(index.get(f) for f in self.fields)

        def rule(net, config, me, own, nbr_rows) -> dict | None:
            content = tuple(
                repr(own[i]) if i is not None else "None"
                for i in field_slots)
            if PARF is None:
                kids = ()
            else:
                kids = tuple(sorted(
                    (u, st[VER]) for u, st in nbr_rows if st[PARF] == me))
            want = node_digest(me, content, kids)
            if own[VER] != want:
                return {VER: want}
            return None

        return rule

    def vector_step(self, schema, cols):
        """The digest fixpoint over the columnar plane (Protocol.vector_step).

        The child relation (*which* neighbors point here) is the only
        1-hop read, so it is the only columnar one: one mask over the CSR
        edge arrays of the ``par`` column.  Content and digests are read
        from the raw rows — ``ver`` is a 64-bit *unsigned* hash that does
        not fit the signed columns (and junk content fields may not
        encode at all), but their true reprs are what feeds sha256, so
        the row plane is authoritative.  Honors composition patches on
        the own register, mirroring :meth:`fast_step_slots`.
        """
        index = schema.index
        VER = index["ver"]
        PARF = index.get(self.parent_field)
        field_slots = tuple(index.get(f) for f in self.fields)
        rows = cols.rows
        ids = cols.ids
        n = cols.n
        np = cols.np

        def rule(store, active, patch=None):
            if PARF is None:
                kids_pos = None
            else:
                if not store.valid_slot(PARF):
                    return None
                par = store.col(PARF)
                # group child positions by owner; CSR edge order keeps
                # every per-node list ascending in neighbor id, which is
                # exactly the scalar rule's sorted() order (children are
                # distinct, so the id is the whole sort key)
                kids_pos: list[list[int]] = [[] for _ in range(n)]
                if np is not None:
                    kmask = (par[store.nbr_index]
                             == store.ids_arr[store.owner_index])
                    kedges = np.nonzero(kmask)[0]
                    owners = store.owner_index[kedges].tolist()
                    kpos = store.nbr_index[kedges].tolist()
                    for o, p in zip(owners, kpos):
                        kids_pos[o].append(p)
                else:
                    nbr = store.nbr_index
                    owner = store.owner_index
                    for e in range(store.e):
                        p = nbr[e]
                        o = owner[e]
                        if par[p] == ids[o]:
                            kids_pos[o].append(p)
            get_patch = patch.get if patch else None
            out = {}
            for i in range(n):
                me = ids[i]
                row = rows[i]
                prow = get_patch(me) if get_patch is not None else None
                if prow is None:
                    content = tuple(
                        repr(row[s]) if s is not None else "None"
                        for s in field_slots)
                    cur = row[VER]
                else:
                    content = tuple(
                        repr(prow.get(s, row[s])) if s is not None
                        else "None"
                        for s in field_slots)
                    cur = prow.get(VER, row[VER])
                if kids_pos is None:
                    kids = ()
                else:
                    kids = tuple(
                        (ids[p], rows[p][VER]) for p in kids_pos[i])
                want = node_digest(me, content, kids)
                if cur != want:
                    out[me] = {VER: want}
            return out

        return rule


class CertifiedOracle:
    """A global decision procedure behind a digest-keyed write-once memo.

    ``consult(key, compute)`` returns the memoized decision for ``key``,
    invoking ``compute`` — the expensive, globally-reading detector — only
    on the first consult of that key.  Because the memo is write-once and
    shared by every evaluation path of the owning protocol instance, the
    consulting rule's value is a deterministic function of its 1-hop view
    for the whole lifetime of a run: the engine's incremental proposals
    and a from-scratch rescan can never disagree.
    """

    __slots__ = ("_memo", "consults", "misses", "retired")

    def __init__(self) -> None:
        self._memo: dict[int, object] = {}
        #: instrumentation: consults, detector invocations, retirements
        self.consults = 0
        self.misses = 0
        self.retired = 0

    def consult(self, key: int, compute: Callable[[], object]) -> object:
        self.consults += 1
        memo = self._memo
        if key in memo:
            return memo[key]
        self.misses += 1
        value = compute()
        memo[key] = value
        return value

    def retire(self, key: int) -> None:
        """Overwrite a decision that demonstrably achieved nothing.

        A decision issued under ``key`` whose SWAP phase completed with
        the digest *unchanged* moved no register the digest covers: it
        was stale (made during a staleness window of the ack snapshots)
        or infeasible, and replaying it whenever the same key recurs is
        a livelock (found by the model checker at 2M states).  Retiring
        maps the key to None — silent — until any covered register
        changes and re-keys the consult.  Idempotent, and only ever
        invoked from the flush evaluation of the phase that executed
        the decision, so every evaluation path still sees a consistent
        memo (the consult path is not evaluated while the issuing root
        is mid-SWAP).
        """
        if self._memo.get(key) is not None:
            self.retired += 1
        self._memo[key] = None


def config_digest(net: Network, config: Mapping[int, Mapping[str, object]],
                  fields: tuple[str, ...]) -> dict[int, int]:
    """The digest fixpoint of a whole configuration (assigner side).

    Used by the certificate assigners to decorate a legitimate
    configuration with the ``ver`` values the :class:`DigestLayer` would
    settle on; raises :class:`ValueError` when the parent pointers do not
    let the fixpoint resolve (not a tree).
    """
    # children exactly as the runtime rule sees them: neighbors whose
    # ``par`` pointer names this node
    children: dict[int, list[int]] = {
        v: [u for u in net.neighbors(v) if config[u].get("par") == v]
        for v in net.nodes
    }
    out: dict[int, int] = {}

    def resolve(v: int, stack: frozenset[int]) -> int:
        if v in out:
            return out[v]
        if v in stack:
            raise ValueError("parent pointers contain a cycle")
        kids = tuple(sorted(
            (u, resolve(u, stack | {v})) for u in children[v]))
        content = tuple(repr(config[v].get(f)) for f in fields)
        out[v] = node_digest(v, content, kids)
        return out[v]

    for v in net.nodes:
        resolve(v, frozenset())
    return out

"""Exhaustive small-n model checking of the verifier-equipped protocols.

For a small instance (n <= 6) the full nondeterminism of the unfair
scheduler is enumerable: from any configuration, the daemon may activate
*every* non-empty subset of the enabled nodes.  :func:`explore` builds
the reachable state graph from a set of starting configurations under
all of those choices and checks the two halves of silent
self-stabilization plus the certification contract:

* **convergence** — the reachable graph contains no cycle among
  non-silent configurations (a cycle is a daemon strategy that runs
  forever, i.e. a livelock witness, which is returned); since silent
  configurations are sinks, acyclicity means every maximal execution
  under every daemon reaches silence;
* **closure / correctness** — every reachable silent configuration is
  legal for the task;
* **no fakes** — on every reachable silent configuration the local
  verifiers' verdict (after certificate assignment) agrees with the
  ground-truth legality predicate, i.e. no reachable configuration a
  corrupted start can produce fools the certificate scheme.

Oracle-state semantics, recorded here once.  The guided tasks keep
detector bookkeeping as protocol-instance state (the digest-keyed memo,
the issued-key retirement, guided-mdst's improvement plan — DESIGN.md,
substitution 6).  :func:`explore` therefore supports two modes:

* **shared instance** (default): one protocol object serves every
  branch, so decisions reflect the memo/plan history induced by the
  exploration order.  This is an *over-approximation* of real
  executions — cross-branch pollution can produce oracle-answer
  histories no single execution realizes — which makes it a stronger
  bug-finder (it found all four PR-4 protocol bugs) but means a
  reported cycle must be confirmed against real semantics (e.g. by
  draining the witness state through the simulator) before being read
  as a protocol livelock;
* **fresh instances** (``protocol_factory=``): every state expansion
  gets a new protocol object, i.e. the ideal-detector semantics where
  each decision is a pure function of the configuration — the exact
  Markov state machine, used by the pinned regression tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations

from repro.certify.schemes import (
    LocalCertifier,
    single_register_corruptions,
)
from repro.graphs.network import Network
from repro.runtime.protocol import NodeView, Protocol, effective_delta

__all__ = ["ModelCheckResult", "explore", "check_certifier"]

Config = dict[int, dict[str, object]]


@dataclass
class ModelCheckResult:
    """Outcome of one exhaustive exploration."""

    states: int = 0
    transitions: int = 0
    silent_states: int = 0
    #: silent configurations that are not legal (closure violations)
    illegal_silent: list[Config] = field(default_factory=list)
    #: silent configurations where verifier verdict != legality (fakes)
    fake_certified: list[Config] = field(default_factory=list)
    #: a reachable non-silent cycle, as a list of configs (livelock)
    cycle: list[Config] | None = None
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.ok_except_truncation and not self.truncated

    @property
    def ok_except_truncation(self) -> bool:
        """No violation found (exploration may still have been bounded)."""
        return (not self.illegal_silent and not self.fake_certified
                and self.cycle is None)

    def summary(self) -> str:
        if self.ok:
            verdict = "OK"
        elif self.ok_except_truncation:
            verdict = "BOUNDED (no violation in explored region)"
        else:
            verdict = "FAILED"
        bits = [f"{self.states} states", f"{self.transitions} transitions",
                f"{self.silent_states} silent"]
        if self.truncated:
            bits.append("TRUNCATED (raise max_states)")
        if self.cycle is not None:
            bits.append(f"LIVELOCK cycle of length {len(self.cycle)}")
        if self.illegal_silent:
            bits.append(f"{len(self.illegal_silent)} illegal silent")
        if self.fake_certified:
            bits.append(f"{len(self.fake_certified)} certificate fakes")
        return f"{verdict}: {', '.join(bits)}"


def _canon(net: Network, names: tuple[str, ...], config: Config):
    return tuple(
        tuple(config[v][f] for f in names) for v in sorted(config))


def _thaw(net: Network, names: tuple[str, ...], key) -> Config:
    return {v: dict(zip(names, row))
            for v, row in zip(sorted(net.nodes), key)}


def _enabled_deltas(net: Network, protocol: Protocol, config: Config):
    out = []
    for v in net.nodes:
        delta = effective_delta(protocol, NodeView(net, v, config))
        if delta is not None:
            out.append((v, delta))
    return out


def _subsets(items: list):
    for k in range(1, len(items) + 1):
        yield from combinations(items, k)


def explore(net: Network, protocol: Protocol, starts: list[Config],
            *, max_states: int = 50_000,
            is_legal=None, accepts=None,
            protocol_factory=None) -> ModelCheckResult:
    """Exhaustive daemon-choice exploration from ``starts`` (see module
    docstring).  ``is_legal(config)`` and ``accepts(config)`` are
    optional predicates for the closure and no-fake checks;
    ``protocol_factory`` switches to fresh-instance (Markov) semantics."""
    names = tuple(protocol.register_spec(net).names)
    result = ModelCheckResult()
    succs: dict[object, list] = {}
    silent_keys: set = set()

    start_keys = []
    for cfg in starts:
        key = _canon(net, names, cfg)
        start_keys.append(key)

    frontier = [k for k in start_keys if k not in succs]
    while frontier:
        key = frontier.pop()
        if key in succs:
            continue
        if len(succs) >= max_states:
            result.truncated = True
            break
        config = _thaw(net, names, key)
        proto = protocol_factory() if protocol_factory is not None \
            else protocol
        deltas = _enabled_deltas(net, proto, config)
        nexts = []
        if not deltas:
            silent_keys.add(key)
            if is_legal is not None and not is_legal(config):
                result.illegal_silent.append(config)
            if accepts is not None and is_legal is not None:
                if bool(accepts(config)) != bool(is_legal(config)):
                    result.fake_certified.append(config)
        else:
            seen_next = set()
            for subset in _subsets(deltas):
                nxt = {v: dict(state) for v, state in config.items()}
                for v, delta in subset:
                    nxt[v].update(delta)
                nkey = _canon(net, names, nxt)
                if nkey not in seen_next:
                    seen_next.add(nkey)
                    nexts.append(nkey)
            result.transitions += len(nexts)
        succs[key] = nexts
        for nkey in nexts:
            if nkey not in succs:
                frontier.append(nkey)

    result.states = len(succs)
    result.silent_states = len(silent_keys)

    # cycle search (iterative DFS, white/grey/black) over the explored
    # subgraph; unexplored frontier nodes (truncation) are treated as
    # leaves — with truncated=False the graph is complete.
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[object, int] = {}
    for root in succs:
        if color.get(root, WHITE) != WHITE:
            continue
        stack = [(root, iter(succs.get(root, ())))]
        color[root] = GREY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                c = color.get(nxt, WHITE)
                if c == GREY:
                    # back edge: extract the cycle from the grey path
                    i = path.index(nxt)
                    result.cycle = [_thaw(net, names, k) for k in path[i:]]
                    return result
                if c == WHITE and nxt in succs:
                    color[nxt] = GREY
                    stack.append((nxt, iter(succs.get(nxt, ()))))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return result


def check_certifier(certifier: LocalCertifier, n: int = 4, *,
                    seed: int = 1, corruption_draws: int = 2,
                    max_corruptions: int | None = None,
                    max_states: int = 50_000,
                    shared_oracle: bool = False) -> ModelCheckResult:
    """Model-check one task: closure at the certified legitimate
    configuration plus convergence from every sampled single-register
    corruption of it, under all daemon choices.

    Defaults to fresh-instance (Markov) semantics — the exact protocol
    state machine.  ``shared_oracle=True`` switches to the
    shared-instance over-approximation (see the module docstring): a
    stronger bug-finder whose violations must be confirmed against real
    semantics before being read as protocol bugs, since cross-branch
    memo pollution (including decision retirements from other branches)
    realizes oracle histories no single execution can.
    """
    net = certifier.build_network(n, seed=seed)
    proto = certifier.protocol()
    names = set(proto.register_spec(net).names)
    legit = certifier.legitimate(net)
    # strip assigner-only certificate fields: the dynamics run on the
    # protocol's registers; the static corruption suite covers the rest
    runtime = {v: {f: s for f, s in state.items() if f in names}
               for v, state in legit.items()}

    starts = [runtime]
    rng = random.Random(seed + 1)
    spec = proto.register_spec(net)
    count = 0
    for v, fld, value in single_register_corruptions(
            net, certifier, runtime, rng, draws=corruption_draws):
        if fld not in spec.names:
            continue
        if max_corruptions is not None and count >= max_corruptions:
            break
        count += 1
        cfg = {u: dict(s) for u, s in runtime.items()}
        cfg[v][fld] = value
        starts.append(cfg)

    def is_legal(config):
        return certifier.is_legal(net, config)

    def accepts(config):
        try:
            decorated = certifier.certify(net, config)
        except (ValueError, KeyError, TypeError):
            return False
        return certifier.verify(net, decorated).accepted

    return explore(net, proto, starts, max_states=max_states,
                   is_legal=is_legal, accepts=accepts,
                   protocol_factory=None if shared_oracle
                   else certifier.protocol)

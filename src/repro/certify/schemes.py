"""Per-task local certifiers: assigners + verifiers over register contents.

A :class:`LocalCertifier` makes a task's legitimacy *locally checkable*
in exactly the paper's sense (Section II-C): a **certificate assigner**
decorates a legitimate configuration with whatever certificate fields the
task needs (the prover), and a pure **local verifier**

    ``verify_node(net, node, state, nbr_states) -> bool``

reads only the node's own register contents, its graph neighbors'
register contents, and the incorruptible constants.  Locality is
mechanical, not a promise: ``nbr_states`` contains the 1-hop neighborhood
and nothing else, so a verifier cannot cheat.

Soundness/completeness contract per task (checked by the tests and the
``python -m repro certify`` CLI):

* the assigner's decoration of a legitimate configuration makes every
  node accept;
* a configuration every node accepts is legitimate — silent *and* legal
  for the task (the verifier embeds the silence conditions of every
  protocol layer, so acceptance certifies the fixpoint, not just the
  tree shape);
* every single-register corruption of a certified legitimate
  configuration is rejected by at least one node — or lands on another
  certified-legal configuration (e.g. re-parenting an SST node onto an
  equally close alternative parent), which the corruption tests verify
  explicitly.

The five tasks map to the registry keys ``sst``, ``guided-bfs``,
``nca-build``, ``guided-mst`` and ``guided-mdst``.  SST/BFS/NCA need no
extra certificate fields — their runtime registers already carry the
distance/size/NCA certificates.  MST adds the Boruvka trace of Section VI
(O(log^2 n) bits, :mod:`repro.labeling.mst_pls`); MDST adds the FR
certificate of Lemma 8.1 (O(log n) bits, :mod:`repro.labeling.fr_pls`).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro._bits import (
    bits_for_counter,
    bits_for_id,
    bits_for_option,
    bits_for_weight,
)
from repro.certify.oracle import config_digest, node_digest
from repro.core import bfs_tree, tree_from_edges
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.core.tasks import (
    ORACLE_DIGEST_FIELDS,
    WORK,
    guided_bfs_protocol,
    guided_mdst_protocol,
    guided_mst_protocol,
)
from repro.graphs.network import Network
from repro.labeling.fr_pls import FRCertificate, FRTreePLS
from repro.labeling.mst_pls import BoruvkaLevel, MSTCertificate, MSTPLS, boruvka_trace
from repro.labeling.nca import NCALabeling
from repro.runtime.protocol import Protocol
from repro.runtime.registers import NONE, Field, RegisterSpec, custom_field

__all__ = [
    "LocalCertifier",
    "VerificationOutcome",
    "CERTIFIERS",
    "get_certifier",
    "single_register_corruptions",
]

Config = dict[int, dict[str, object]]
NbrStates = Sequence[tuple[int, dict[str, object]]]


@dataclass(frozen=True)
class VerificationOutcome:
    """Result of running the local verifier at every node."""

    accepted: bool
    rejecting: tuple[int, ...]

    def __bool__(self) -> bool:
        return self.accepted


# ----------------------------------------------------------------------
# shared local predicates (each reads state + nbr_states only)
# ----------------------------------------------------------------------


def _tree_full_ok(net: Network, node: int, state, nbrs: NbrStates) -> bool:
    """Full (unpruned) malleable labels on a min-rooted spanning tree,
    locally: the distance *and* size schemes of Section IV, plus quiet
    switch machinery.  Acceptance at every node certifies tree-ness,
    exact depths/sizes, and the min-identity root."""
    rid, par = state["rid"], state["par"]
    d, s = state["d"], state["s"]
    if state["mark"] or state["swt"] is not NONE:
        return False
    if not isinstance(d, int) or not 0 <= d < net.n_bound:
        return False
    if not isinstance(s, int) or not 1 <= s <= net.n_bound:
        return False
    if not isinstance(rid, int) or rid > node:
        return False  # the certified root identity is the global minimum
    total = 1
    for _, st in nbrs:
        if st["rid"] != rid:
            return False
        if st["par"] == node:
            cs = st["s"]
            if not isinstance(cs, int):
                return False
            total += cs
    if s != total:
        return False
    if par is NONE:
        return rid == node and d == 0
    if rid == node:
        return False  # the identity owner must be the root
    for u, st in nbrs:
        if u == par:
            return isinstance(st["d"], int) and d == st["d"] + 1
    return False  # parent is not a neighbor


def _phase_silent_ok(node: int, state, nbrs: NbrStates) -> bool:
    """The phase layer's silent fixpoint: everyone acked in WORK with no
    candidate, broadcasts agreeing along tree edges."""
    if state["ph"] != WORK or not state["ack"] or state["cand"] is not NONE:
        return False
    par = state["par"]
    if par is NONE:
        return True
    for u, st in nbrs:
        if u == par:
            return state["bc"] == st["bc"]
    return False


def _bfs_optimal_ok(state, nbrs: NbrStates) -> bool:
    """No neighbor offers a strictly shorter path (Section III)."""
    d = state["d"]
    for _, st in nbrs:
        dv = st["d"]
        if isinstance(dv, int) and dv + 1 < d:
            return False
    return True


def _nca_ok(node: int, state, nbrs: NbrStates) -> bool:
    """Heavy-child pointer + NCA label derivation (Lemma 5.1), locally."""
    sizes = [(st["s"], u) for u, st in nbrs if st["par"] == node]
    if any(not isinstance(s_, int) for s_, _ in sizes):
        return False
    hv = min(sizes, key=lambda sc: (-sc[0], sc[1]))[1] if sizes else NONE
    if state["hv"] != hv:
        return False
    lam = state["lam"]
    if not isinstance(lam, tuple) or not lam:
        return False
    par = state["par"]
    if par is NONE:
        return lam == ((node, 0),)
    pst = None
    for u, st in nbrs:
        if u == par:
            pst = st
            break
    if pst is None:
        return False
    plam = pst.get("lam")
    if not isinstance(plam, tuple) or not plam:
        return False
    try:
        if pst.get("hv") == node:
            apex, depth = plam[-1]
            want = plam[:-1] + ((apex, depth + 1),)
        else:
            want = plam + ((node, 0),)
    except (TypeError, ValueError):
        return False
    return lam == want


def _ver_ok(node: int, state, nbrs: NbrStates,
            fields: tuple[str, ...]) -> bool:
    """The subtree digest of the certificate-backed oracle layer."""
    content = tuple(repr(state.get(f)) for f in fields)
    kids = tuple(sorted((u, st.get("ver")) for u, st in nbrs
                        if st.get("par") == node))
    return state.get("ver") == node_digest(node, content, kids)


# ----------------------------------------------------------------------
# the certifier interface
# ----------------------------------------------------------------------


class LocalCertifier(ABC):
    """One task's assigner + local verifier (see module docstring)."""

    #: registry key of the protocol this certifier covers
    task: str = ""
    #: the paper's per-register space bound for the certified task
    space_bound: str = "O(log n)"

    @abstractmethod
    def protocol(self) -> Protocol:
        """A fresh instance of the verifier-equipped protocol."""

    def cert_fields(self, net: Network) -> list[Field]:
        """Extra certificate fields beyond the runtime registers."""
        return []

    def register_spec(self, net: Network) -> RegisterSpec:
        """Runtime registers + certificate fields (the certified layout)."""
        spec = self.protocol().register_spec(net)
        extra = self.cert_fields(net)
        return spec.merged(RegisterSpec(extra)) if extra else spec

    @abstractmethod
    def build_network(self, n: int, seed: int = 1) -> Network:
        """A task-appropriate instance for tables and smoke checks."""

    @abstractmethod
    def legitimate(self, net: Network) -> Config:
        """A canonical certified legitimate configuration (prover side)."""

    def certify(self, net: Network, config: Config) -> Config:
        """Decorate a claimed-legitimate configuration with certificates.

        Identity for the register-complete tasks; MST/MDST compute their
        proof labels from the configuration's tree.  Raises ValueError
        when the configuration cannot be decorated (e.g. not a tree).
        """
        return {v: dict(state) for v, state in config.items()}

    @abstractmethod
    def verify_node(self, net: Network, node: int, state,
                    nbr_states: NbrStates) -> bool:
        """The pure local verifier (1-hop reads only)."""

    def verify(self, net: Network, config: Config) -> VerificationOutcome:
        """Run the local verifier at every node of a configuration."""
        rejecting = []
        for v in net.nodes:
            nbrs = [(u, config[u]) for u in net.neighbors(v)]
            try:
                ok = self.verify_node(net, v, config[v], nbrs)
            except (KeyError, TypeError, ValueError, IndexError):
                ok = False  # junk register contents can only reject
            if not ok:
                rejecting.append(v)
        return VerificationOutcome(accepted=not rejecting,
                                   rejecting=tuple(rejecting))

    def is_legal(self, net: Network, config: Config) -> bool:
        """The task's global legality predicate (ground truth for tests)."""
        proto = self.protocol()
        try:
            return bool(proto.is_legal(net, config))
        except (NotImplementedError, ValueError):
            return False

    # -- shared construction helpers -----------------------------------

    @staticmethod
    def _seeded_tree_config(net: Network, proto: Protocol, tree) -> Config:
        base = MalleableTreeProtocol().legal_configuration(net, tree)
        cfg = proto.initial_configuration(net)
        for v in net.nodes:
            cfg[v].update(base[v])
        return cfg

    @staticmethod
    def _settle_phase(cfg: Config) -> None:
        for state in cfg.values():
            state["ph"] = WORK
            state["ack"] = True
            state["cand"] = NONE
            state["bc"] = NONE

    @staticmethod
    def _settle_nca(net: Network, cfg: Config, tree) -> None:
        scheme = NCALabeling(net, tree)
        for v in net.nodes:
            heavy = scheme.heavy[v]
            cfg[v]["hv"] = NONE if heavy is None else heavy
            cfg[v]["lam"] = tuple(scheme.labels[v].segments)

    @staticmethod
    def _settle_ver(net: Network, cfg: Config) -> None:
        for v, ver in config_digest(net, cfg, ORACLE_DIGEST_FIELDS).items():
            cfg[v]["ver"] = ver


# ----------------------------------------------------------------------
# SST — the ad hoc spanning-tree / leader-election baseline
# ----------------------------------------------------------------------


class SSTCertifier(LocalCertifier):
    """Distance-based certification of the min-id BFS tree.

    The registers (rid, par, d) *are* the classic (ID, d) proof labels:
    rid agreement + owner check certify a unique existing root, bounded
    decreasing distances certify tree-ness, ``rid <= id`` at every node
    certifies minimality, and the BFS slack check certifies exact
    distances — so zero extra certificate bits are needed.
    """

    task = "sst"
    space_bound = "O(log n)"

    def protocol(self) -> Protocol:
        from repro.core.sst import SpanningTreeProtocol
        return SpanningTreeProtocol()

    def build_network(self, n: int, seed: int = 1) -> Network:
        from repro.graphs import random_connected_graph
        return random_connected_graph(n, seed=seed)

    def legitimate(self, net: Network) -> Config:
        root = net.min_id
        tree = bfs_tree(net, root=root)
        return {
            v: {"rid": root,
                "par": NONE if tree.parent(v) is None else tree.parent(v),
                "d": tree.depth(v)}
            for v in net.nodes
        }

    def verify_node(self, net: Network, node: int, state,
                    nbr_states: NbrStates) -> bool:
        rid, par, d = state["rid"], state["par"], state["d"]
        if not isinstance(d, int) or not 0 <= d < net.n_bound:
            return False
        if not isinstance(rid, int) or rid > node:
            return False
        for _, st in nbr_states:
            if st["rid"] != rid:
                return False
        if not _bfs_optimal_ok(state, nbr_states):
            return False
        if par is NONE:
            return rid == node and d == 0
        if rid == node:
            return False
        for u, st in nbr_states:
            if u == par:
                return isinstance(st["d"], int) and d == st["d"] + 1
        return False


# ----------------------------------------------------------------------
# guided BFS — Theorem 3.1
# ----------------------------------------------------------------------


class GuidedBFSCertifier(LocalCertifier):
    """Tree layer (redundant (d, s) labels, full), BFS optimality, and
    the phase layer's silent fixpoint, all from the runtime registers."""

    task = "guided-bfs"
    space_bound = "O(log n)"

    def protocol(self) -> Protocol:
        return guided_bfs_protocol()

    def build_network(self, n: int, seed: int = 1) -> Network:
        from repro.graphs import random_connected_graph
        return random_connected_graph(n, seed=seed)

    def legitimate(self, net: Network) -> Config:
        proto = self.protocol()
        tree = bfs_tree(net, root=net.min_id)
        cfg = self._seeded_tree_config(net, proto, tree)
        self._settle_phase(cfg)
        return cfg

    def verify_node(self, net: Network, node: int, state,
                    nbr_states: NbrStates) -> bool:
        return (_tree_full_ok(net, node, state, nbr_states)
                and _bfs_optimal_ok(state, nbr_states)
                and _phase_silent_ok(node, state, nbr_states))


# ----------------------------------------------------------------------
# NCA labels — Lemma 5.1
# ----------------------------------------------------------------------


class NCACertifier(LocalCertifier):
    """The tree certificate plus heavy-child/NCA-label derivation: the
    Lemma 5.1 scheme read directly off the (hv, lam) registers."""

    task = "nca-build"
    space_bound = "O(log n)"

    def protocol(self) -> Protocol:
        from repro.core.tasks import NCALabelLayer
        from repro.runtime.protocol import ComposedProtocol
        return ComposedProtocol([MalleableTreeProtocol(), NCALabelLayer()],
                                name="tree+nca")

    def build_network(self, n: int, seed: int = 1) -> Network:
        from repro.graphs import random_tree_graph
        return random_tree_graph(n, seed=seed)

    def legitimate(self, net: Network) -> Config:
        proto = self.protocol()
        tree = bfs_tree(net, root=net.min_id)
        cfg = self._seeded_tree_config(net, proto, tree)
        self._settle_nca(net, cfg, tree)
        return cfg

    def verify_node(self, net: Network, node: int, state,
                    nbr_states: NbrStates) -> bool:
        return (_tree_full_ok(net, node, state, nbr_states)
                and _nca_ok(node, state, nbr_states))


# ----------------------------------------------------------------------
# MST — Corollary 6.1, the O(log^2 n)-bit Boruvka trace
# ----------------------------------------------------------------------


def _bt_field(name: str = "bt") -> Field:
    """The register-carried Boruvka trace: a tuple of
    ``(fragment, dist, out_edge)`` levels, ``out_edge`` a ``(a, b, w)``
    triple or NONE at the top level."""

    def bits(net: Network, value) -> int:
        id_bits = bits_for_id(net.id_space)
        per_level = (id_bits + bits_for_counter(net.n_bound)
                     + bits_for_option(2 * id_bits
                                       + bits_for_weight(net.weight_space())))
        try:
            k = len(value)
        except TypeError:
            k = 0
        # level count header + the levels themselves
        return bits_for_counter(net.n_bound.bit_length() + 1) + k * per_level

    def corrupt(net: Network, node: int, rng: random.Random):
        k = rng.randint(1, max(1, net.n_bound.bit_length()) + 1)
        levels = []
        for i in range(k):
            frag = rng.randint(1, net.id_space)
            dist = rng.randint(0, net.n_bound)
            if i == k - 1 or rng.random() < 0.2:
                edge = NONE
            else:
                edge = (rng.randint(1, net.id_space),
                        rng.randint(1, net.id_space),
                        rng.randint(1, max(1, net.weight_space())))
            levels.append((frag, dist, edge))
        return tuple(levels)

    return custom_field(name, lambda net, node: NONE, bits, corrupt)


class GuidedMSTCertifier(LocalCertifier):
    """The full guided-MST fixpoint plus the Section VI trace certificate.

    The assigner simulates Boruvka on the configuration's tree and stores
    each node's ``(F_i, dist_i, f_i)`` trace in the ``bt`` register; the
    verifier delegates the per-node check to
    :meth:`repro.labeling.mst_pls.MSTPLS.verify_at` over a mapping that
    physically contains only the 1-hop neighborhood, with graph
    minimality on — acceptance everywhere certifies that the tree is
    *the* MST, which is exactly the detector's silence condition.
    """

    task = "guided-mst"
    space_bound = "O(log^2 n)"

    _pls = MSTPLS()

    def protocol(self) -> Protocol:
        return guided_mst_protocol()

    def cert_fields(self, net: Network) -> list[Field]:
        return [_bt_field()]

    def build_network(self, n: int, seed: int = 1) -> Network:
        from repro.graphs import random_connected_graph
        return random_connected_graph(n, seed=seed, weighted=True)

    def legitimate(self, net: Network) -> Config:
        from repro.baselines.sequential_mst import kruskal_mst
        proto = self.protocol()
        tree = tree_from_edges(net, kruskal_mst(net), root=net.min_id)
        cfg = self._seeded_tree_config(net, proto, tree)
        self._settle_phase(cfg)
        self._settle_nca(net, cfg, tree)
        self._settle_ver(net, cfg)
        return self.certify(net, cfg)

    def certify(self, net: Network, config: Config) -> Config:
        cfg = {v: dict(state) for v, state in config.items()}
        tree = tree_of_config(net, cfg)  # raises ValueError on non-trees
        trace = boruvka_trace(net, tree)
        for v in net.nodes:
            cfg[v]["bt"] = tuple(
                (lv.fragment, lv.dist,
                 NONE if lv.out_edge is None else lv.out_edge)
                for lv in trace[v])
        return cfg

    @staticmethod
    def _as_mst_cert(state) -> MSTCertificate:
        levels = tuple(
            BoruvkaLevel(frag, dist, None if edge is NONE else tuple(edge))
            for frag, dist, edge in state["bt"])
        par = state["par"]
        return MSTCertificate(rid=state["rid"],
                              par=None if par is NONE else par,
                              d=state["d"], levels=levels)

    def verify_node(self, net: Network, node: int, state,
                    nbr_states: NbrStates) -> bool:
        if not (_tree_full_ok(net, node, state, nbr_states)
                and _phase_silent_ok(node, state, nbr_states)
                and _nca_ok(node, state, nbr_states)
                and _ver_ok(node, state, nbr_states, ORACLE_DIGEST_FIELDS)):
            return False
        labels = {node: self._as_mst_cert(state)}
        for u, st in nbr_states:
            labels[u] = self._as_mst_cert(st)
        return self._pls.verify_at(net, node, labels)


# ----------------------------------------------------------------------
# MDST — Corollary 8.1, the O(log n)-bit FR certificate
# ----------------------------------------------------------------------


def _fr_fields() -> list[Field]:
    """Registers of the Lemma 8.1 certificate: claimed degree ``frk`` with
    witness distance ``frkd``, the good/bad mark, and the good-fragment
    identity/owner-distance pair."""

    def opt_corrupt(hi):
        def fn(net, node, rng):
            if rng.random() < 0.25:
                return NONE
            return rng.randint(0, hi(net))
        return fn

    return [
        custom_field("frk", lambda net, node: 0,
                     lambda net, v: bits_for_counter(net.n_bound),
                     lambda net, node, rng: rng.randint(0, net.n_bound)),
        custom_field("frkd", lambda net, node: 0,
                     lambda net, v: bits_for_counter(net.n_bound),
                     lambda net, node, rng: rng.randint(0, net.n_bound)),
        custom_field("frgood", lambda net, node: False,
                     lambda net, v: 1,
                     lambda net, node, rng: rng.random() < 0.5),
        custom_field("frfrag", lambda net, node: NONE,
                     lambda net, v: bits_for_option(bits_for_id(net.id_space)),
                     lambda net, node, rng: (NONE if rng.random() < 0.25
                                             else rng.randint(1, net.id_space))),
        custom_field("frfd", lambda net, node: NONE,
                     lambda net, v: bits_for_option(bits_for_counter(net.n_bound)),
                     opt_corrupt(lambda net: net.n_bound)),
    ]


class GuidedMDSTCertifier(LocalCertifier):
    """The full guided-MDST fixpoint plus the Lemma 8.1 FR certificate.

    The assigner runs the marking cascade on the configuration's tree
    (which must be an FR-tree) and stores each node's
    ``(k, dk_dist, good, frag, fdist)`` certificate; the verifier
    delegates to :meth:`repro.labeling.fr_pls.FRTreePLS.verify_at` over
    the 1-hop mapping.  Acceptance everywhere certifies Definition 8.1 —
    hence ``deg(T) <= OPT + 1`` by [33, Thm 2.2] — which is the
    detector's silence condition.
    """

    task = "guided-mdst"
    space_bound = "O(log n)"

    _pls = FRTreePLS()

    def protocol(self) -> Protocol:
        return guided_mdst_protocol()

    def cert_fields(self, net: Network) -> list[Field]:
        return _fr_fields()

    def build_network(self, n: int, seed: int = 1) -> Network:
        from repro.graphs import random_connected_graph
        return random_connected_graph(n, extra_edges=2 * n, seed=seed)

    def legitimate(self, net: Network) -> Config:
        from repro.core.fr import fuerer_raghavachari
        run = fuerer_raghavachari(net)
        tree = (run.tree if run.tree.root == net.min_id
                else run.tree.rerooted(net.min_id))
        proto = self.protocol()
        cfg = self._seeded_tree_config(net, proto, tree)
        self._settle_phase(cfg)
        self._settle_nca(net, cfg, tree)
        self._settle_ver(net, cfg)
        return self.certify(net, cfg)

    def certify(self, net: Network, config: Config) -> Config:
        from repro.core.fr import fr_marking
        cfg = {v: dict(state) for v, state in config.items()}
        tree = tree_of_config(net, cfg)  # raises ValueError on non-trees
        marking = fr_marking(net, tree)
        if not marking.is_fr:
            raise ValueError("configuration's tree is not an FR-tree")
        labels = self._pls.prove(net, tree, marking)
        for v in net.nodes:
            lab = labels[v]
            cfg[v].update(
                frk=lab.k, frkd=lab.dk_dist, frgood=lab.good,
                frfrag=NONE if lab.frag is None else lab.frag,
                frfd=NONE if lab.fdist is None else lab.fdist)
        return cfg

    @staticmethod
    def _as_fr_cert(state) -> FRCertificate:
        par = state["par"]
        frag, fdist = state["frfrag"], state["frfd"]
        return FRCertificate(
            rid=state["rid"], par=None if par is NONE else par,
            d=state["d"], k=state["frk"], dk_dist=state["frkd"],
            good=bool(state["frgood"]),
            frag=None if frag is NONE else frag,
            fdist=None if fdist is NONE else fdist)

    def verify_node(self, net: Network, node: int, state,
                    nbr_states: NbrStates) -> bool:
        if not (_tree_full_ok(net, node, state, nbr_states)
                and _phase_silent_ok(node, state, nbr_states)
                and _nca_ok(node, state, nbr_states)
                and _ver_ok(node, state, nbr_states, ORACLE_DIGEST_FIELDS)):
            return False
        labels = {node: self._as_fr_cert(state)}
        for u, st in nbr_states:
            labels[u] = self._as_fr_cert(st)
        return self._pls.verify_at(net, node, labels)


# ----------------------------------------------------------------------
# registry + adversarial corruption enumeration
# ----------------------------------------------------------------------


CERTIFIERS: dict[str, LocalCertifier] = {
    c.task: c
    for c in (SSTCertifier(), GuidedBFSCertifier(), NCACertifier(),
              GuidedMSTCertifier(), GuidedMDSTCertifier())
}


def get_certifier(task: str) -> LocalCertifier:
    if task not in CERTIFIERS:
        raise KeyError(f"no certifier for task {task!r} "
                       f"(known: {', '.join(sorted(CERTIFIERS))})")
    return CERTIFIERS[task]


def single_register_corruptions(
        net: Network, certifier: LocalCertifier, config: Config,
        rng: random.Random, draws: int = 6,
) -> Iterator[tuple[int, str, object]]:
    """Enumerate single-register corruptions of a certified configuration.

    For every node and every field, yields ``draws`` distinct arbitrary
    domain values drawn from the field's corruption sampler (the fault
    model of Section II-A), skipping values equal to the current
    register content.  Each yielded triple describes one corrupted
    configuration differing from ``config`` in exactly one field of one
    node's register.
    """
    spec = certifier.register_spec(net)
    for v in sorted(config):
        for field in spec.names:
            seen: set[str] = set()
            current = repr(config[v].get(field))
            for _ in range(draws):
                value = spec.field(field).corrupt(net, v, rng)
                key = repr(value)
                if key == current or key in seen:
                    continue
                seen.add(key)
                yield v, field, value

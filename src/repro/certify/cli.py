"""``python -m repro certify`` — the local-certification command line.

::

    python -m repro certify check            # accept legit + reject corruptions
    python -m repro certify check --smoke    # CI-sized instances
    python -m repro certify space            # bits-per-node vs the paper bounds
    python -m repro certify space --format markdown
    python -m repro certify modelcheck --n 4 # exhaustive daemon-choice check
    python -m repro certify modelcheck --task sst --n 5

``check`` verifies, for every certified task, that (1) the certificate
assigner's decoration of the legitimate configuration is accepted by
every node's local verifier using neighborhood-only reads, and (2) every
sampled single-register corruption of it is rejected by at least one
node — or lands on another configuration that is itself certified *and*
legal (e.g. an equally-deep alternative BFS parent).  Any corruption
that is accepted while illegal is a certificate fake and fails the run.

``modelcheck`` explores the full daemon nondeterminism at small n (every
non-empty subset of enabled nodes) from the legitimate configuration and
its corruptions, proving closure + convergence within the explored
region; a truncated exploration that found no violation is reported as
``bounded`` and only fails with ``--strict``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table
from repro.certify.schemes import CERTIFIERS, single_register_corruptions

__all__ = ["register_certify", "main"]


def _tasks(args: argparse.Namespace) -> list[str]:
    if args.task:
        unknown = [t for t in args.task if t not in CERTIFIERS]
        if unknown:
            raise SystemExit(
                f"error: unknown tasks {unknown} "
                f"(known: {', '.join(sorted(CERTIFIERS))})")
        return list(args.task)
    return list(CERTIFIERS)


def _cmd_check(args: argparse.Namespace) -> int:
    import random
    n = args.n or (8 if args.smoke else 12)
    draws = args.draws or (2 if args.smoke else 4)
    rows = []
    failures = 0
    for task in _tasks(args):
        cert = CERTIFIERS[task]
        net = cert.build_network(n, seed=args.seed)
        legit = cert.legitimate(net)
        accepted = cert.verify(net, legit).accepted
        rejected = escaped = fakes = 0
        rng = random.Random(args.seed + 1)
        for v, field, value in single_register_corruptions(
                net, cert, legit, rng, draws=draws):
            cfg = {u: dict(s) for u, s in legit.items()}
            cfg[v][field] = value
            out = cert.verify(net, cfg)
            if not out.accepted:
                rejected += 1
            elif cert.is_legal(net, cfg):
                escaped += 1
            else:
                fakes += 1
        ok = accepted and fakes == 0
        if not ok:
            failures += 1
        rows.append((task, net.n, "yes" if accepted else "NO",
                     rejected, escaped, fakes, "ok" if ok else "FAILED"))
    print(format_table(
        "local certification: legitimate accepted, corruptions rejected "
        "(neighborhood-only verifiers)",
        ["task", "n", "legit accepted", "rejected", "legal escapes",
         "FAKES", "verdict"],
        rows))
    if failures:
        print(f"certify check FAILED for {failures} task(s)", file=sys.stderr)
        return 1
    print("certify check ok: all local verifiers sound on these instances")
    return 0


def _cmd_space(args: argparse.Namespace) -> int:
    from repro.certify.space import render_space_table, space_rows
    sizes = tuple(int(s) for s in args.sizes.split(","))
    rows = space_rows(sizes=sizes, tasks=_tasks(args), seed=args.seed)
    print(render_space_table(rows, markdown=args.format == "markdown"))
    return 0


def _cmd_modelcheck(args: argparse.Namespace) -> int:
    from repro.certify.modelcheck import check_certifier
    n = args.n or 4
    failures = truncated = 0
    for task in _tasks(args):
        res = check_certifier(
            CERTIFIERS[task], n=n, seed=args.seed,
            corruption_draws=args.draws or 1,
            max_corruptions=args.max_corruptions,
            max_states=args.max_states,
            shared_oracle=args.shared_oracle)
        if res.truncated and res.ok_except_truncation:
            truncated += 1
        elif not res.ok:
            failures += 1
        print(f"{task:14s} {res.summary()}", flush=True)
    if failures:
        print(f"modelcheck FAILED for {failures} task(s)", file=sys.stderr)
        return 1
    if truncated and args.strict:
        print(f"modelcheck: {truncated} task(s) truncated with --strict",
              file=sys.stderr)
        return 1
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--task", action="append", metavar="NAME",
                        help=f"restrict to one task (repeatable; known: "
                             f"{', '.join(sorted(CERTIFIERS))})")
    parser.add_argument("--seed", type=int, default=1,
                        help="instance/corruption seed (default 1)")


def register_certify(subparsers) -> None:
    """Attach the ``certify`` subcommand to the ``python -m repro`` parser."""
    p = subparsers.add_parser(
        "certify",
        help="local certification: verifiers, space table, model checker")
    sub = p.add_subparsers(dest="certify_command", required=True)

    p_check = sub.add_parser(
        "check", help="accept legitimate configs, reject corruptions")
    _add_common(p_check)
    p_check.add_argument("--n", type=int, default=None,
                         help="instance size (default 12; 8 with --smoke)")
    p_check.add_argument("--draws", type=int, default=None,
                         help="corruption draws per field (default 4; "
                              "2 with --smoke)")
    p_check.add_argument("--smoke", action="store_true",
                         help="CI-sized instances")
    p_check.set_defaults(fn=_cmd_check)

    p_space = sub.add_parser(
        "space", help="bits-per-node accounting vs the paper bounds")
    _add_common(p_space)
    p_space.add_argument("--sizes", default="16,64,256",
                         help="comma-separated n sweep (default 16,64,256)")
    p_space.add_argument("--format", choices=("ascii", "markdown"),
                         default="ascii")
    p_space.set_defaults(fn=_cmd_space)

    p_mc = sub.add_parser(
        "modelcheck",
        help="exhaustive small-n daemon-choice closure/convergence check")
    _add_common(p_mc)
    p_mc.add_argument("--n", type=int, default=None,
                      help="instance size (default 4; keep <= 6)")
    p_mc.add_argument("--draws", type=int, default=None,
                      help="corruption draws per field (default 1)")
    p_mc.add_argument("--max-corruptions", type=int, default=None,
                      help="cap the number of corrupted starting configs")
    p_mc.add_argument("--max-states", type=int, default=200_000,
                      help="state budget per task (default 200000)")
    p_mc.add_argument("--strict", action="store_true",
                      help="fail on truncated (bounded) explorations too")
    p_mc.add_argument("--shared-oracle", action="store_true",
                      help="share one protocol instance across branches "
                           "(oracle-adversary over-approximation; "
                           "violations need confirmation against real "
                           "semantics)")
    p_mc.set_defaults(fn=_cmd_modelcheck)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro certify",
        description="local certification subsystem")
    sub = parser.add_subparsers(dest="command", required=True)
    register_certify(sub)
    args = parser.parse_args(["certify"] + (argv if argv is not None
                                            else sys.argv[1:]))
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

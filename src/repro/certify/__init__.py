"""Local certification: proof-labeling verifiers over register contents.

The paper's silence and space claims rest on *locally checkable*
certificates (Section II-C): every node verifies a predicate over its own
register and its neighbors' registers, and a configuration is legitimate
iff every node accepts.  This package makes that operational for the
whole repository:

* :mod:`repro.certify.schemes` — per-task certifiers (SST, BFS, NCA,
  MST, MDST): a certificate *assigner* that decorates a legitimate
  configuration, and a pure ``verify(net, node, state, nbr_states)``
  predicate reading register contents only (locality is mechanically
  enforced — reading a non-neighbor raises);
* :mod:`repro.certify.oracle` — the certificate-backed oracle layer: a
  register-carried subtree digest (:class:`DigestLayer`) plus a
  digest-keyed memo (:class:`CertifiedOracle`) that turn the guided
  protocols' root-side detector into a rule whose effective read-set is
  the 1-hop neighborhood, so they run with
  ``read_locality = "neighborhood"`` on the incremental engine;
* :mod:`repro.certify.space` — bits-per-node accounting of every
  certified task against the paper's O(log n) / O(log^2 n) bounds;
* :mod:`repro.certify.modelcheck` — an exhaustive small-n model checker
  (every daemon choice) proving closure + convergence and hunting for
  legitimate-looking configurations a corrupted certificate could fake;
* :mod:`repro.certify.cli` — ``python -m repro certify``
  (check / space / modelcheck).

Imports are kept lazy here: :mod:`repro.core.tasks` imports the oracle
layer from this package, while the schemes import the tasks — a package
``__init__`` that imported both eagerly would be a cycle.
"""

from __future__ import annotations

__all__ = [
    "CertifiedOracle",
    "DigestLayer",
    "CERTIFIERS",
    "get_certifier",
]


def __getattr__(name: str):
    if name in ("CertifiedOracle", "DigestLayer"):
        from repro.certify import oracle
        return getattr(oracle, name)
    if name in ("CERTIFIERS", "get_certifier"):
        from repro.certify import schemes
        return getattr(schemes, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

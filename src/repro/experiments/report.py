"""Campaign reports: the paper's tables, rendered from the store alone.

Every renderer consumes only persisted records (no re-execution, no live
objects), so ``python -m repro campaign report`` reproduces a bench table
from a result file produced yesterday, on another machine, or by any
worker count.  Output formats: fixed-width ASCII (default), markdown,
CSV — via :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

from repro.analysis import fit_log_exponent, format_csv, format_table, growth_ratios

__all__ = ["render_experiment", "render_records"]

Record = dict[str, Any]


def _metrics(r: Record) -> dict[str, Any]:
    return r.get("metrics", {})


def _spec(r: Record) -> dict[str, Any]:
    return r.get("spec", {})


def _topo_label(r: Record) -> str:
    spec = _spec(r)
    topo = spec.get("topology", "")
    params = spec.get("topo_params", {})
    shown = {k: v for k, v in params.items()
             if k not in ("seed", "weighted")}
    args = ",".join(f"{k}={v}" for k, v in sorted(shown.items()))
    return f"{topo}({args})" if args else topo


def _yesno(value: object) -> str:
    if value is None:
        return "-"
    return "yes" if value else "no"


def _rate(r: Record) -> str:
    timing = r.get("timing", {})
    # run_seconds times the simulator runs alone; older records only
    # carry wall_seconds (which includes setup and measurement)
    elapsed = timing.get("run_seconds") or timing.get("wall_seconds", 0)
    moves = _metrics(r).get("moves")
    if not elapsed or moves is None:
        return "-"
    return f"{moves / elapsed:,.0f}"


def _ratios_note(label: str, series: Sequence[float]) -> str:
    if len(series) < 2:
        return ""
    ratios = ", ".join(f"{x:.2f}" for x in growth_ratios(series))
    return f"{label}: {ratios}"


# ----------------------------------------------------------------------
# per-experiment renderers: records -> list of (title, headers, rows),
# plus footnote lines
# ----------------------------------------------------------------------

def _render_engine(records):
    rows = [
        (_topo_label(r), _metrics(r).get("n", "-"),
         _spec(r).get("scheduler", "-"), _metrics(r).get("rounds", "-"),
         _metrics(r).get("moves", "-"), _rate(r))
        for r in records
    ]
    return [("EXP-ENGINE: incremental engine throughput (sst, arbitrary init)",
             ["topology", "n", "scheduler", "rounds", "moves", "moves/sec"],
             rows)], []


def _render_sched(records):
    rows = []
    for r in records:
        m, s = _metrics(r), _spec(r)
        if "skipped" in m:
            rows.append((s.get("protocol", "-"), s.get("scheduler", "-"),
                         "excluded", m["skipped"]))
        else:
            rows.append((s.get("protocol", "-"), s.get("scheduler", "-"),
                         m.get("rounds", "-"), m.get("moves", "-")))
    return [("EXP-SCHED: stabilization under every daemon "
             "(n=12, arbitrary init)",
             ["protocol", "scheduler", "rounds", "moves"], rows)], []


def _render_sil(records):
    rows = []
    for r in sorted(records, key=lambda r: _spec(r).get("faults", 0)):
        m = _metrics(r)
        k = _spec(r).get("faults", 0)
        if not k:
            ok = bool(m.get("silent")) and bool(m.get("legal")) \
                and bool(m.get("confirmed_silent"))
            rows.append(("stabilization", "-", m.get("rounds", "-"),
                         m.get("moves", "-"), _yesno(ok)))
        else:
            ok = bool(m.get("recovered_silent")) and bool(m.get("recovered_legal"))
            rows.append((f"recovery after {k} faults", k,
                         m.get("recovery_rounds", "-"),
                         m.get("recovery_moves", "-"), _yesno(ok)))
    return [("EXP-SIL: silence and k-fault recovery (guided BFS, n=12)",
             ["phase", "faults", "rounds", "moves", "silent+legal"],
             rows)], []


def _pair_by(records, key_fn, left_protocol):
    """Split records into (left, other) maps keyed by ``key_fn``."""
    left: dict[Any, Record] = {}
    right: dict[Any, Record] = {}
    for r in records:
        side = left if _spec(r).get("protocol") == left_protocol else right
        side[key_fn(r)] = r
    return left, right


def _render_t3(records):
    key = lambda r: (_spec(r).get("topology"),
                     tuple(sorted(_spec(r).get("topo_params", {}).items())))
    guided, adhoc = _pair_by(records, key, "guided-bfs")
    rows, guided_rounds = [], []
    for k, g in guided.items():
        gm = _metrics(g)
        am = _metrics(adhoc.get(k, {}))
        rows.append((_topo_label(g), gm.get("n", "-"),
                     gm.get("phi_start", "-"), gm.get("rounds", "-"),
                     gm.get("max_register_bits", "-"),
                     am.get("rounds", "-")))
        if isinstance(gm.get("rounds"), int):
            guided_rounds.append(gm["rounds"])
    notes = [n for n in [_ratios_note(
        "guided-round growth ratios (bounded => polynomial)",
        guided_rounds)] if n]
    return [("EXP-T3: PLS-guided BFS (Thm 3.1) vs ad hoc baseline",
             ["graph", "n", "phi(start)", "guided rounds", "bits/node",
              "ad hoc rounds"], rows)], notes


def _render_t1(records):
    key = lambda r: _metrics(r).get("n")
    guided, compact = _pair_by(records, key, "guided-mst")
    rows, ns, cert_bits = [], [], []
    for n in sorted(k for k in guided if k is not None):
        gm, cm = _metrics(guided[n]), _metrics(compact.get(n, {}))
        rows.append((n, gm.get("rounds", "-"), gm.get("cert_bits", "-"),
                     _yesno(gm.get("silent")),
                     cm.get("max_register_bits", "-"),
                     f"{_yesno(cm.get('silent'))} (wave spins)"))
        if isinstance(gm.get("cert_bits"), int):
            ns.append(n)
            cert_bits.append(gm["cert_bits"])
    notes = []
    if len(ns) >= 2:
        exp = fit_log_exponent(ns, cert_bits)
        notes.append(
            f"certificate-size log-log fit exponent: {exp:.2f} "
            f"(paper: Theta(log^2 n) -> ~2; small-n fits read low because "
            f"the O(log n) tree certificate is a large additive share)")
    return [("EXP-T1: silent MST (ours) vs compact non-silent baseline",
             ["n", "rounds to silence", "cert bits/node (ours)", "silent",
              "bits/node (compact)", "silent (compact)"], rows)], notes


def _render_t2(records):
    key = lambda r: _metrics(r).get("n")
    guided, base = _pair_by(records, key, "guided-mdst")
    rows, ratios = [], []
    for n in sorted(k for k in guided if k is not None):
        gm, bm = _metrics(guided[n]), _metrics(base.get(n, {}))
        rows.append((n, gm.get("tree_degree", "-"),
                     gm.get("opt_degree", "-"), gm.get("rounds", "-"),
                     gm.get("cert_bits", "-"), _yesno(gm.get("silent")),
                     bm.get("max_register_bits", "-"),
                     f"{_yesno(bm.get('silent'))} (gossip spins)"))
        if isinstance(gm.get("cert_bits"), int) \
                and isinstance(bm.get("max_register_bits"), int):
            ratios.append(bm["max_register_bits"] / gm["cert_bits"])
    notes = []
    if ratios:
        notes.append("memory ratio baseline/ours per n: "
                     + ", ".join(f"{x:.1f}" for x in ratios))
    return [("EXP-T2: silent near-MDST (ours) vs Omega(n log n) baseline [16]",
             ["n", "deg(T)", "OPT", "rounds", "cert bits/node (ours)",
              "silent", "bits/node ([16]-style)", "silent ([16])"],
             rows)], notes


def _render_l51(records):
    size_rows, build_rows = [], []
    for r in records:
        m = _metrics(r)
        if _spec(r).get("analysis") == "nca-label-sizes":
            size_rows.append((m.get("shape", "-"), m.get("n", "-"),
                              m.get("label_bits", "-"), m.get("pls_bits", "-"),
                              f"{m['label_bits'] / math.log2(m['n']):.1f}"
                              if m.get("label_bits") else "-"))
        else:
            build_rows.append((m.get("n", "-"), m.get("rounds", "-"),
                               _yesno(m.get("labels_ok"))))
    tables = []
    if size_rows:
        tables.append(
            ("EXP-L51: NCA labels (ref [6]) + PLS certificates (Lemma 5.1)",
             ["shape", "n", "label bits (GM wire)", "PLS cert bits",
              "label bits / log2 n"], size_rows))
    if build_rows:
        tables.append(
            ("EXP-L51: distributed NCA label construction (rounds, O(n) claim)",
             ["n", "rounds", "labels ok"], build_rows))
    return tables, []


def _render_l41(records):
    rows, series = [], []
    for r in records:
        m = _metrics(r)
        rows.append((m.get("n", "-"), m.get("rounds", "-"),
                     m.get("alarms", "-"), m.get("loop_violations", "-")))
        if isinstance(m.get("rounds"), int):
            series.append(m["rounds"])
    notes = [n for n in [_ratios_note(
        "round growth ratios for doubled n (~<= 2 => O(n))", series)] if n]
    return [("EXP-L41: distributed local switch (Section IV protocol)",
             ["n", "rounds per switch", "verifier alarms",
              "loop violations"], rows)], notes


def _render_abl(records):
    tables = []
    for r in records:
        m = _metrics(r)
        rows = [
            ("malleable (d,s)", m.get("configs", "-"),
             m.get("malleable_alarms", "-"), 0),
            ("distance-only", m.get("configs", "-"),
             m.get("distance_alarms", "-"), m.get("distance_missing", "-")),
            ("size-only", m.get("configs", "-"),
             m.get("size_alarms", "-"), m.get("size_missing", "-")),
        ]
        tables.append(
            ("EXP-ABL: scheme ablation over one full T+e-f switch trace",
             ["scheme", "configs", "alarmed configs",
              "entry-missing configs"], rows))
    return tables, []


def _render_f2(records):
    rows = [
        (_metrics(r).get("n", "-"), _metrics(r).get("levels", "-"),
         _metrics(r).get("phi_start", "-"),
         _metrics(r).get("red_rule_swaps", "-"))
        for r in records
    ]
    return [("EXP-F2 / Fig. 2: Boruvka hierarchy and red-rule improvements",
             ["n", "levels k", "phi(T)", "red-rule swaps to MST"],
             rows)], []


def _render_p81(records):
    tables = []
    for r in records:
        m = _metrics(r)
        rows = [
            ("random trees with deg <= OPT+1", m.get("near_opt", "-")),
            ("... of which NOT FR-trees", m.get("near_opt_not_fr", "-")),
            ("random trees that are FR-trees", m.get("fr_total", "-")),
            ("... of which within OPT+1", m.get("fr_within_one", "-")),
        ]
        tables.append(
            (f"EXP-P81: FR-trees vs near-MDST "
             f"({m.get('graphs', '?')} graphs x "
             f"{m.get('trees_per_graph', '?')} trees)",
             ["population", "count"], rows))
    return tables, []


def _render_generic(records):
    """Fallback: label columns plus the union of scalar metric keys."""
    keys: list[str] = []
    for r in records:
        for k, v in _metrics(r).items():
            if k not in keys and isinstance(v, (int, float, bool, str)):
                keys.append(k)
    rows = []
    for r in records:
        s, m = _spec(r), _metrics(r)
        what = s.get("protocol") or f"analysis:{s.get('analysis', '?')}"
        label_cols = [what, _topo_label(r) or "-", s.get("scheduler", "-")]
        if s.get("faults"):
            label_cols[0] += f" +{s['faults']}f"
        if s.get("replicate"):
            label_cols[0] += f" #{s['replicate']}"
        rows.append(tuple(label_cols)
                    + tuple(_cell(m.get(k)) for k in keys))
    experiment = records[0].get("experiment", "?") if records else "?"
    return [(f"{experiment}: campaign results",
             ["run", "topology", "scheduler"] + keys, rows)], []


def _cell(value: object) -> object:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return _yesno(value)
    if isinstance(value, float):
        return f"{value:.2f}"
    return value


_RENDERERS = {
    "EXP-ENGINE": _render_engine,
    "EXP-SCHED": _render_sched,
    "EXP-SIL": _render_sil,
    "EXP-T3": _render_t3,
    "EXP-T1": _render_t1,
    "EXP-T2": _render_t2,
    "EXP-L51": _render_l51,
    "EXP-L41": _render_l41,
    "EXP-ABL": _render_abl,
    "EXP-F2": _render_f2,
    "EXP-P81": _render_p81,
}


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def render_experiment(experiment: str, records: Sequence[Record],
                      fmt: str = "ascii") -> str:
    """One experiment's table(s) from its records, in the given format."""
    mine = [r for r in records if r.get("experiment") == experiment]
    renderer = _RENDERERS.get(experiment, _render_generic)
    tables, notes = renderer(mine)
    chunks = []
    for title, headers, rows in tables:
        if fmt == "csv":
            chunks.append(f"# {title}\n" + format_csv(headers, rows))
        else:
            chunks.append(format_table(title, headers, rows,
                                       markdown=(fmt == "markdown")))
    chunks.extend(notes)
    return "\n\n".join(chunks)


def render_records(records: Sequence[Record], fmt: str = "ascii") -> str:
    """Every experiment present in ``records``, first-appearance order."""
    seen: dict[str, None] = {}
    for r in records:
        if r.get("experiment"):
            seen.setdefault(r["experiment"], None)
    return "\n\n".join(
        render_experiment(exp, records, fmt) for exp in seen)

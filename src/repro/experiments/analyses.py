"""Analysis workloads: campaign runs that are not simulator executions.

Several of the paper's claims are checked by *sequential* computations
(label-size sweeps, PLS ablations, Boruvka traces, FR-tree population
counts) rather than by running a protocol under a daemon.  Each workload
here is a pure function of its parameters and an injected RNG, so the
campaign executor schedules it exactly like a simulator run: same
fingerprinting, same store, same reports.

Every workload comes in two layers: ``*_detail`` returns
``(metrics, detail)`` where ``detail`` carries rich row data for the
benchmark scripts' verbose printing, and the :data:`ANALYSES` registry
wraps it to return only the JSON-plain ``metrics`` recorded in the store.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping

from repro.core import bfs_tree, random_spanning_tree
from repro.graphs import generators

__all__ = [
    "ANALYSES",
    "run_analysis",
    "nca_label_sizes_detail",
    "local_switch_detail",
    "switch_ablation_detail",
    "boruvka_fragments_detail",
    "fr_subclass_detail",
    "sharded_scale_detail",
]


# ----------------------------------------------------------------------
# EXP-L51: NCA label sizes (Lemma 5.1)
# ----------------------------------------------------------------------

_NCA_SHAPES: dict[str, Callable[[int, int], object]] = {
    "path": lambda n, s: generators.path_graph(n, seed=s),
    "star": lambda n, s: generators.star_graph(n, seed=s),
    "caterpillar": lambda n, s: generators.caterpillar_graph(
        max(2, n // 3), 2, seed=s),
    "random": lambda n, s: generators.random_tree_graph(n, seed=s),
}


def nca_label_sizes_detail(rng: random.Random,
                           params: Mapping[str, object]):
    """Label/certificate bits of the NCA scheme on one adversarial shape,
    with nca() correctness cross-checked on a sample of pairs."""
    from repro.labeling.nca import NCALabeling
    from repro.labeling.nca_pls import NCAPLS

    shape = str(params.get("shape", "random"))
    n = int(params.get("n", 16))
    seed = int(params.get("seed", 7))
    if shape not in _NCA_SHAPES:
        raise KeyError(f"unknown NCA shape {shape!r} "
                       f"(known: {', '.join(sorted(_NCA_SHAPES))})")
    net = _NCA_SHAPES[shape](n, seed)
    tree = bfs_tree(net)
    scheme = NCALabeling(net, tree)
    nodes = list(net.nodes)
    stride = max(1, len(nodes) // 8)
    checked = 0
    for i in range(0, len(nodes), stride):
        for j in range(0, len(nodes), stride):
            assert scheme.nca(nodes[i], nodes[j]) == tree.nca(nodes[i], nodes[j])
            checked += 1
    pls = NCAPLS()
    metrics = {
        "shape": shape,
        "n": net.n,
        "label_bits": scheme.max_encoded_bits(),
        "pls_bits": pls.max_label_bits(net, pls.prove(net, tree)),
        "pairs_checked": checked,
    }
    return metrics, {"net": net, "tree": tree, "scheme": scheme}


# ----------------------------------------------------------------------
# EXP-L41: the distributed local switch (Section IV)
# ----------------------------------------------------------------------

def local_switch_detail(rng: random.Random, params: Mapping[str, object]):
    """One distributed local switch on a ring: rounds, verifier alarms,
    and spanning-tree-invariant violations (all should be 0 alarms)."""
    from repro.core.swap import (MalleableTreeProtocol,
                                 malleable_labels_of_config, tree_of_config)
    from repro.labeling.malleable import MalleablePLS
    from repro.runtime import Simulator, SynchronousScheduler

    n = int(params.get("n", 8))
    seed = int(params.get("seed", 6))
    net = generators.ring(n, seed=seed, scramble_ids=False)
    proto = MalleableTreeProtocol()
    tree = bfs_tree(net)
    pick = None
    for u in net.nodes:
        if tree.parent(u) is None:
            continue
        sub = tree.subtree_nodes(u)
        for z in net.neighbors(u):
            if z != tree.parent(u) and z not in sub:
                pick = (u, z)
                break
        if pick:
            break
    assert pick is not None, "no switchable edge on this ring"
    v, w2 = pick
    pls = MalleablePLS()
    alarms = 0

    def inv(nn, cfg):
        nonlocal alarms
        try:
            tree_of_config(nn, cfg)
        except ValueError:
            return False
        if not pls.verify(nn, malleable_labels_of_config(nn, cfg)).accepted:
            alarms += 1
        return True

    sim = Simulator(net, proto, SynchronousScheduler(),
                    config=proto.legal_configuration(net, tree),
                    invariant=inv)
    sim.overwrite(v, {"swt": w2})
    result = sim.run(max_rounds=60 * n)
    assert result.silent
    metrics = {
        "n": n,
        "rounds": result.rounds,
        "alarms": alarms,
        "loop_violations": result.invariant_violations,
    }
    return metrics, {"net": net, "tree": tree, "switch": (v, w2)}


# ----------------------------------------------------------------------
# EXP-ABL: why the redundant (d, s) labeling (Section IV)
# ----------------------------------------------------------------------

def switch_ablation_detail(rng: random.Random, params: Mapping[str, object]):
    """Project one full switch trace onto the single-entry schemes; count
    the configurations each scheme fails to carry through."""
    from repro.labeling.malleable import MalleablePLS
    from repro.labeling.tree_pls import (DistanceLabel, DistancePLS,
                                         SizeLabel, SizePLS)

    n = int(params.get("n", 14))
    seed = int(params.get("seed", 13))
    net = generators.random_connected_graph(n, seed=seed)
    tree = bfs_tree(net)
    pls = MalleablePLS()
    # pick a switch that actually moves a subtree (so distances get pruned:
    # the ablation needs both pruning dimensions exercised)
    trace = None
    for e in tree.non_tree_edges():
        for f in tree.fundamental_cycle_edges(e):
            cand = pls.full_switch_trace(net, tree, e, f)
            if any(lab.d is None for cfg in cand.configs
                   for lab in cfg.values()):
                trace = cand
                break
        if trace:
            break
    assert trace is not None, "no subtree-moving switch in this instance"

    dist_pls, size_pls = DistancePLS(), SizePLS()
    alarms = {"distance-only": 0, "size-only": 0}
    unverifiable = {"distance-only": 0, "size-only": 0}
    for cfg in trace.configs:
        assert pls.verify(net, cfg).accepted
        if any(lab.d is None for lab in cfg.values()):
            unverifiable["distance-only"] += 1
        else:
            dl = {v: DistanceLabel(l.rid, l.par, l.d) for v, l in cfg.items()}
            if not dist_pls.verify(net, dl).accepted:
                alarms["distance-only"] += 1
        if any(lab.s is None for lab in cfg.values()):
            unverifiable["size-only"] += 1
        else:
            sl = {v: SizeLabel(l.rid, l.par, l.s) for v, l in cfg.items()}
            if not size_pls.verify(net, sl).accepted:
                alarms["size-only"] += 1
    metrics = {
        "configs": len(trace.configs),
        "malleable_alarms": 0,
        "distance_alarms": alarms["distance-only"],
        "distance_missing": unverifiable["distance-only"],
        "size_alarms": alarms["size-only"],
        "size_missing": unverifiable["size-only"],
    }
    return metrics, {"net": net, "tree": tree, "trace": trace}


# ----------------------------------------------------------------------
# EXP-F2: the Boruvka fragment hierarchy + red-rule improvements (Fig. 2)
# ----------------------------------------------------------------------

def boruvka_fragments_detail(rng: random.Random,
                             params: Mapping[str, object]):
    """Fragment trace of a random tree and the red-rule swap sequence that
    drives it to the MST; every swap must grow the MST overlap by one."""
    import math

    from repro.baselines import kruskal_mst
    from repro.core.mst import MSTPotential
    from repro.labeling.mst_pls import boruvka_trace, phi_values

    n = int(params.get("n", 12))
    seed = int(params.get("seed", 9))
    tree_seed = int(params.get("tree_seed", 10))
    net = generators.random_connected_graph(n, seed=seed, weighted=True)
    tree = random_spanning_tree(net, seed=tree_seed, root=net.min_id)
    trace = boruvka_trace(net, tree)
    k = len(trace[net.min_id])
    assert k <= math.ceil(math.log2(net.n)) + 1
    kk, phis = phi_values(net, tree)
    phi = kk * net.n - sum(phis.values())

    pot = MSTPotential()
    mst = kruskal_mst(net)
    cur = tree
    improvements = []
    while True:
        pair = pot.find_improvement(net, cur)
        if pair is None:
            break
        e, f = pair
        before = len(cur.edges() & mst)
        cur = cur.swap(e, f)
        after = len(cur.edges() & mst)
        improvements.append((e, f, before, after, pot.value(net, cur)))
        assert after == before + 1
    assert cur.edges() == mst
    metrics = {
        "n": net.n,
        "levels": k,
        "phi_start": phi,
        "red_rule_swaps": len(improvements),
    }
    return metrics, {"net": net, "tree": tree, "boruvka_trace": trace,
                     "improvements": improvements}


# ----------------------------------------------------------------------
# EXP-P81: FR-trees are a strict subclass of near-MDST (Proposition 8.1)
# ----------------------------------------------------------------------

def fr_subclass_detail(rng: random.Random, params: Mapping[str, object]):
    """Population counts over random trees on random graphs: near-optimal
    trees the FR verifier rejects exist, and every FR-tree is near-optimal."""
    from repro.baselines import exact_minimum_degree
    from repro.core.fr import fuerer_raghavachari, is_fr_tree

    n = int(params.get("n", 8))
    graphs = int(params.get("graphs", 25))
    trees = int(params.get("trees", 4))
    extra_edges = int(params.get("extra_edges", 6))
    near_opt = near_opt_not_fr = fr_total = fr_within_one = 0
    for seed in range(graphs):
        net = generators.random_connected_graph(
            n, extra_edges=extra_edges, seed=seed)
        opt = exact_minimum_degree(net)
        for tseed in range(trees):
            t = random_spanning_tree(net, seed=tseed)
            fr = is_fr_tree(net, t)
            if t.max_degree() <= opt + 1:
                near_opt += 1
                if not fr:
                    near_opt_not_fr += 1
            if fr:
                fr_total += 1
                if t.max_degree() <= opt + 1:
                    fr_within_one += 1
        run = fuerer_raghavachari(net)
        assert run.degree <= opt + 1
    metrics = {
        "graphs": graphs,
        "trees_per_graph": trees,
        "near_opt": near_opt,
        "near_opt_not_fr": near_opt_not_fr,
        "fr_total": fr_total,
        "fr_within_one": fr_within_one,
    }
    return metrics, {}


# ----------------------------------------------------------------------
# EXP-SCALE: sharded large-n executions (ROADMAP item 2)
# ----------------------------------------------------------------------

def sharded_scale_detail(rng: random.Random,
                         params: Mapping[str, object]):
    """One shard-parallel synchronous execution at campaign scale.

    Runs the partitioned engine (:mod:`repro.runtime.sharding`) on an
    implicit (lazy) topology — the whole-network adjacency never
    materializes in any process — and streams the run as a *unified
    convergence trace* (the schema-versioned :mod:`repro.obs` JSONL,
    one row per round with the per-shard breakdown; never a
    materialized configuration trace).  The record keeps only the
    aggregates plus per-shard peak RSS and the trace filename; the
    trace directory is ``REPRO_SCALE_TRACE_DIR`` (default
    ``campaigns/traces``).  This replaces the PR-8-era bespoke
    ``campaigns/streams`` row format — same per-round content, but now
    validated, self-describing, and renderable by ``repro obs report``.

    The injected ``rng`` is deliberately unused: sharded executions are
    a pure function of ``(topology, protocol, shards, init_seed)`` —
    the per-node initialization draws from keyed streams, nothing else
    draws at all — which is exactly the property the equivalence suite
    pins.
    """
    import os
    from pathlib import Path

    from repro.experiments.registry import build_protocol
    from repro.obs.probes import TraceRecorder
    from repro.runtime.sharding import ShardedSimulator, plan_partition
    from repro.runtime.sharding.cli import build_topology_spec

    topo_spec = str(params.get("topology", "implicit-grid:rows=100,cols=100"))
    protocol = str(params.get("protocol", "sst"))
    shards = int(params.get("shards", 4))
    method = str(params.get("method", "bfs"))
    init_seed = int(params.get("init_seed", 7))
    rounds = int(params.get("rounds", 10_000))
    require_silence = bool(int(params.get("require_silence", 1)))
    processes = bool(int(params.get("processes", 1)))

    topo = build_topology_spec(topo_spec)
    plan = plan_partition(topo, shards, method=method)
    trace_dir = Path(os.environ.get("REPRO_SCALE_TRACE_DIR",
                                    "campaigns/traces"))
    trace_name = (
        f"{protocol}-{plan.fingerprint}-k{shards}-s{init_seed}.jsonl")
    recorder = TraceRecorder(
        trace_dir / trace_name,
        header_extra={"topology": topo_spec, "init_seed": init_seed})

    sharded = ShardedSimulator(
        topo, lambda: build_protocol(protocol)[0], plan,
        init_seed=init_seed, processes=processes)
    try:
        result = sharded.run(max_rounds=rounds,
                             require_silence=require_silence,
                             recorder=recorder)
    finally:
        sharded.close()

    metrics = {
        "n": topo.n,
        "shards": shards,
        "method": method,
        "plan_fingerprint": plan.fingerprint,
        "cut_edges": plan.cut_edges,
        "max_boundary": max(plan.boundary),
        "rounds": result.rounds,
        "moves": result.moves,
        "silent": result.silent,
        "config_digest": result.fingerprint,
        # per-shard peak RSS is inherently run-volatile (like "timing");
        # everything above is deterministic and re-run-stable
        "peak_rss_kb": result.peak_rss_kb,
        # the filename only (deterministic): the directory is
        # environment plumbing, like the store path
        "trace": trace_name,
        "trace_rounds": result.rounds,
    }
    return metrics, {}


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def _metrics_only(fn):
    def wrapped(rng: random.Random, params: Mapping[str, object]):
        metrics, _ = fn(rng, params)
        return metrics
    wrapped.__name__ = fn.__name__.replace("_detail", "")
    return wrapped


#: ``fn(rng, params) -> metrics`` — the store-facing entry points.
ANALYSES: dict[str, Callable[..., dict[str, object]]] = {
    "nca-label-sizes": _metrics_only(nca_label_sizes_detail),
    "local-switch": _metrics_only(local_switch_detail),
    "switch-ablation": _metrics_only(switch_ablation_detail),
    "boruvka-fragments": _metrics_only(boruvka_fragments_detail),
    "fr-subclass": _metrics_only(fr_subclass_detail),
    "sharded-scale": _metrics_only(sharded_scale_detail),
}


def run_analysis(name: str, rng: random.Random,
                 params: Mapping[str, object]) -> dict[str, object]:
    if name not in ANALYSES:
        raise KeyError(
            f"unknown analysis {name!r} "
            f"(known: {', '.join(sorted(ANALYSES))})")
    return ANALYSES[name](rng, dict(params))

"""Parallel campaign execution over a multiprocessing pool.

Correctness model:

* every run's randomness is derived from ``(root_seed, fingerprint)`` by
  the runner, so records are bit-identical (minus wall-clock timing)
  regardless of worker count or completion order;
* results are appended to the store in **campaign order** (``imap``
  preserves submission order), so two stores produced with different
  ``workers`` hold the same lines in the same order;
* runs whose fingerprint is already stored are skipped — resuming an
  interrupted campaign never repeats completed work.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable
from typing import Any

from repro.experiments import runner
from repro.experiments.spec import Campaign, ExperimentSpec
from repro.experiments.store import ResultStore

__all__ = ["run_campaign"]


def _pool_worker(task: tuple[dict[str, Any], int]) -> dict[str, Any]:
    """Top-level (picklable) pool entry point."""
    spec_dict, root_seed = task
    return runner.run_spec(ExperimentSpec.from_dict(spec_dict), root_seed)


def _pool_context():
    # fork keeps sys.path and imported modules; spawn would re-import
    # __main__ (hazardous under ``python -m repro``) and lose PYTHONPATH
    # tweaks made at runtime.  Windows has no fork; fall back.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_campaign(
    campaign: Campaign,
    store: ResultStore | None = None,
    workers: int = 1,
    max_runs: int | None = None,
    progress: Callable[[int, int, dict[str, Any]], None] | None = None,
) -> list[dict[str, Any]]:
    """Execute every not-yet-stored spec of ``campaign``.

    Returns the records of **all** campaign specs present in the store
    afterwards, in campaign order (completed earlier or just now).  With
    ``max_runs`` the campaign stops after that many new runs — the
    hook interruption/resume tests and ``--max-runs`` use to simulate and
    bound partial campaigns.
    """
    store = store if store is not None else ResultStore(None)
    done = store.by_fingerprint()
    todo: list[tuple[ExperimentSpec, str]] = []
    for spec, fp in zip(campaign.specs, campaign.fingerprints()):
        if fp not in done:
            todo.append((spec, fp))
    if max_runs is not None:
        todo = todo[:max_runs]

    total = len(todo)
    completed = 0

    def _store(record: dict[str, Any]) -> None:
        nonlocal completed
        completed += 1
        store.append(record)
        if progress is not None:
            progress(completed, total, record)

    if workers > 1 and total > 1:
        ctx = _pool_context()
        tasks = [(spec.to_dict(), campaign.root_seed) for spec, _ in todo]
        with ctx.Pool(processes=min(workers, total)) as pool:
            # imap (not imap_unordered): store lines land in campaign
            # order, making the store file itself worker-count-invariant
            for record in pool.imap(_pool_worker, tasks, chunksize=1):
                _store(record)
    else:
        for spec, _ in todo:
            _store(runner.run_spec(spec, campaign.root_seed))

    by_fp = store.by_fingerprint()
    return [by_fp[fp] for fp in campaign.fingerprints() if fp in by_fp]

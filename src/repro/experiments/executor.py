"""Parallel campaign execution over a multiprocessing pool.

Correctness model:

* every run's randomness is derived from ``(root_seed, fingerprint)`` by
  the runner, so records are bit-identical (minus wall-clock timing)
  regardless of worker count or completion order;
* results are appended to the store in **campaign order** (``imap``
  preserves submission order and blocks are contiguous), so two stores
  produced with different ``workers`` hold the same lines in the same
  order;
* runs whose fingerprint is already stored are skipped — resuming an
  interrupted campaign never repeats completed work;
* pending runs are dispatched in contiguous **blocks** (replicate
  batching): each pool task carries a block of specs instead of one, so
  per-task dispatch cost — pickling, queue round-trips, and the fork +
  import cost of any worker respawn — is amortized across the block
  instead of being paid per run.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable
from typing import Any

from repro.experiments import runner
from repro.experiments.spec import Campaign, ExperimentSpec
from repro.experiments.store import ResultStore

__all__ = ["run_campaign"]


def _pool_worker_block(
        task: tuple[list[dict[str, Any]], int, str | None],
) -> tuple[list[dict[str, Any]], BaseException | None]:
    """Top-level (picklable) pool entry point: one block of specs.

    Every record is still a pure function of ``(spec, root_seed)`` — the
    block boundary only batches dispatch, it never threads state from one
    run into the next (``trace_dir`` is plumbing: trace files are keyed
    by run fingerprint, so workers never collide).  A failing run must
    not discard the block's already-completed records (resume would
    repeat them), so the error is returned alongside the partial results
    and re-raised by the parent after it has stored them.
    """
    spec_dicts, root_seed, trace_dir = task
    records: list[dict[str, Any]] = []
    for d in spec_dicts:
        try:
            records.append(runner.run_spec(ExperimentSpec.from_dict(d),
                                           root_seed, trace_dir=trace_dir))
        except BaseException as exc:  # re-raised by the parent
            return records, exc
    return records, None


def _block_size(total: int, workers: int, chunk_size: int | None) -> int:
    """Replicate-block length: explicit, or a load-balanced default.

    The default aims for ~4 blocks per worker (good balance when run
    times vary) capped at 8 runs per block (progress reporting stays
    responsive on long campaigns).
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        return chunk_size
    return max(1, min(8, -(-total // (workers * 4))))


def _pool_context():
    # fork keeps sys.path and imported modules; spawn would re-import
    # __main__ (hazardous under ``python -m repro``) and lose PYTHONPATH
    # tweaks made at runtime.  Windows has no fork; fall back.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_campaign(
    campaign: Campaign,
    store: ResultStore | None = None,
    workers: int = 1,
    max_runs: int | None = None,
    progress: Callable[[int, int, dict[str, Any]], None] | None = None,
    chunk_size: int | None = None,
    trace_dir: str | None = None,
) -> list[dict[str, Any]]:
    """Execute every not-yet-stored spec of ``campaign``.

    Returns the records of **all** campaign specs present in the store
    afterwards, in campaign order (completed earlier or just now).  With
    ``max_runs`` the campaign stops after that many new runs — the
    hook interruption/resume tests and ``--max-runs`` use to simulate and
    bound partial campaigns.  ``chunk_size`` pins the replicate-block
    length handed to each pool task (default: auto, see
    :func:`_block_size`); it never affects results, only dispatch cost.
    ``trace_dir`` is where ``trace=1`` specs persist their convergence
    traces (the campaign CLI derives it from the store path); records
    are invariant to it.
    """
    store = store if store is not None else ResultStore(None)
    done = store.by_fingerprint()
    todo: list[tuple[ExperimentSpec, str]] = []
    for spec, fp in zip(campaign.specs, campaign.fingerprints()):
        if fp not in done:
            todo.append((spec, fp))
    if max_runs is not None:
        todo = todo[:max_runs]

    total = len(todo)
    completed = 0

    def _store(record: dict[str, Any]) -> None:
        nonlocal completed
        completed += 1
        store.append(record)
        if progress is not None:
            progress(completed, total, record)

    if workers > 1 and total > 1:
        ctx = _pool_context()
        block = _block_size(total, workers, chunk_size)
        spec_dicts = [spec.to_dict() for spec, _ in todo]
        tasks = [(spec_dicts[i:i + block], campaign.root_seed, trace_dir)
                 for i in range(0, total, block)]
        with ctx.Pool(processes=min(workers, len(tasks))) as pool:
            # imap (not imap_unordered): store lines land in campaign
            # order, making the store file itself worker-count- and
            # chunk-size-invariant
            for records, error in pool.imap(_pool_worker_block, tasks,
                                            chunksize=1):
                for record in records:
                    _store(record)
                if error is not None:
                    raise error
    else:
        for spec, _ in todo:
            _store(runner.run_spec(spec, campaign.root_seed,
                                   trace_dir=trace_dir))

    by_fp = store.by_fingerprint()
    return [by_fp[fp] for fp in campaign.fingerprints() if fp in by_fp]

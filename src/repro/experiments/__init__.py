"""The experiment campaign subsystem.

The paper's claims are sweep-shaped — stabilization time and register
bits as functions of n across topologies, daemons and adversarial
initializations — so the repo runs them as *campaigns*: declarative
parameter grids (:mod:`spec`), resolved through registries
(:mod:`registry`, :mod:`analyses`), executed deterministically in
parallel (:mod:`runner`, :mod:`executor`), persisted resumably
(:mod:`store`), and rendered back into the paper's tables
(:mod:`report`) — all behind one CLI (``python -m repro``, :mod:`cli`).

Determinism contract: a record is a pure function of (spec, root seed).
Per-run RNG streams are spawned from the run fingerprint, so worker
count, execution order and resume boundaries never change a result.
"""

from repro.experiments.analyses import ANALYSES, run_analysis
from repro.experiments.campaigns import (
    CAMPAIGNS,
    experiment_subset,
    get_campaign,
)
from repro.experiments.executor import run_campaign
from repro.experiments.registry import (
    INITS,
    PROTOCOLS,
    TOPOLOGIES,
    tree_seeded_config,
)
from repro.experiments.report import render_experiment, render_records
from repro.experiments.runner import canonical_record, execute, run_spec
from repro.experiments.spec import (
    Campaign,
    ExperimentSpec,
    derive_seed,
    grid,
    spawn_rng,
)
from repro.experiments.store import ResultStore

__all__ = [
    "ExperimentSpec",
    "Campaign",
    "grid",
    "derive_seed",
    "spawn_rng",
    "PROTOCOLS",
    "TOPOLOGIES",
    "INITS",
    "ANALYSES",
    "tree_seeded_config",
    "run_analysis",
    "execute",
    "run_spec",
    "canonical_record",
    "ResultStore",
    "run_campaign",
    "CAMPAIGNS",
    "get_campaign",
    "experiment_subset",
    "render_experiment",
    "render_records",
]

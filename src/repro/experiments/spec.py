"""The declarative experiment model.

A campaign is *plain data*: an :class:`ExperimentSpec` names what to run
(protocol x topology x daemon x initialization x fault model x replicate)
by registry keys and JSON-able parameters, and a :class:`Campaign` is an
ordered tuple of specs under one root seed.  Everything downstream hangs
off two derived quantities:

* the **fingerprint** — a stable hash of (spec, root seed) that keys the
  result store, so reruns skip completed work and two campaigns never
  collide;
* the **seed streams** — per-run :class:`random.Random` instances spawned
  deterministically from (root seed, fingerprint), so a run draws the same
  randomness whether it executes first or last, serially or on any worker
  of a multiprocessing pool.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, fields, replace

__all__ = [
    "ExperimentSpec",
    "Campaign",
    "grid",
    "derive_seed",
    "spawn_rng",
]

#: Parameter mappings are stored as sorted key/value tuples so specs are
#: hashable, order-insensitive, and fingerprint-stable.
Params = tuple[tuple[str, object], ...]


def _freeze_value(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze_value(v)) for k, v in value.items()))
    return value


def _freeze_params(params: object) -> Params:
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:  # already a key/value pair sequence
        items = list(params)
    return tuple(sorted((str(k), _freeze_value(v)) for k, v in items))


def _thaw_value(value: object) -> object:
    if isinstance(value, tuple):
        return [_thaw_value(v) for v in value]
    return value


def _params_dict(params: Params) -> dict[str, object]:
    return {k: _thaw_value(v) for k, v in params}


@dataclass(frozen=True)
class ExperimentSpec:
    """One run of a campaign, as data.

    Registry keys (see :mod:`repro.experiments.registry`): ``protocol``,
    ``topology``, ``scheduler``, ``init``, ``analysis``.  A spec either
    names a protocol run (``protocol`` set) or an analysis workload
    (``analysis`` set); ``skip`` marks combinations that are declared but
    deliberately not executed (e.g. documented daemon exclusions) — they
    are recorded in the store with the reason, keeping reports
    self-describing.
    """

    experiment: str
    protocol: str = ""
    topology: str = ""
    topo_params: Params = ()
    scheduler: str = "synchronous"
    init: str = "arbitrary"
    init_params: Params = ()
    faults: int = 0
    stop: str = "silence"  # "silence" | "legal"
    max_rounds: int = 0  # 0: runner picks a generous default
    replicate: int = 0
    analysis: str = ""
    analysis_params: Params = ()
    skip: str = ""
    #: 1 = persist this run's convergence trace (repro.obs JSONL) next
    #: to the result store; the run record then carries the trace
    #: filename.  Untraced specs serialize without this field, so every
    #: pre-telemetry fingerprint — and store — is preserved verbatim.
    trace: int = 0
    #: churn phase parameters (``kind``, ``waves``, ``seed``, ...) run by
    #: the dynamics engine *after* stabilization; empty = no churn.
    #: Serialized only when set, so every pre-dynamics fingerprint — and
    #: store — is preserved verbatim.
    events: Params = ()

    def __post_init__(self) -> None:
        for name in ("topo_params", "init_params", "analysis_params",
                     "events"):
            object.__setattr__(self, name, _freeze_params(getattr(self, name)))
        # well-formedness is independent of `skip`: a skip spec is still a
        # declared run (it is fingerprinted and stored), only not executed
        if bool(self.protocol) == bool(self.analysis):
            raise ValueError(
                f"spec {self.experiment!r} must set exactly one of "
                f"protocol/analysis (got protocol={self.protocol!r}, "
                f"analysis={self.analysis!r})")
        if self.stop not in ("silence", "legal"):
            raise ValueError(f"unknown stop condition {self.stop!r}")

    # -- parameter access ------------------------------------------------

    @property
    def topo(self) -> dict[str, object]:
        return _params_dict(self.topo_params)

    @property
    def init_args(self) -> dict[str, object]:
        return _params_dict(self.init_params)

    @property
    def analysis_args(self) -> dict[str, object]:
        return _params_dict(self.analysis_params)

    @property
    def events_args(self) -> dict[str, object]:
        return _params_dict(self.events)

    @property
    def topology_label(self) -> str:
        """Human-readable instance name, e.g. ``ring/n=8``."""
        if not self.topology:
            return "-"
        args = ",".join(f"{k}={v}" for k, v in self.topo.items())
        return f"{self.topology}/{args}" if args else self.topology

    @property
    def label(self) -> str:
        """One-line display label for progress output."""
        what = self.protocol or f"analysis:{self.analysis}"
        parts = [self.experiment, what]
        if self.topology:
            parts.append(self.topology_label)
        if self.protocol:
            parts.append(self.scheduler)
        if self.faults:
            parts.append(f"faults={self.faults}")
        if self.replicate:
            parts.append(f"rep={self.replicate}")
        return " ".join(parts)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """A JSON-plain dict; round-trips through :meth:`from_dict`."""
        out: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_params"):
                value = _params_dict(value)
            if f.name == "events":
                if not value:
                    # omitted when falsy: churn-free specs serialize
                    # exactly as they did before the dynamics engine
                    # existed, so stored spec dicts round-trip verbatim.
                    # Unlike ``trace``, a set ``events`` IS identity: it
                    # changes what executes, so it stays in the
                    # fingerprint.
                    continue
                value = _params_dict(value)
            if f.name == "trace" and not value:
                # omitted when falsy: untraced specs serialize exactly
                # as they did before the telemetry layer existed, so
                # stored spec dicts round-trip verbatim (the fingerprint
                # additionally drops the field even when set — see
                # :meth:`fingerprint`)
                continue
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    # -- identity --------------------------------------------------------

    def fingerprint(self, root_seed: int) -> str:
        """Stable run identity: hash of the canonical spec + root seed.

        Insensitive to parameter-dict ordering (params are stored sorted)
        and to the position of the spec inside its campaign.  The
        ``trace`` flag is excluded: tracing is observability, not
        identity — a traced run derives the same seed streams, executes
        the same moves, and keys the same store record as its untraced
        twin (so flipping ``trace`` on an already-completed spec finds
        the record cached; re-run against a fresh store to capture the
        trace).
        """
        spec = self.to_dict()
        spec.pop("trace", None)
        canon = json.dumps({"root_seed": root_seed, "spec": spec},
                           sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def derive_seed(root_seed: int, fingerprint: str, stream: str) -> int:
    """A 63-bit seed for one named stream of one run, by hashing.

    Pure function of its arguments: no dependence on execution order,
    worker identity, or Python hash randomization.
    """
    digest = hashlib.sha256(
        f"{root_seed}:{fingerprint}:{stream}".encode("utf-8")).hexdigest()
    return int(digest[:16], 16) >> 1


def spawn_rng(root_seed: int, fingerprint: str, stream: str) -> random.Random:
    """An isolated :class:`random.Random` for one named stream of one run."""
    return random.Random(derive_seed(root_seed, fingerprint, stream))


@dataclass(frozen=True)
class Campaign:
    """An ordered set of runs under one root seed."""

    name: str
    title: str
    specs: tuple[ExperimentSpec, ...]
    root_seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        fps = self.fingerprints()
        if len(set(fps)) != len(fps):
            dupes = sorted({f for f in fps if fps.count(f) > 1})
            raise ValueError(
                f"campaign {self.name!r} contains duplicate runs "
                f"(fingerprints {dupes}); give replicates distinct "
                f"`replicate` indices")

    def __len__(self) -> int:
        return len(self.specs)

    def fingerprints(self) -> list[str]:
        return [s.fingerprint(self.root_seed) for s in self.specs]

    def with_root_seed(self, root_seed: int) -> "Campaign":
        return replace(self, root_seed=root_seed)

    def experiments(self) -> list[str]:
        """Experiment ids in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.specs:
            seen.setdefault(s.experiment, None)
        return list(seen)


def grid(**axes: Sequence[object]) -> Iterator[dict[str, object]]:
    """Cartesian product of named axes, in the given axis order.

    >>> list(grid(a=[1, 2], b=["x"]))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    names = list(axes)
    for combo in itertools.product(*(axes[k] for k in names)):
        yield dict(zip(names, combo))

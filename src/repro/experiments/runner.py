"""Executing one spec: network, protocol, daemon, run, measurements.

The runner is the only bridge between the declarative model and the
runtime.  Each run derives its own named RNG streams (topology, init,
scheduler, faults, analysis) from ``(root_seed, fingerprint)`` via
:func:`~repro.experiments.spec.spawn_rng`, and never touches module-level
RNG state — so a record is a pure function of ``(spec, root_seed)``,
bit-identical whether it was computed serially, on a pool worker, or in a
resumed campaign.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.experiments.analyses import run_analysis
from repro.experiments.registry import (
    SCHEDULERS,
    build_config,
    build_network,
    build_protocol,
)
from repro.experiments.spec import ExperimentSpec, derive_seed, spawn_rng
from repro.runtime.faults import inject_random_faults
from repro.runtime.metrics import max_register_bits, total_register_bits
from repro.runtime.simulator import Simulator

__all__ = ["execute", "run_spec", "RECORD_VERSION", "canonical_record"]

#: Bump when the record schema changes incompatibly; reports may branch.
RECORD_VERSION = 1

#: Fields excluded from determinism comparisons (wall-clock noise).
VOLATILE_KEYS = ("timing",)


def canonical_record(record: dict[str, Any]) -> dict[str, Any]:
    """The record minus volatile fields — the bit-identical part."""
    return {k: v for k, v in record.items() if k not in VOLATILE_KEYS}


def _legality(proto, net, config):
    """Protocol legality as a JSON value: True/False, or None when the
    protocol defines no predicate."""
    try:
        return bool(proto.is_legal(net, config))
    except NotImplementedError:
        return None


def _certified(certifier_key: str, net, config) -> bool:
    """Whether the local verifiers accept the (decorated) configuration."""
    from repro.certify.schemes import get_certifier
    cert = get_certifier(certifier_key)
    try:
        decorated = cert.certify(net, config)
    except (ValueError, KeyError, TypeError):
        return False
    return bool(cert.verify(net, decorated).accepted)


def execute(spec: ExperimentSpec, root_seed: int = 0,
            trace_dir: str | Path | None = None
            ) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run one spec; returns ``(record, context)``.

    ``record`` is the JSON-plain summary persisted by the store.
    ``context`` holds live objects (network, simulator, start tree) for
    in-process callers — examples and benches that want to poke the final
    configuration; it never crosses a process boundary.

    A spec with ``trace=1`` additionally captures the run's convergence
    trace (repro.obs JSONL) under ``trace_dir`` as
    ``trace-<fingerprint>.jsonl``.  The record stays a pure function of
    ``(spec, root_seed)``: the metrics carry the *derived filename*
    either way, and only the presence of ``trace_dir`` (campaign
    plumbing, like the store path) decides whether the bytes land.
    """
    fp = spec.fingerprint(root_seed)
    base: dict[str, Any] = {
        "version": RECORD_VERSION,
        "fingerprint": fp,
        "root_seed": root_seed,
        "experiment": spec.experiment,
        "spec": spec.to_dict(),
    }
    if spec.skip:
        base["metrics"] = {"skipped": spec.skip}
        base["timing"] = {"wall_seconds": 0.0, "run_seconds": 0.0}
        return base, {}

    t0 = time.perf_counter()
    if spec.analysis:
        metrics = run_analysis(spec.analysis,
                               spawn_rng(root_seed, fp, "analysis"),
                               spec.analysis_args)
        elapsed = time.perf_counter() - t0
        base["metrics"] = dict(metrics)
        base["timing"] = {"wall_seconds": elapsed, "run_seconds": elapsed}
        return base, {}

    net = build_network(spec.topology, spec.topo,
                        spawn_rng(root_seed, fp, "topology"))
    proto, entry = build_protocol(spec.protocol)
    config, context = build_config(spec.init, net, proto,
                                   spawn_rng(root_seed, fp, "init"),
                                   spec.init_args)
    scheduler = SCHEDULERS[spec.scheduler](
        derive_seed(root_seed, fp, "scheduler"))
    recorder = None
    trace_name = f"trace-{fp}.jsonl"
    if spec.trace and trace_dir is not None:
        from repro.obs.probes import TraceRecorder
        live: dict[str, Any] = {}
        extra_probes: dict[str, Any] = {}
        if entry.certifier is not None:
            # the locally_certified flicker probe: the 0/1 per-round
            # column flicker counts are read from (see repro.obs).  The
            # network is read through the live simulator, not captured:
            # topology events rebind sim.net mid-run and the probe must
            # verify against the current revision.
            cert_key = entry.certifier
            extra_probes["certified"] = lambda: int(
                _certified(cert_key, live["sim"].net, live["sim"].config))
        recorder = TraceRecorder(
            Path(trace_dir) / trace_name,
            extra_probes=extra_probes,
            header_extra={"fingerprint": fp,
                          "experiment": spec.experiment})
    sim = Simulator(net, proto, scheduler, config=config,
                    rng=spawn_rng(root_seed, fp, "faults"),
                    recorder=recorder)
    if recorder is not None:
        live["sim"] = sim
    max_rounds = spec.max_rounds or 20_000 * net.n

    run_t0 = time.perf_counter()
    try:
        if spec.stop == "legal":
            result = sim.run(max_rounds=max_rounds,
                             stop_when=lambda nn, cfg: bool(proto.is_legal(nn, cfg)))
        else:
            result = sim.run(max_rounds=max_rounds)
    except BaseException:
        if recorder is not None:
            recorder.abort()  # the trace ends torn — honestly
        raise
    run_seconds = time.perf_counter() - run_t0

    metrics: dict[str, Any] = {"n": net.n, "m": net.m}
    metrics.update(result.to_record())
    metrics["legal"] = _legality(proto, net, sim.config)
    metrics["max_register_bits"] = max_register_bits(net, sim.spec, sim.config)
    metrics["total_register_bits"] = total_register_bits(net, sim.spec,
                                                         sim.config)
    if result.silent:
        # a silent algorithm performs zero further moves: certify over a
        # short observation window (cheap — the rounds are empty)
        metrics["confirmed_silent"] = sim.confirm_silent(extra_rounds=2)
    if entry.certifier is not None:
        # local certification: decorate the final configuration with the
        # task's proof labels and run every node's neighborhood-only
        # verifier (see repro.certify) — the record-level witness that
        # the run ended in a *locally checkable* legitimate state
        metrics["locally_certified"] = _certified(entry.certifier, net,
                                                  sim.config)

    # task-level metrics describe the *stabilized* configuration the
    # rounds/silent/legal columns above describe — before any injected
    # faults mutate it (recovery may stabilize on a different legal tree)
    if entry.extra_metrics is not None:
        metrics.update(entry.extra_metrics(net, proto, sim, context))

    if spec.faults:
        stab_rounds, stab_moves = sim.rounds, sim.moves
        victims = inject_random_faults(sim, spec.faults, seed=None)
        run_t0 = time.perf_counter()
        try:
            recovery = sim.run(max_rounds=max_rounds)
        except BaseException:
            if recorder is not None:
                recorder.abort()
            raise
        run_seconds += time.perf_counter() - run_t0
        metrics["fault_victims"] = sorted(victims)
        metrics["recovery_rounds"] = sim.rounds - stab_rounds
        metrics["recovery_moves"] = sim.moves - stab_moves
        metrics["recovered_silent"] = recovery.silent
        metrics["recovered_legal"] = _legality(proto, net, sim.config)
        if entry.certifier is not None:
            metrics["recovered_locally_certified"] = _certified(
                entry.certifier, net, sim.config)

    if spec.events:
        # the churn phase: seeded topology events against the stabilized
        # configuration, measuring re-silence and certification-flicker
        # locality (see repro.runtime.dynamics).  The event stream's seed
        # derives from (root_seed, fingerprint) like every other stream,
        # overridable through the spec for pinned scenarios.
        from repro.runtime.dynamics.run import run_churn
        ev = spec.events_args
        churn_seed = ev.get("seed")
        if churn_seed is None:
            churn_seed = derive_seed(root_seed, fp, "churn")
        run_t0 = time.perf_counter()
        try:
            churn = run_churn(
                sim,
                kind=str(ev.get("kind", "mixed")),
                waves=int(ev.get("waves", 1)),
                seed=int(churn_seed),
                certifier_key=entry.certifier,
                recorder=recorder,
                check=bool(ev.get("check", 0)))
        except BaseException:
            if recorder is not None:
                recorder.abort()
            raise
        run_seconds += time.perf_counter() - run_t0
        metrics["churn"] = churn
        metrics["churn_silent"] = churn["silent"]
        metrics["churn_legal"] = _legality(proto, sim.net, sim.config)
        if entry.certifier is not None:
            metrics["churn_locally_certified"] = _certified(
                entry.certifier, sim.net, sim.config)

    if recorder is not None:
        recorder.finalize(silent=sim.is_silent())
    if spec.trace:
        # the derived filename, recorded whether or not a campaign
        # directory captured the bytes — keeps the record a pure
        # function of (spec, root_seed)
        metrics["trace"] = trace_name

    base["metrics"] = metrics
    # run_seconds: the simulator runs alone (throughput numbers divide by
    # this); wall_seconds additionally includes topology/init construction
    # and measurement overhead
    base["timing"] = {"wall_seconds": time.perf_counter() - t0,
                      "run_seconds": run_seconds}
    context = dict(context)
    context.update(net=net, protocol=proto, simulator=sim, result=result)
    return base, context


def run_spec(spec: ExperimentSpec, root_seed: int = 0,
             trace_dir: str | Path | None = None) -> dict[str, Any]:
    """The store-facing entry point: record only (picklable)."""
    record, _ = execute(spec, root_seed, trace_dir=trace_dir)
    return record

"""The campaign result store: append-only JSONL, keyed by fingerprint.

One line per completed run.  Restarting a campaign against the same store
skips every fingerprint already present, so an interrupted campaign
resumes without duplicate work; a run killed mid-write leaves at most one
truncated final line, which the loader tolerates (it is re-run on resume).

``path=None`` gives an in-memory store with the same interface — used by
the benchmark smoke entry points, which do not want artifacts on disk.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.experiments.runner import canonical_record

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only JSONL result store with fingerprint-keyed lookup."""

    def __init__(self, path: str | os.PathLike | None) -> None:
        self.path = Path(path) if path is not None else None
        self._memory: list[dict[str, Any]] = []
        self._tail_is_clean = False  # until proven newline-terminated

    # -- writing ---------------------------------------------------------

    def _heal_torn_tail(self) -> None:
        """Drop a torn final line (a kill mid-write) before appending.

        Without this, the first record appended on resume would be glued
        onto the torn tail, corrupting *both* lines.  The torn record was
        never complete, so truncating it simply makes its run eligible to
        execute again.
        """
        try:
            with open(self.path, "rb+") as fh:
                data = fh.read()
                if not data or data.endswith(b"\n"):
                    return
                fh.truncate(data.rfind(b"\n") + 1)  # 0 if no newline at all
        except FileNotFoundError:
            return

    def append(self, record: dict[str, Any]) -> None:
        if self.path is None:
            self._memory.append(record)
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self._tail_is_clean:
            self._heal_torn_tail()
            self._tail_is_clean = True
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    # -- reading ---------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """All parseable records, in file order.

        A truncated final line (a run killed mid-write) is skipped; a
        corrupt line anywhere else raises, because silently dropping
        completed work would make resume re-run it and the store would
        hold conflicting duplicates.
        """
        if self.path is None:
            return list(self._memory)
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    break  # torn tail write from an interrupted campaign
                raise ValueError(
                    f"{self.path}: corrupt record on line {i + 1}") from exc
        return out

    def by_fingerprint(self) -> dict[str, dict[str, Any]]:
        """fingerprint -> record; on duplicates the last write wins."""
        return {r["fingerprint"]: r for r in self.records()
                if "fingerprint" in r}

    def fingerprints(self) -> set[str]:
        return set(self.by_fingerprint())

    def __len__(self) -> int:
        return len(self.by_fingerprint())

    # -- determinism helpers --------------------------------------------

    def canonical_records(self) -> dict[str, dict[str, Any]]:
        """fingerprint -> record stripped of volatile (timing) fields.

        Two stores produced by the same campaign — regardless of worker
        count, run order, or resume boundaries — compare equal here.
        """
        return {fp: canonical_record(r)
                for fp, r in self.by_fingerprint().items()}

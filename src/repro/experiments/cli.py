"""``python -m repro`` — the unified command line.

::

    python -m repro campaign list
    python -m repro campaign run --smoke --workers 4
    python -m repro campaign run --campaign mst --store results/mst.jsonl
    python -m repro campaign status --campaign mst
    python -m repro campaign report --campaign mst --format markdown
    python -m repro bench --smoke --json
    python -m repro bench --list

``run`` is resumable: rerunning against the same store skips completed
runs (``0 executed`` on a finished campaign), and the records are
bit-identical for any ``--workers`` value, so a campaign can be spread
over machines or restarts freely.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.analysis import format_table
from repro.experiments.campaigns import CAMPAIGNS, get_campaign
from repro.experiments.executor import run_campaign
from repro.experiments.report import render_records
from repro.experiments.spec import Campaign
from repro.experiments.store import ResultStore

__all__ = ["main"]


def _add_campaign_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--campaign", metavar="NAME",
                        help=f"named campaign "
                             f"({', '.join(sorted(CAMPAIGNS))})")
    parser.add_argument("--smoke", action="store_true",
                        help="shorthand for --campaign smoke")
    parser.add_argument("--root-seed", type=int, default=0,
                        help="campaign root seed (default 0); changing it "
                             "re-derives every run's randomness")
    parser.add_argument("--store", metavar="PATH",
                        help="JSONL result store "
                             "(default campaigns/<name>.jsonl)")


def _resolve_campaign(args: argparse.Namespace) -> Campaign:
    name = "smoke" if args.smoke else args.campaign
    if not name:
        raise SystemExit("error: pick a campaign (--campaign NAME or --smoke)")
    try:
        return get_campaign(name, root_seed=args.root_seed)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None


def _resolve_store(args: argparse.Namespace, campaign: Campaign) -> ResultStore:
    path = args.store or Path("campaigns") / f"{campaign.name}.jsonl"
    return ResultStore(path)


def _trace_dir(store: ResultStore) -> str | None:
    """Where ``trace=1`` specs persist traces: next to the JSONL store.

    ``campaigns/smoke.jsonl`` gets ``campaigns/smoke.traces/`` — the
    directory is derived, never configured, so a resumed campaign finds
    its earlier traces where it left them.  In-memory stores have no
    neighborhood to persist into.
    """
    if store.path is None:
        return None
    p = Path(store.path)
    return str(p.with_name(p.stem + ".traces"))


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(CAMPAIGNS):
        c = CAMPAIGNS[name]()
        rows.append((name, c.title, len(c), ", ".join(c.experiments())))
    print(format_table("registered campaigns (see EXPERIMENTS.md)",
                       ["name", "title", "runs", "experiments"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    campaign = _resolve_campaign(args)
    store = _resolve_store(args, campaign)
    cached = len(store.fingerprints() & set(campaign.fingerprints()))

    def progress(done: int, total: int, record: dict) -> None:
        if args.quiet:
            return
        metrics = record.get("metrics", {})
        spec = record.get("spec", {})
        what = spec.get("protocol") or f"analysis:{spec.get('analysis')}"
        if "skipped" in metrics:
            note = f"skipped ({metrics['skipped']})"
        else:
            wall = record.get("timing", {}).get("wall_seconds", 0.0)
            note = ", ".join(
                f"{k}={metrics[k]}" for k in ("rounds", "moves")
                if k in metrics) or "done"
            note += f"  [{wall:.2f}s]"
        print(f"[{done}/{total}] {record.get('experiment')} {what}: {note}",
              flush=True)

    records = run_campaign(campaign, store=store, workers=args.workers,
                           max_runs=args.max_runs, progress=progress,
                           trace_dir=_trace_dir(store))
    executed = len(records) - cached
    print(f"campaign {campaign.name!r}: {executed} executed, "
          f"{cached} cached, {len(campaign) - len(records)} pending "
          f"(store: {store.path})")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    campaign = _resolve_campaign(args)
    store = _resolve_store(args, campaign)
    have = store.fingerprints()
    rows = []
    for experiment in campaign.experiments():
        specs = [(s, fp) for s, fp in zip(campaign.specs,
                                          campaign.fingerprints())
                 if s.experiment == experiment]
        done = sum(1 for _, fp in specs if fp in have)
        rows.append((experiment, done, len(specs),
                     "complete" if done == len(specs) else "pending"))
    total_done = sum(r[1] for r in rows)
    print(format_table(
        f"campaign {campaign.name!r} "
        f"({total_done}/{len(campaign)} runs, store: {store.path})",
        ["experiment", "done", "total", "state"], rows))
    return 0 if total_done == len(campaign) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    campaign = _resolve_campaign(args)
    store = _resolve_store(args, campaign)
    wanted = set(campaign.fingerprints())
    records = [r for r in store.records()
               if r.get("fingerprint") in wanted]
    if args.experiment:
        records = [r for r in records
                   if r.get("experiment") == args.experiment]
    if not records:
        print("no records in the store for this campaign; "
              "run `campaign run` first", file=sys.stderr)
        return 1
    print(render_records(records, fmt=args.format))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="experiment campaigns and performance benchmarks "
                    "for the ICDCS'15 reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    # the perf subsystem registers `python -m repro bench`
    from repro.perf.cli import register_bench
    register_bench(sub)

    # the certification subsystem registers `python -m repro certify`
    from repro.certify.cli import register_certify
    register_certify(sub)

    # the static analyzer registers `python -m repro statics`
    from repro.statics.cli import register_statics
    register_statics(sub)

    # the sharded runtime registers `python -m repro shard`
    from repro.runtime.sharding.cli import register_shard
    register_shard(sub)

    # the telemetry layer registers `python -m repro obs`
    from repro.obs.cli import register_obs
    register_obs(sub)

    # the dynamics engine registers `python -m repro churn`
    from repro.runtime.dynamics.cli import register_churn
    register_churn(sub)

    campaign = sub.add_parser("campaign", help="declarative experiment sweeps")
    csub = campaign.add_subparsers(dest="subcommand", required=True)

    p_list = csub.add_parser("list", help="registered campaigns")
    p_list.set_defaults(fn=_cmd_list)

    p_run = csub.add_parser("run", help="execute a campaign (resumable)")
    _add_campaign_options(p_run)
    p_run.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes (default 1; results "
                            "are bit-identical for any value)")
    p_run.add_argument("--max-runs", type=int, default=None,
                       help="stop after N new runs (for partial campaigns)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress per-run progress lines")
    p_run.set_defaults(fn=_cmd_run)

    p_status = csub.add_parser("status", help="completion state per experiment")
    _add_campaign_options(p_status)
    p_status.set_defaults(fn=_cmd_status)

    p_report = csub.add_parser("report",
                               help="render tables from the store alone")
    _add_campaign_options(p_report)
    p_report.add_argument("--format", choices=("ascii", "markdown", "csv"),
                          default="ascii")
    p_report.add_argument("--experiment", metavar="EXP-ID",
                          help="restrict to one experiment id")
    p_report.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # e.g. `campaign report | head`: the consumer closed the pipe;
        # detach stdout so the interpreter's shutdown flush stays quiet
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Named campaigns: the experiment registry of EXPERIMENTS.md as data.

Each builder returns a :class:`~repro.experiments.spec.Campaign` whose
specs regenerate one experiment family (one former ``benchmarks/bench_*``
table).  The CLI exposes them by name (``python -m repro campaign run
--campaign mst``); the benchmark scripts declare themselves in terms of
these builders, so a bench's pytest smoke entry point and a CLI campaign
run execute byte-identical specs.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments.spec import Campaign, ExperimentSpec, grid
from repro.runtime.scheduler import ALL_SCHEDULER_FACTORIES

__all__ = ["CAMPAIGNS", "get_campaign", "experiment_subset",
           "EXCLUDED_DAEMONS"]

#: Declared daemon exclusions (protocol, scheduler) -> reason.  Empty
#: since the election layer gained its adoption-soundness guard: the
#: former ``(malleable-tree, central-max-id)`` livelock — a broken node
#: oscillating between adopting a claim its neighborhood cannot support
#: and resetting — is fixed in :mod:`repro.core.swap`, so the schedulers
#: campaign executes the full protocol x daemon grid (see EXPERIMENTS.md,
#: EXP-SCHED).
EXCLUDED_DAEMONS: dict[tuple[str, str], str] = {}


def smoke(root_seed: int = 0) -> Campaign:
    """A tiny multi-protocol grid: the CI resume/parallelism canary."""
    topologies = [("ring", {"n": 6, "seed": 1}),
                  ("random", {"n": 8, "seed": 2})]
    specs = [
        ExperimentSpec(experiment="EXP-SMOKE", protocol=c["protocol"],
                       topology=c["topology"][0], topo_params=c["topology"][1],
                       scheduler=c["scheduler"], init="arbitrary")
        for c in grid(protocol=["sst", "malleable-tree"],
                      topology=topologies,
                      scheduler=["synchronous", "central-random"])
    ]
    specs += [
        ExperimentSpec(experiment="EXP-SMOKE", protocol="guided-bfs",
                       topology=name, topo_params=params,
                       scheduler="synchronous", init="arbitrary")
        for name, params in topologies
    ]
    specs.append(ExperimentSpec(
        experiment="EXP-SMOKE", protocol="sst", topology="ring",
        topo_params={"n": 6, "seed": 1}, scheduler="synchronous",
        init="arbitrary", faults=2))
    specs.append(ExperimentSpec(
        experiment="EXP-SMOKE", protocol="sst", topology="random",
        topo_params={"n": 8, "seed": 2}, scheduler="central-random",
        init="arbitrary", replicate=1,
        # one traced row: the resume canary also exercises the
        # convergence-trace plumbing (store-adjacent trace dir, probe
        # columns incl. the certified flicker probe)
        trace=1))
    return Campaign("smoke", "multi-protocol smoke grid", tuple(specs),
                    root_seed)


def engine(root_seed: int = 0, n: int = 48) -> Campaign:
    """EXP-ENGINE: SST throughput under every daemon on three topologies."""
    rows = max(2, int(n ** 0.5))
    cols = max(2, n // rows)
    topologies = [("ring", {"n": n, "seed": 1}),
                  ("grid", {"rows": rows, "cols": cols, "seed": 1}),
                  ("random", {"n": n, "seed": 42})]
    specs = [
        ExperimentSpec(experiment="EXP-ENGINE", protocol="sst",
                       topology=name, topo_params=params,
                       scheduler=sched, init="arbitrary",
                       init_params={"seed": 7}, max_rounds=2_000_000)
        for name, params in topologies
        for sched in sorted(ALL_SCHEDULER_FACTORIES)
    ]
    return Campaign("engine", f"incremental engine throughput (n~{n})",
                    tuple(specs), root_seed)


def schedulers(root_seed: int = 0) -> Campaign:
    """EXP-SCHED: stabilization under every daemon, arbitrary init."""
    specs = []
    for proto in ("sst", "malleable-tree"):
        for sched in sorted(ALL_SCHEDULER_FACTORIES):
            specs.append(ExperimentSpec(
                experiment="EXP-SCHED", protocol=proto,
                topology="random", topo_params={"n": 12, "seed": 12},
                scheduler=sched, init="arbitrary", init_params={"seed": 13},
                max_rounds=50_000,
                skip=EXCLUDED_DAEMONS.get((proto, sched), "")))
    return Campaign("schedulers", "stabilization under every daemon",
                    tuple(specs), root_seed)


def silence(root_seed: int = 0) -> Campaign:
    """EXP-SIL: silence certification and the k-fault recovery ladder."""
    specs = [
        ExperimentSpec(experiment="EXP-SIL", protocol="guided-bfs",
                       topology="random", topo_params={"n": 12, "seed": 11},
                       scheduler="synchronous", init="dfs-tree",
                       faults=k, max_rounds=96_000)
        for k in (0, 1, 2, 4, 8)
    ]
    return Campaign("silence", "silence and k-fault recovery",
                    tuple(specs), root_seed)


def bfs(root_seed: int = 0) -> Campaign:
    """EXP-T3: PLS-guided BFS (Thm 3.1) vs the ad hoc baseline."""
    cases = [("ring", {"n": 8, "seed": 3}),
             ("ring", {"n": 16, "seed": 3}),
             ("grid", {"rows": 3, "cols": 4, "seed": 4}),
             ("lollipop", {"clique_size": 4, "tail_len": 6, "seed": 5})]
    specs = []
    for name, params in cases:
        specs.append(ExperimentSpec(
            experiment="EXP-T3", protocol="guided-bfs", topology=name,
            topo_params=params, scheduler="synchronous", init="dfs-tree"))
        specs.append(ExperimentSpec(
            experiment="EXP-T3", protocol="adhoc-bfs", topology=name,
            topo_params=params, scheduler="synchronous", init="defaults"))
    return Campaign("bfs", "guided BFS vs ad hoc baseline",
                    tuple(specs), root_seed)


def mst(root_seed: int = 0, sizes: tuple[int, ...] = (8, 12, 16, 20)
        ) -> Campaign:
    """EXP-T1: silent MST vs the compact non-silent baseline."""
    specs = []
    for n in sizes:
        topo = {"n": n, "seed": n, "weighted": True}
        specs.append(ExperimentSpec(
            experiment="EXP-T1", protocol="guided-mst", topology="random",
            topo_params=topo, scheduler="synchronous", init="random-tree",
            init_params={"seed": 1}))
        specs.append(ExperimentSpec(
            experiment="EXP-T1", protocol="compact-mst", topology="random",
            topo_params=topo, scheduler="synchronous", init="defaults",
            stop="legal", max_rounds=40))
    return Campaign("mst", "silent MST headline", tuple(specs), root_seed)


def mdst(root_seed: int = 0, sizes: tuple[int, ...] = (8, 10, 12)
         ) -> Campaign:
    """EXP-T2: silent near-MDST vs the Omega(n log n) baseline."""
    specs = []
    for n in sizes:
        topo = {"n": n, "extra_edges": 2 * n, "seed": n}
        specs.append(ExperimentSpec(
            experiment="EXP-T2", protocol="guided-mdst", topology="random",
            topo_params=topo, scheduler="synchronous", init="random-tree",
            init_params={"seed": 2}))
        specs.append(ExperimentSpec(
            experiment="EXP-T2", protocol="bgr-mdst", topology="random",
            topo_params=topo, scheduler="synchronous", init="defaults",
            stop="legal", max_rounds=30))
    return Campaign("mdst", "silent near-MDST headline",
                    tuple(specs), root_seed)


def nca(root_seed: int = 0) -> Campaign:
    """EXP-L51: NCA label sizes + the distributed label construction."""
    specs = [
        ExperimentSpec(experiment="EXP-L51", analysis="nca-label-sizes",
                       analysis_params={"shape": c["shape"], "n": c["n"],
                                        "seed": 7})
        for c in grid(shape=["path", "star", "caterpillar", "random"],
                      n=[16, 64, 256])
    ]
    specs += [
        ExperimentSpec(experiment="EXP-L51", protocol="nca-build",
                       topology="random-tree", topo_params={"n": n, "seed": 8},
                       scheduler="synchronous", init="bfs-tree",
                       max_rounds=20 * n)
        for n in (8, 16, 32)
    ]
    return Campaign("nca", "NCA labels and certificates (Lemma 5.1)",
                    tuple(specs), root_seed)


def certification(root_seed: int = 0) -> Campaign:
    """EXP-CERT: every certified task stabilizes to a *locally certified*
    configuration — the certificate assigner's decoration of the final
    state is accepted by every node's neighborhood-only verifier (see
    :mod:`repro.certify`); the records carry ``locally_certified``."""
    specs = []
    cases = [
        ("sst", "random", {"n": 14, "seed": 31}, "arbitrary"),
        ("adhoc-bfs", "random", {"n": 14, "seed": 31}, "arbitrary"),
        ("guided-bfs", "random", {"n": 10, "seed": 32}, "arbitrary"),
        ("nca-build", "random-tree", {"n": 12, "seed": 33}, "arbitrary"),
        ("guided-mst", "random",
         {"n": 10, "seed": 34, "weighted": True}, "random-tree"),
        ("guided-mdst", "random",
         {"n": 10, "extra_edges": 20, "seed": 35}, "random-tree"),
    ]
    for proto, topo, params, init in cases:
        for sched in ("synchronous", "central-random"):
            specs.append(ExperimentSpec(
                experiment="EXP-CERT", protocol=proto,
                topology=topo, topo_params=params,
                scheduler=sched, init=init,
                init_params={"seed": 36},
                max_rounds=200_000))
    # recovery is re-certified too: after k transient faults the system
    # must return to a locally certified configuration
    specs.append(ExperimentSpec(
        experiment="EXP-CERT", protocol="guided-bfs",
        topology="random", topo_params={"n": 10, "seed": 32},
        scheduler="synchronous", init="arbitrary",
        init_params={"seed": 36}, faults=3, max_rounds=200_000))
    return Campaign("certification",
                    "local certification of stabilized configurations",
                    tuple(specs), root_seed)


def structure(root_seed: int = 0) -> Campaign:
    """EXP-L41 / EXP-ABL / EXP-F2 / EXP-P81: the structural analyses."""
    specs = [
        ExperimentSpec(experiment="EXP-L41", analysis="local-switch",
                       analysis_params={"n": n, "seed": 6})
        for n in (8, 16, 32)
    ]
    specs.append(ExperimentSpec(
        experiment="EXP-ABL", analysis="switch-ablation",
        analysis_params={"n": 14, "seed": 13}))
    specs.append(ExperimentSpec(
        experiment="EXP-F2", analysis="boruvka-fragments",
        analysis_params={"n": 12, "seed": 9, "tree_seed": 10}))
    specs.append(ExperimentSpec(
        experiment="EXP-P81", analysis="fr-subclass",
        analysis_params={"n": 8, "graphs": 25, "trees": 4,
                         "extra_edges": 6}))
    return Campaign("structure", "switch/ablation/fragment/FR analyses",
                    tuple(specs), root_seed)


def scale(root_seed: int = 0) -> Campaign:
    """ROADMAP item 2: the sharded n >= 10^5 tier (nightly, not smoke).

    Every row is a ``sharded-scale`` analysis: the partitioned engine on
    an implicit topology, one worker process per shard, per-round JSONL
    metrics streamed (never a materialized trace), per-shard peak RSS in
    the record.  Deliberately excluded from ``full``: these rows are
    minutes each and belong to the nightly tier.
    """
    rows = [
        # the acceptance row: an n = 10^5 SST campaign run to silence
        ("implicit-grid:rows=250,cols=400", "sst", 4),
        # a second 10^5-class shape with a short diameter (fast check
        # that the tier is not grid-shaped by accident)
        ("implicit-hypercube:dim=17", "sst", 8),
    ]
    specs = [
        ExperimentSpec(
            experiment="EXP-SCALE",
            analysis="sharded-scale",
            analysis_params=(("topology", topo), ("protocol", proto),
                             ("shards", shards), ("method", "bfs"),
                             ("init_seed", 7), ("rounds", 5000),
                             ("require_silence", 1), ("processes", 1)),
        )
        for topo, proto, shards in rows
    ]
    return Campaign("scale", "sharded large-n tier (streamed metrics)",
                    tuple(specs), root_seed)


#: the churn grid's axes (see EXPERIMENTS.md, EXP-CHURN)
_CHURN_PROTOCOLS = ("sst", "adhoc-bfs", "guided-bfs")
_CHURN_KINDS = ("edge-flip", "crash-join", "crash-recover", "mixed")
#: single event vs batched churn — the super-stabilization table's rows
_CHURN_RATES = (1, 5)


def churn(root_seed: int = 0) -> Campaign:
    """EXP-CHURN: super-stabilization under seeded topology churn.

    Each row stabilizes from an arbitrary configuration, then the
    dynamics engine applies a seeded event schedule and measures
    re-silence (rounds/moves per wave) and certification-flicker
    locality (fraction of verifier rejections within 2 hops of the
    event).  ``waves`` contrasts a single event against batched churn;
    the daemon axis runs the full factory so re-silence bounds are
    daemon-independent facts, not synchronous artifacts.  Topology
    ``headroom`` gives node-join events room under the incorruptible
    ``n_bound``.
    """
    topo = {"n": 16, "seed": 11, "headroom": 4}
    specs = []
    for c in grid(protocol=list(_CHURN_PROTOCOLS),
                  scheduler=sorted(ALL_SCHEDULER_FACTORIES),
                  kind=list(_CHURN_KINDS),
                  waves=list(_CHURN_RATES)):
        specs.append(ExperimentSpec(
            experiment="EXP-CHURN", protocol=c["protocol"],
            topology="random", topo_params=topo,
            scheduler=c["scheduler"], init="arbitrary",
            init_params={"seed": 36}, max_rounds=200_000,
            events={"kind": c["kind"], "waves": c["waves"], "check": 1}))
    # one traced row: the v2 event-row plumbing exercised end to end
    specs.append(ExperimentSpec(
        experiment="EXP-CHURN", protocol="sst",
        topology="random", topo_params=topo,
        scheduler="central-random", init="arbitrary",
        init_params={"seed": 36}, max_rounds=200_000, trace=1,
        events={"kind": "mixed", "waves": 3, "check": 1}))
    return Campaign("churn", "super-stabilization under topology churn",
                    tuple(specs), root_seed)


def churn_smoke(root_seed: int = 0) -> Campaign:
    """The CI-sized corner of :func:`churn`: every protocol, two daemons,
    two schedule kinds, single-wave, one traced row — enough to exercise
    the dynamics engine, the rescan proof obligation (``check=1``), and
    the trace-v2 event rows inside the smoke budget."""
    topo = {"n": 12, "seed": 11, "headroom": 3}
    specs = []
    for c in grid(protocol=list(_CHURN_PROTOCOLS),
                  scheduler=["synchronous", "central-random"],
                  kind=["edge-flip", "crash-join"]):
        specs.append(ExperimentSpec(
            experiment="EXP-CHURN", protocol=c["protocol"],
            topology="random", topo_params=topo,
            scheduler=c["scheduler"], init="arbitrary",
            init_params={"seed": 36}, max_rounds=200_000,
            events={"kind": c["kind"], "waves": 2, "check": 1}))
    specs.append(ExperimentSpec(
        experiment="EXP-CHURN", protocol="sst",
        topology="random", topo_params=topo,
        scheduler="central-random", init="arbitrary",
        init_params={"seed": 36}, max_rounds=200_000, trace=1,
        events={"kind": "mixed", "waves": 2, "check": 1}))
    return Campaign("churn-smoke", "churn smoke grid", tuple(specs),
                    root_seed)


def full(root_seed: int = 0) -> Campaign:
    """Every campaign above, in one sweep."""
    parts = [schedulers, silence, bfs, mst, mdst, nca, structure, engine,
             certification]
    specs: list[ExperimentSpec] = []
    for part in parts:
        specs.extend(part(root_seed).specs)
    return Campaign("full", "all experiment families", tuple(specs),
                    root_seed)


CAMPAIGNS: dict[str, Callable[..., Campaign]] = {
    "smoke": smoke,
    "engine": engine,
    "schedulers": schedulers,
    "silence": silence,
    "bfs": bfs,
    "mst": mst,
    "mdst": mdst,
    "nca": nca,
    "structure": structure,
    "certification": certification,
    "churn": churn,
    "churn-smoke": churn_smoke,
    "scale": scale,
    "full": full,
}


def experiment_subset(campaign: Campaign, experiment: str) -> Campaign:
    """The sub-campaign holding one experiment family.

    Fingerprints depend only on (spec, root seed), so a subset shares its
    parent's store entries — a bench can run just its own family against
    the store a full campaign already filled.
    """
    specs = tuple(s for s in campaign.specs if s.experiment == experiment)
    if not specs:
        raise KeyError(f"campaign {campaign.name!r} has no specs for "
                       f"{experiment!r}")
    return Campaign(f"{campaign.name}:{experiment}", campaign.title, specs,
                    campaign.root_seed)


def get_campaign(name: str, root_seed: int = 0) -> Campaign:
    if name not in CAMPAIGNS:
        raise KeyError(
            f"unknown campaign {name!r} "
            f"(known: {', '.join(sorted(CAMPAIGNS))})")
    return CAMPAIGNS[name](root_seed)

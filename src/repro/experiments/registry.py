"""Registries mapping spec keys to runnable objects.

The campaign model (:mod:`repro.experiments.spec`) is plain data; this
module is the single place where its string keys resolve to protocols,
topology generators, initial-configuration strategies and analysis
workloads.  Adding a workload = adding a registry entry; campaigns and the
CLI pick it up by name.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.core import bfs_tree, dfs_tree, random_spanning_tree
from repro.core.bfs import BFSPotential
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.graphs import generators
from repro.graphs.network import Network
from repro.runtime import random_configuration
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import ALL_SCHEDULER_FACTORIES
from repro.runtime.simulator import Config, Simulator

__all__ = [
    "ProtocolEntry",
    "PROTOCOLS",
    "TOPOLOGIES",
    "INITS",
    "SCHEDULERS",
    "build_network",
    "build_protocol",
    "build_config",
    "tree_seeded_config",
]


# ----------------------------------------------------------------------
# topologies
# ----------------------------------------------------------------------

TOPOLOGIES: dict[str, Callable[..., Network]] = {
    "ring": generators.ring,
    "path": generators.path_graph,
    "complete": generators.complete_graph,
    "star": generators.star_graph,
    "wheel": generators.wheel_graph,
    "grid": generators.grid_graph,
    "random": generators.random_connected_graph,
    "random-tree": generators.random_tree_graph,
    "lollipop": generators.lollipop_graph,
    "caterpillar": generators.caterpillar_graph,
    "hypercube": generators.hypercube_graph,
    "theta": generators.theta_graph,
}


def build_network(topology: str, params: Mapping[str, object],
                  rng: random.Random) -> Network:
    """Instantiate a topology.  Campaign specs usually pin an explicit
    ``seed`` in their params (a topology is part of the experiment's
    identity); when they do not, the run's derived topology stream is
    injected so parallel workers never share RNG state.

    ``headroom`` (not a generator kwarg) widens the instance's
    ``n_bound`` and ``id_space`` by that many slots above the built
    size — the room node-join churn events grow into (the bounds stay
    incorruptible constants; they are simply declared larger up front).
    """
    if topology not in TOPOLOGIES:
        raise KeyError(
            f"unknown topology {topology!r} "
            f"(known: {', '.join(sorted(TOPOLOGIES))})")
    kwargs = dict(params)
    headroom = int(kwargs.pop("headroom", 0) or 0)
    if headroom < 0:
        raise ValueError(f"headroom must be >= 0, got {headroom}")
    if "seed" not in kwargs:
        kwargs["rng"] = rng
    net = TOPOLOGIES[topology](**kwargs)
    if not headroom:
        return net
    return Network(net.nodes, net.edges,
                   weights=net.weights if net.weighted else None,
                   id_space=net.id_space + headroom,
                   n_bound=net.n + headroom)


# ----------------------------------------------------------------------
# protocols
# ----------------------------------------------------------------------

def _make_sst() -> Protocol:
    from repro.core.sst import SpanningTreeProtocol
    return SpanningTreeProtocol()


def _make_malleable() -> Protocol:
    return MalleableTreeProtocol()


def _make_guided_bfs() -> Protocol:
    from repro.core.tasks import guided_bfs_protocol
    return guided_bfs_protocol()


def _make_guided_mst() -> Protocol:
    from repro.core.tasks import guided_mst_protocol
    return guided_mst_protocol()


def _make_guided_mdst() -> Protocol:
    from repro.core.tasks import guided_mdst_protocol
    return guided_mdst_protocol()


def _make_nca_build() -> Protocol:
    from repro.core.tasks import NCALabelLayer
    from repro.runtime.protocol import ComposedProtocol
    return ComposedProtocol([MalleableTreeProtocol(), NCALabelLayer()],
                            name="tree+nca")


def _make_adhoc_bfs() -> Protocol:
    from repro.baselines.dim_bfs import AdHocBFSProtocol
    return AdHocBFSProtocol()


def _make_compact_mst() -> Protocol:
    from repro.baselines.compact_mst import CompactNonSilentMST
    return CompactNonSilentMST()


def _make_bgr_mdst() -> Protocol:
    from repro.baselines.bgr_mdst import BigMemoryMDST
    return BigMemoryMDST()


def _bfs_metrics(net: Network, proto: Protocol, sim: Simulator,
                 context: Mapping[str, object]) -> dict[str, object]:
    out: dict[str, object] = {}
    start = context.get("start_tree")
    if start is not None:
        out["phi_start"] = BFSPotential().value(net, start)
    return out


def _mst_metrics(net: Network, proto: Protocol, sim: Simulator,
                 context: Mapping[str, object]) -> dict[str, object]:
    from repro.labeling.mst_pls import MSTPLS
    try:
        tree = tree_of_config(net, sim.config)
    except ValueError:
        return {}
    pls = MSTPLS()
    return {
        "cert_bits": pls.max_label_bits(net, pls.prove(net, tree)),
        "tree_weight": tree.total_weight(),
    }


def _mdst_metrics(net: Network, proto: Protocol, sim: Simulator,
                  context: Mapping[str, object]) -> dict[str, object]:
    from repro.baselines import exact_minimum_degree
    from repro.core.fr import fr_marking
    from repro.labeling.fr_pls import FRTreePLS
    try:
        tree = tree_of_config(net, sim.config)
    except ValueError:
        return {}
    marking = fr_marking(net, tree)
    out: dict[str, object] = {
        "tree_degree": tree.max_degree(),
        "is_fr": marking.is_fr,
        "cert_bits": FRTreePLS().max_label_bits(
            net, FRTreePLS().prove(net, tree, marking)),
    }
    if net.n <= 16:  # the exact oracle is exponential; campaigns stay small
        out["opt_degree"] = exact_minimum_degree(net)
    return out


def _nca_build_metrics(net: Network, proto: Protocol, sim: Simulator,
                       context: Mapping[str, object]) -> dict[str, object]:
    from repro.core.tasks import NCALabelLayer
    start = context.get("start_tree")
    if start is None:
        try:
            start = tree_of_config(net, sim.config)
        except ValueError:
            return {"labels_ok": False}
    return {"labels_ok": NCALabelLayer.labels_ok(net, sim.config, start)}


@dataclass(frozen=True)
class ProtocolEntry:
    """A runnable protocol plus its task-specific measurement hooks.

    ``extra_metrics(net, proto, sim, context) -> dict`` runs after the
    simulation and may add task-level columns (certificate bits, tree
    degree, potential of the start tree, ...) to the run record; it must
    return JSON-plain values.  ``certifier`` names the task's
    :mod:`repro.certify` local-certification scheme; when set, every run
    records ``locally_certified`` — whether the final configuration,
    decorated by the certificate assigner, is accepted by every node's
    neighborhood-only verifier.
    """

    factory: Callable[[], Protocol]
    extra_metrics: Callable[..., dict[str, object]] | None = None
    certifier: str | None = None


PROTOCOLS: dict[str, ProtocolEntry] = {
    "sst": ProtocolEntry(_make_sst, certifier="sst"),
    "malleable-tree": ProtocolEntry(_make_malleable),
    "guided-bfs": ProtocolEntry(_make_guided_bfs, _bfs_metrics,
                                certifier="guided-bfs"),
    "guided-mst": ProtocolEntry(_make_guided_mst, _mst_metrics,
                                certifier="guided-mst"),
    "guided-mdst": ProtocolEntry(_make_guided_mdst, _mdst_metrics,
                                 certifier="guided-mdst"),
    "nca-build": ProtocolEntry(_make_nca_build, _nca_build_metrics,
                               certifier="nca-build"),
    # the ad hoc baseline shares SST's registers, so SST's certificate
    # scheme certifies its stabilized configurations too
    "adhoc-bfs": ProtocolEntry(_make_adhoc_bfs, certifier="sst"),
    "compact-mst": ProtocolEntry(_make_compact_mst),
    "bgr-mdst": ProtocolEntry(_make_bgr_mdst),
}


def build_protocol(name: str) -> tuple[Protocol, ProtocolEntry]:
    if name not in PROTOCOLS:
        raise KeyError(
            f"unknown protocol {name!r} "
            f"(known: {', '.join(sorted(PROTOCOLS))})")
    entry = PROTOCOLS[name]
    return entry.factory(), entry


# ----------------------------------------------------------------------
# initial configurations
# ----------------------------------------------------------------------

def tree_seeded_config(net: Network, proto: Protocol, tree) -> Config:
    """A configuration whose tree layer is legal on ``tree`` with task-layer
    defaults — the standard starting point for improvement measurements
    (formerly ``benchmarks/conftest.seeded_config``)."""
    base = MalleableTreeProtocol().legal_configuration(net, tree)
    cfg = proto.initial_configuration(net)
    for v in net.nodes:
        cfg[v].update(base[v])
    return cfg


def _init_defaults(net, proto, rng, params):
    return None, {}


def _init_arbitrary(net, proto, rng, params):
    if "seed" in params:
        rng = random.Random(params["seed"])
    return random_configuration(net, proto, rng=rng), {}


def _init_dfs_tree(net, proto, rng, params):
    tree = dfs_tree(net)
    return tree_seeded_config(net, proto, tree), {"start_tree": tree}


def _init_bfs_tree(net, proto, rng, params):
    tree = bfs_tree(net, root=params.get("root", net.min_id))
    return tree_seeded_config(net, proto, tree), {"start_tree": tree}


def _init_random_tree(net, proto, rng, params):
    seed = params.get("seed", rng.randrange(2 ** 31))
    tree = random_spanning_tree(net, seed=seed,
                                root=params.get("root", net.min_id))
    return tree_seeded_config(net, proto, tree), {"start_tree": tree}


#: ``fn(net, proto, rng, params) -> (config | None, context)`` — None means
#: "use the protocol's all-defaults configuration".
INITS: dict[str, Callable[..., tuple[Config | None, dict[str, object]]]] = {
    "defaults": _init_defaults,
    "arbitrary": _init_arbitrary,
    "dfs-tree": _init_dfs_tree,
    "bfs-tree": _init_bfs_tree,
    "random-tree": _init_random_tree,
}


def build_config(init: str, net: Network, proto: Protocol,
                 rng: random.Random, params: Mapping[str, object]):
    if init not in INITS:
        raise KeyError(
            f"unknown init {init!r} (known: {', '.join(sorted(INITS))})")
    return INITS[init](net, proto, rng, dict(params))


# ----------------------------------------------------------------------
# schedulers (delegated to the runtime's canonical factory table)
# ----------------------------------------------------------------------

SCHEDULERS = ALL_SCHEDULER_FACTORIES

"""The communication network of the state model (Section II-A of the paper).

A :class:`Network` is a simple connected graph ``G = (V, E)`` whose nodes are
processes.  Following the paper:

* every node has a distinct, incorruptible identity ``ID(v)`` drawn from
  ``{1, ..., n^c}`` for a constant ``c >= 1``;
* in weighted instances, every node knows the (incorruptible, pairwise
  distinct) weights of its incident edges, each storable on O(log n) bits;
* nodes communicate only with their neighbors, by reading their registers.

The class is deliberately immutable: protocols never mutate the graph, they
only read it.  Trees under construction live in node *registers*, not here.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Mapping

from repro._bits import bits_for_id, bits_for_weight

__all__ = ["Network", "UWEdge"]


def UWEdge(u: int, v: int) -> tuple[int, int]:
    """Canonical (sorted) form of an undirected edge ``{u, v}``."""
    return (u, v) if u <= v else (v, u)


class Network:
    """An immutable simple connected graph with identities and edge weights.

    Parameters
    ----------
    node_ids:
        Distinct positive node identities.
    edges:
        Iterable of undirected edges ``(u, v)`` between identities.
    weights:
        Optional mapping from canonical edges to pairwise-distinct positive
        weights.  When omitted the network is unweighted; protocols that
        need weights raise if asked for one.
    id_space:
        Upper bound of the identity space ``{1, ..., id_space}``; defaults to
        ``n**2`` (the paper's ``n^c`` with ``c = 2``), raised to
        ``max(node_ids)`` if identities exceed it.
    n_bound:
        Public upper bound N >= n on the network size, known to every node
        (used to bound distance/size counters; the classical assumption for
        flushing fake roots).  Defaults to ``n``.
    check_connected:
        When True (the default) the constructor rejects disconnected
        graphs, per the paper's model.  Shard-local subgraphs (a shard's
        owned nodes plus their 1-hop halo) may legitimately be
        disconnected; the sharding runtime passes False and carries the
        *global* ``id_space``/``n_bound`` so rule semantics are unchanged.
    """

    __slots__ = (
        "_nodes",
        "_edges",
        "_adj",
        "_adj_sets",
        "_weights",
        "_id_space",
        "_n_bound",
        "_edge_set_cache",
    )

    def __init__(
        self,
        node_ids: Iterable[int],
        edges: Iterable[tuple[int, int]],
        weights: Mapping[tuple[int, int], int] | None = None,
        id_space: int | None = None,
        n_bound: int | None = None,
        check_connected: bool = True,
    ) -> None:
        self._nodes: tuple[int, ...] = tuple(sorted(node_ids))
        if len(set(self._nodes)) != len(self._nodes):
            raise ValueError("node identities must be distinct")
        if any(i <= 0 for i in self._nodes):
            raise ValueError("node identities must be positive")
        node_set = set(self._nodes)

        canon: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u}")
            if u not in node_set or v not in node_set:
                raise ValueError(f"edge ({u}, {v}) uses an unknown node id")
            canon.add(UWEdge(u, v))
        self._edges: tuple[tuple[int, int], ...] = tuple(sorted(canon))

        # precomputed neighbor arrays: sorted tuples (deterministic
        # iteration order) plus frozensets (O(1) membership), both built
        # eagerly — the engine's hot loops index these mappings directly
        adj_build: dict[int, list[int]] = {u: [] for u in self._nodes}
        for u, v in self._edges:
            adj_build[u].append(v)
            adj_build[v].append(u)
        self._adj: dict[int, tuple[int, ...]] = {
            u: tuple(sorted(adj_build[u])) for u in self._nodes}
        self._adj_sets: dict[int, frozenset[int]] = {
            u: frozenset(nbrs) for u, nbrs in self._adj.items()}

        self._weights: dict[tuple[int, int], int] | None = None
        if weights is not None:
            w = {UWEdge(u, v): int(wt) for (u, v), wt in weights.items()}
            missing = set(self._edges) - set(w)
            if missing:
                raise ValueError(f"missing weights for edges: {sorted(missing)}")
            if len(set(w.values())) != len(w):
                raise ValueError("edge weights must be pairwise distinct")
            if any(wt <= 0 for wt in w.values()):
                raise ValueError("edge weights must be positive")
            self._weights = {e: w[e] for e in self._edges}

        n = len(self._nodes)
        default_space = max(n * n, max(self._nodes, default=1))
        self._id_space = max(id_space or default_space, max(self._nodes, default=1))
        self._n_bound = n_bound if n_bound is not None else n
        if self._n_bound < n:
            raise ValueError(f"n_bound {self._n_bound} smaller than n = {n}")

        if not self._nodes:
            raise ValueError("network must have at least one node")
        if check_connected:
            self._check_connected()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[int, ...]:
        """All node identities, sorted ascending."""
        return self._nodes

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """All canonical undirected edges, sorted."""
        return self._edges

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def id_space(self) -> int:
        """Size of the identity space {1, ..., id_space}."""
        return self._id_space

    @property
    def n_bound(self) -> int:
        """Public upper bound N >= n known to all nodes."""
        return self._n_bound

    @property
    def weighted(self) -> bool:
        return self._weights is not None

    @property
    def min_id(self) -> int:
        """The smallest identity (the eventual elected root)."""
        return self._nodes[0]

    def neighbors(self, u: int) -> tuple[int, ...]:
        """Sorted neighbor identities of ``u``."""
        return self._adj[u]

    def neighbor_set(self, u: int) -> frozenset[int]:
        """Neighbor identities of ``u`` as a frozenset (O(1) membership).

        Precomputed at construction; the engine's hot path uses this for
        neighbor-validation instead of scanning the sorted tuple.
        """
        return self._adj_sets[u]

    @property
    def adjacency(self) -> Mapping[int, tuple[int, ...]]:
        """The precomputed node -> sorted-neighbor-tuple mapping.

        Engine-facing: indexing this mapping is a single C-level dict
        lookup, with no method-call frame.  Treat as read-only.
        """
        return self._adj

    @property
    def adjacency_sets(self) -> Mapping[int, frozenset[int]]:
        """The precomputed node -> neighbor-frozenset mapping (read-only)."""
        return self._adj_sets

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def max_degree(self) -> int:
        return max(len(self._adj[u]) for u in self._nodes)

    def has_edge(self, u: int, v: int) -> bool:
        return UWEdge(u, v) in self._edge_set()

    def weight(self, u: int, v: int) -> int:
        """Weight of edge {u, v}; raises on unweighted networks."""
        if self._weights is None:
            raise ValueError("network is unweighted")
        e = UWEdge(u, v)
        if e not in self._weights:
            raise KeyError(f"no edge {e}")
        return self._weights[e]

    def weight_of(self, edge: tuple[int, int]) -> int:
        return self.weight(edge[0], edge[1])

    @property
    def weights(self) -> dict[tuple[int, int], int]:
        if self._weights is None:
            raise ValueError("network is unweighted")
        return dict(self._weights)

    def weight_space(self) -> int:
        """Upper bound of the weight domain (for bit accounting)."""
        if self._weights is None:
            return 1
        return max(self._weights.values())

    # ------------------------------------------------------------------
    # bit accounting for incorruptible constants
    # ------------------------------------------------------------------

    def id_bits(self) -> int:
        """Bits for one identity (register fields storing ids cost this)."""
        return bits_for_id(self._id_space)

    def weight_bits(self) -> int:
        """Bits for one edge weight."""
        return bits_for_weight(self.weight_space())

    # ------------------------------------------------------------------
    # graph algorithms used by oracles and verifiers (not by protocols)
    # ------------------------------------------------------------------

    def bfs_distances(self, source: int) -> dict[int, int]:
        """Hop distances from ``source`` to every node."""
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        return dist

    def eccentricity(self, source: int) -> int:
        return max(self.bfs_distances(source).values())

    def diameter(self) -> int:
        return max(self.eccentricity(u) for u in self._nodes)

    def is_connected_subset(self, subset: Iterable[int]) -> bool:
        """Whether the induced subgraph on ``subset`` is connected."""
        sub = set(subset)
        if not sub:
            return True
        start = next(iter(sub))
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v in sub and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen == sub

    def edges_incident(self, u: int) -> Iterator[tuple[int, int]]:
        for v in self._adj[u]:
            yield UWEdge(u, v)

    def total_weight(self, edges: Iterable[tuple[int, int]]) -> int:
        return sum(self.weight_of(e) for e in edges)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _edge_set(self) -> set[tuple[int, int]]:
        cached = getattr(self, "_edge_set_cache", None)
        if cached is None:
            cached = set(self._edges)
            self._edge_set_cache = cached
        return cached

    def _check_connected(self) -> None:
        if not self._nodes:
            raise ValueError("network must have at least one node")
        seen = {self._nodes[0]}
        stack = [self._nodes[0]]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        if len(seen) != len(self._nodes):
            raise ValueError("network must be connected")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "weighted" if self.weighted else "unweighted"
        return f"Network(n={self.n}, m={self.m}, {kind})"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def with_distinct_weights(
        node_ids: Iterable[int],
        edges: Iterable[tuple[int, int]],
        rng=None,
        scale: int = 1,
        **kwargs,
    ) -> "Network":
        """Build a weighted network with random distinct weights.

        Weights are a random permutation of ``{1, ..., m}`` (shuffled when
        ``rng`` is given), so they are pairwise distinct *by construction*,
        matching the paper's w.l.o.g. distinct-weights assumption.  Every
        weight is multiplied by ``scale`` (default 1), which lets tests
        widen the weight domain without ever introducing ties.
        """
        if not isinstance(scale, int) or scale < 1:
            raise ValueError(f"scale must be a positive integer, got {scale!r}")
        edge_list = sorted({UWEdge(u, v) for u, v in edges})
        m = len(edge_list)
        perm = list(range(1, m + 1))
        if rng is not None:
            rng.shuffle(perm)
        weights = {e: w * scale for e, w in zip(edge_list, perm)}
        return Network(node_ids, edge_list, weights=weights, **kwargs)

    def reweighted(self, weights: Mapping[tuple[int, int], int]) -> "Network":
        """Same topology with new distinct weights."""
        return Network(
            self._nodes,
            self._edges,
            weights=weights,
            id_space=self._id_space,
            n_bound=self._n_bound,
        )

    @staticmethod
    def from_adjacency(adj: Mapping[int, Iterable[int]], **kwargs) -> "Network":
        edges = set()
        for u, nbrs in adj.items():
            for v in nbrs:
                edges.add(UWEdge(u, v))
        return Network(adj.keys(), edges, **kwargs)

    def spanning_edge_count(self) -> int:
        return self.n - 1

    def non_edges(self) -> Iterator[tuple[int, int]]:
        """All node pairs that are *not* edges (useful for tests)."""
        es = self._edge_set()
        for u, v in itertools.combinations(self._nodes, 2):
            if (u, v) not in es:
                yield (u, v)

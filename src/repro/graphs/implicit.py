"""Implicit (lazy) topologies for sharded large-n simulation.

A :class:`Network` materializes every adjacency list eagerly — the right
trade for the single-process engine, but at n = 10^5–10^6 the whole-graph
heap is exactly what ROADMAP item 2 says must never exist.  An
:class:`ImplicitTopology` describes a structured graph *by formula*: node
identities are ``1..n``, ``neighbors(v)`` is computed on demand, and the
only O(n) allocations ever made are the per-shard subgraphs cut out by
:func:`shard_network` (owned nodes + their 1-hop halo).

Implicit topologies deliberately mirror the :class:`Network` read surface
that the partitioner and the sharding runtime need — ``nodes`` (an
iterator here), ``n``, ``neighbors``, ``id_space``, ``n_bound`` — so both
accept either form.  ``materialize()`` builds the equivalent eager
:class:`Network` for small-n equivalence tests.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.graphs.network import Network

__all__ = ["ImplicitTopology", "IMPLICIT_TOPOLOGIES", "implicit_ring",
           "implicit_grid", "implicit_hypercube", "build_topology",
           "shard_network"]


class ImplicitTopology:
    """A structured graph defined by a neighbor formula over ids ``1..n``.

    Identities are the contiguous range ``1..n`` (no scrambling: at the
    scale this class exists for, the id permutation itself would be the
    O(n) heap we are avoiding).  ``id_space`` defaults to ``n**2``,
    matching the paper's ``n^c`` with ``c = 2``, and ``n_bound`` to ``n``
    — the same constants an eager generator would bake in.
    """

    __slots__ = ("kind", "params", "_n", "_nbrs", "_id_space", "_n_bound")

    def __init__(self, kind: str, params: dict[str, int], n: int,
                 nbrs: Callable[[int], tuple[int, ...]],
                 id_space: int | None = None,
                 n_bound: int | None = None) -> None:
        if n < 1:
            raise ValueError("implicit topology needs at least one node")
        self.kind = kind
        self.params = dict(params)
        self._n = n
        self._nbrs = nbrs
        self._id_space = id_space if id_space is not None else n * n
        self._n_bound = n_bound if n_bound is not None else n

    # -- the Network-compatible read surface ---------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def nodes(self) -> Iterator[int]:
        """All identities ``1..n`` — an iterator, never a materialized list."""
        return iter(range(1, self._n + 1))

    @property
    def id_space(self) -> int:
        return self._id_space

    @property
    def n_bound(self) -> int:
        return self._n_bound

    @property
    def weighted(self) -> bool:
        return False

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted neighbor identities of ``v``, computed on demand."""
        return self._nbrs(v)

    def degree(self, v: int) -> int:
        return len(self._nbrs(v))

    @property
    def m(self) -> int:
        """Edge count, by the handshake sum (O(n) time, O(1) space)."""
        return sum(len(self._nbrs(v)) for v in self.nodes) // 2

    def materialize(self) -> Network:
        """The equivalent eager :class:`Network` (small n only)."""
        edges = [(v, u) for v in self.nodes for u in self._nbrs(v) if v < u]
        return Network(range(1, self._n + 1), edges,
                       id_space=self._id_space, n_bound=self._n_bound)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"ImplicitTopology({self.kind}:{args}, n={self._n})"


def implicit_ring(n: int) -> ImplicitTopology:
    """The cycle C_n over ids ``1..n``."""
    if n < 3:
        raise ValueError("ring needs n >= 3")

    def nbrs(v: int, _n: int = n) -> tuple[int, ...]:
        prev = _n if v == 1 else v - 1
        nxt = 1 if v == _n else v + 1
        return (prev, nxt) if prev < nxt else (nxt, prev)

    return ImplicitTopology("ring", {"n": n}, n, nbrs)


def implicit_grid(rows: int, cols: int) -> ImplicitTopology:
    """The rows x cols grid, row-major ids ``1..rows*cols``."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid needs at least two nodes")

    def nbrs(v: int, _r: int = rows, _c: int = cols) -> tuple[int, ...]:
        i, j = divmod(v - 1, _c)
        out = []
        if i > 0:
            out.append(v - _c)
        if j > 0:
            out.append(v - 1)
        if j < _c - 1:
            out.append(v + 1)
        if i < _r - 1:
            out.append(v + _c)
        return tuple(out)

    return ImplicitTopology("grid", {"rows": rows, "cols": cols},
                            rows * cols, nbrs)


def implicit_hypercube(dim: int) -> ImplicitTopology:
    """The dim-dimensional hypercube over ids ``1..2**dim``."""
    if dim < 1:
        raise ValueError("hypercube needs dim >= 1")
    n = 1 << dim

    def nbrs(v: int, _dim: int = dim) -> tuple[int, ...]:
        return tuple(sorted(((v - 1) ^ (1 << b)) + 1 for b in range(_dim)))

    return ImplicitTopology("hypercube", {"dim": dim}, n, nbrs)


#: name -> builder, mirroring ``repro.experiments.registry.TOPOLOGIES``
#: for the lazy family.  Campaign/bench specs address these as
#: ``implicit-<kind>`` to make the no-whole-heap contract explicit.
IMPLICIT_TOPOLOGIES: dict[str, Callable[..., ImplicitTopology]] = {
    "implicit-ring": implicit_ring,
    "implicit-grid": implicit_grid,
    "implicit-hypercube": implicit_hypercube,
}


def build_topology(name: str, params: dict[str, int]) -> ImplicitTopology:
    """Build a registered implicit topology from name + keyword params."""
    try:
        builder = IMPLICIT_TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown implicit topology {name!r}; "
            f"known: {sorted(IMPLICIT_TOPOLOGIES)}") from None
    try:
        return builder(**params)
    except TypeError as exc:
        # missing/unexpected keywords surface as spec errors, not
        # call-signature tracebacks (the CLI catches ValueError)
        raise ValueError(f"{name}: {exc}") from None


def shard_network(topo, owned: tuple[int, ...]) -> tuple[Network, tuple[int, ...]]:
    """Cut the shard-local subgraph around ``owned`` out of ``topo``.

    ``topo`` is either a :class:`Network` or an :class:`ImplicitTopology`.
    The result contains the owned nodes, their 1-hop halo, and every edge
    incident to an owned node (halo-halo edges are dropped: a halo node's
    register is only ever *read* by owned rules, never evaluated for its
    own transition).  The subgraph keeps the **global** ``id_space`` and
    ``n_bound`` and skips the connectivity check — a shard's cut may be
    disconnected even when the global graph is not.

    Returns ``(net, halo)`` with ``halo`` sorted ascending.
    """
    owned_set = frozenset(owned)
    halo_set: set[int] = set()
    edges: list[tuple[int, int]] = []
    for v in owned:
        for u in topo.neighbors(v):
            edges.append((v, u))
            if u not in owned_set:
                halo_set.add(u)
    halo = tuple(sorted(halo_set))
    weights = None
    if topo.weighted:
        from repro.graphs.network import UWEdge
        weights = {UWEdge(v, u): topo.weight(v, u) for v, u in edges}
    net = Network(tuple(owned) + halo, edges, weights=weights,
                  id_space=topo.id_space, n_bound=topo.n_bound,
                  check_connected=False)
    return net, halo

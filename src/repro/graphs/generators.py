"""Seeded topology generators.

Every generator returns a :class:`~repro.graphs.network.Network`.  Identities
are *scrambled* (a random injection into {1, ..., n^2}) so that protocols can
never rely on identities being 1..n or on the root having a particular
position; the paper only guarantees distinct ids in {1, ..., n^c}.

All generators accept ``seed`` for reproducibility and ``weighted`` to attach
pairwise-distinct random weights (needed by MST instances).  Alternatively an
explicit ``rng`` (a :class:`random.Random`) may be passed, which takes
precedence over ``seed`` and is consumed as a stream — the supported way for
parallel experiment workers to generate topologies without ever touching
shared module-level RNG state.  The ``seed`` path draws exactly the same
values it always did, so historical instances are unchanged.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graphs.network import Network, UWEdge

__all__ = [
    "ring",
    "path_graph",
    "complete_graph",
    "grid_graph",
    "random_connected_graph",
    "random_tree_graph",
    "lollipop_graph",
    "caterpillar_graph",
    "star_graph",
    "hypercube_graph",
    "theta_graph",
    "wheel_graph",
]


def _scrambled_ids(n: int, rng: random.Random, scramble: bool) -> list[int]:
    """Distinct identities for n nodes, optionally scrambled in {1..n^2}."""
    if not scramble:
        return list(range(1, n + 1))
    space = max(n * n, n + 1)
    return rng.sample(range(1, space + 1), n)


def _build(
    n: int,
    index_edges: Sequence[tuple[int, int]],
    seed: int | None,
    weighted: bool,
    scramble_ids: bool,
    n_bound: int | None = None,
    rng: random.Random | None = None,
) -> Network:
    if rng is None:
        rng = random.Random(seed)
    ids = _scrambled_ids(n, rng, scramble_ids)
    edges = [UWEdge(ids[a], ids[b]) for a, b in index_edges]
    if weighted:
        return Network.with_distinct_weights(ids, edges, rng=rng, n_bound=n_bound)
    return Network(ids, edges, n_bound=n_bound)


def ring(n: int, seed: int | None = 0, weighted: bool = False,
         scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Cycle C_n."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def path_graph(n: int, seed: int | None = 0, weighted: bool = False,
               scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Path P_n."""
    if n < 1:
        raise ValueError("path needs n >= 1")
    edges = [(i, i + 1) for i in range(n - 1)]
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def complete_graph(n: int, seed: int | None = 0, weighted: bool = False,
                   scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Clique K_n."""
    if n < 1:
        raise ValueError("complete graph needs n >= 1")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def star_graph(n: int, seed: int | None = 0, weighted: bool = False,
               scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Star K_{1,n-1}: node 0 is the hub."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    edges = [(0, i) for i in range(1, n)]
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def wheel_graph(n: int, seed: int | None = 0, weighted: bool = False,
                scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Wheel: hub 0 plus cycle on the other n-1 nodes."""
    if n < 4:
        raise ValueError("wheel needs n >= 4")
    rim = list(range(1, n))
    edges = [(0, i) for i in rim]
    edges += [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def grid_graph(rows: int, cols: int, seed: int | None = 0, weighted: bool = False,
               scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """rows x cols grid."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs rows, cols >= 1")
    n = rows * cols

    def idx(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((idx(r, c), idx(r, c + 1)))
            if r + 1 < rows:
                edges.append((idx(r, c), idx(r + 1, c)))
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def random_tree_graph(n: int, seed: int | None = 0, weighted: bool = False,
                      scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Uniform random labeled tree (random Prüfer-like attachment)."""
    if n < 1:
        raise ValueError("tree needs n >= 1")
    # the seed path keeps its historical two-stream structure (one Random
    # for the shape, a fresh Random(seed) inside _build for ids/weights);
    # an injected rng is consumed as one continuous stream instead
    r = rng if rng is not None else random.Random(seed)
    edges = [(i, r.randrange(i)) for i in range(1, n)]
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def random_connected_graph(n: int, extra_edges: int | None = None,
                           seed: int | None = 0, weighted: bool = False,
                           scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Random connected graph: random spanning tree plus extra random edges.

    ``extra_edges`` defaults to ``n`` (average degree ~4), capped at the
    number of available non-tree pairs.
    """
    if n < 1:
        raise ValueError("graph needs n >= 1")
    # see random_tree_graph for the seed-path / rng-path stream structure
    r = rng if rng is not None else random.Random(seed)
    edges = {UWEdge(i, r.randrange(i)) for i in range(1, n)}
    want = n if extra_edges is None else extra_edges
    max_extra = n * (n - 1) // 2 - len(edges)
    want = min(want, max_extra)
    while want > 0:
        u = r.randrange(n)
        v = r.randrange(n)
        if u == v:
            continue
        e = UWEdge(u, v)
        if e in edges:
            continue
        edges.add(e)
        want -= 1
    return _build(n, sorted(edges), seed, weighted, scramble_ids, rng=rng)


def lollipop_graph(clique_size: int, tail_len: int, seed: int | None = 0,
                   weighted: bool = False, scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Clique with a path tail: stresses eccentric roots and long relabel waves."""
    if clique_size < 3 or tail_len < 1:
        raise ValueError("lollipop needs clique_size >= 3 and tail_len >= 1")
    n = clique_size + tail_len
    edges = [(i, j) for i in range(clique_size) for j in range(i + 1, clique_size)]
    edges.append((clique_size - 1, clique_size))
    edges += [(clique_size + i, clique_size + i + 1) for i in range(tail_len - 1)]
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def caterpillar_graph(spine: int, legs_per_node: int, seed: int | None = 0,
                      weighted: bool = False, scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Spine path with pendant legs: worst-case-ish for heavy-path labelings."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("caterpillar needs spine >= 1 and legs_per_node >= 0")
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, nxt))
            nxt += 1
    return _build(nxt, edges, seed, weighted, scramble_ids, rng=rng)


def hypercube_graph(dim: int, seed: int | None = 0, weighted: bool = False,
                    scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """d-dimensional hypercube (n = 2^d)."""
    if dim < 1:
        raise ValueError("hypercube needs dim >= 1")
    n = 1 << dim
    edges = []
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                edges.append((u, v))
    return _build(n, edges, seed, weighted, scramble_ids, rng=rng)


def theta_graph(arm_lengths: Sequence[int], seed: int | None = 0,
                weighted: bool = False, scramble_ids: bool = True,
           rng: random.Random | None = None) -> Network:
    """Two hub nodes joined by parallel internally-disjoint paths.

    A classic source of many distinct fundamental cycles sharing edges;
    useful for exercising the cycle-membership predicate.
    """
    if len(arm_lengths) < 2 or any(a < 1 for a in arm_lengths):
        raise ValueError("theta graph needs >= 2 arms of length >= 1")
    # node 0 and 1 are the hubs; each arm of length L has L-1 internal nodes.
    edges: list[tuple[int, int]] = []
    nxt = 2
    for length in arm_lengths:
        prev = 0
        for _ in range(length - 1):
            edges.append((prev, nxt))
            prev = nxt
            nxt += 1
        edges.append((prev, 1))
    # arms of length 1 would create parallel (0,1) edges; the set in Network
    # collapses them, so require at most one such arm.
    if sum(1 for a in arm_lengths if a == 1) > 1:
        raise ValueError("at most one arm of length 1 (no parallel edges)")
    return _build(nxt, edges, seed, weighted, scramble_ids, rng=rng)

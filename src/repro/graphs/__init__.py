"""Network graphs for the state-model simulator.

:class:`~repro.graphs.network.Network` is the immutable communication graph
(node identities, adjacency, distinct edge weights) on which every protocol
in this package runs.  :mod:`repro.graphs.generators` provides seeded
topology families used throughout the tests and benchmarks.
"""

from repro.graphs.network import Network, UWEdge
from repro.graphs.generators import (
    ring,
    path_graph,
    complete_graph,
    grid_graph,
    random_connected_graph,
    random_tree_graph,
    lollipop_graph,
    caterpillar_graph,
    star_graph,
    hypercube_graph,
    theta_graph,
    wheel_graph,
)

__all__ = [
    "Network",
    "UWEdge",
    "ring",
    "path_graph",
    "complete_graph",
    "grid_graph",
    "random_connected_graph",
    "random_tree_graph",
    "lollipop_graph",
    "caterpillar_graph",
    "star_graph",
    "hypercube_graph",
    "theta_graph",
    "wheel_graph",
]

"""The Fuerer–Raghavachari machinery (Section VIII, Algorithm 4, ref [33]).

**FR-trees** (Definition 8.1): a degree-``k`` spanning tree ``T`` is an
FR-tree if its nodes can be marked good/bad such that (1) every node of
degree ``k`` is bad, (2) every node of degree <= ``k - 2`` is good, and
(3) no graph edge joins good nodes of two different *fragments* (components
of ``T`` minus the bad nodes).  By Theorem 2.2 of [33], every FR-tree has
degree at most ``Delta_min(G) + 1`` — so certifying FR-ness certifies
near-optimality, which is exactly what the paper's O(log n)-bit PLS
(Lemma 8.1) exploits.

**The marking cascade** (Algorithm 4 lines 3–9).  Start with good = nodes
of degree <= k - 2.  While some graph edge ``e`` joins good nodes of two
different fragments, mark every node of the fundamental cycle of ``T + e``
good (recording ``e`` as those nodes' *witness*) and merge the fragments.
The cascade is a complete decision procedure for Definition 8.1: for any
valid marking M, cascade-good is contained in M-good by induction (if the
cascade merges along ``e``, M must have ``e``'s endpoints in one fragment,
so the whole cycle is already M-good) — hence if the cascade ever marks a
degree-``k`` node good, no valid marking exists.

**Improvements** (Algorithm 4 lines 10–14).  A good degree-``k`` node ``w``
can have its degree reduced by a *well-nested* sequence of swaps: insert
``w``'s witness edge ``e`` and remove a cycle edge at ``w`` — after first
recursively reducing any endpoint of ``e`` whose current degree exceeds
``k - 2`` via that endpoint's own witness.  Each completed sequence
decreases the number of degree-``k`` nodes by one without ever creating a
node of degree ``k + 1``, so the pair ``(degree, #max-degree-nodes)``
decreases lexicographically and the loop terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trees import RootedTree, bfs_tree
from repro.graphs.network import Network

__all__ = [
    "FRMarking",
    "FRRun",
    "fr_marking",
    "is_fr_tree",
    "improvement_session",
    "fuerer_raghavachari",
]


@dataclass
class FRMarking:
    """The cascade's result on one tree."""

    degree: int                          # k = deg(T)
    good: set[int]
    witness: dict[int, tuple[int, int]]  # formerly-bad node -> cascade edge
    witness_step: dict[int, int]         # node -> cascade step that marked it
    fragments: dict[int, int]            # good node -> fragment id (min member)
    fragment_dist: dict[int, int]        # good node -> hops to the id owner
    improvable: list[int]                # good nodes of degree k (sorted)
    cascade_steps: int = 0

    @property
    def is_fr(self) -> bool:
        return not self.improvable


@dataclass
class FRRun:
    """Outcome of the full Algorithm 4 loop."""

    tree: RootedTree
    marking: FRMarking
    improvements: int
    swaps: int
    degree_history: list[int] = field(default_factory=list)

    @property
    def degree(self) -> int:
        return self.marking.degree


def _good_fragments(net: Network, tree: RootedTree, good: set[int],
                    ) -> tuple[dict[int, int], dict[int, int]]:
    """Components of good nodes in T: (fragment id, hops to the id owner)."""
    frag: dict[int, int] = {}
    fdist: dict[int, int] = {}
    seen: set[int] = set()
    for v in good:
        if v in seen:
            continue
        comp = [v]
        seen.add(v)
        stack = [v]
        while stack:
            x = stack.pop()
            for y in tree.tree_neighbors(x):
                if y in good and y not in seen:
                    seen.add(y)
                    comp.append(y)
                    stack.append(y)
        owner = min(comp)
        dd = {owner: 0}
        frontier = [owner]
        while frontier:
            nxt = []
            for x in frontier:
                for y in tree.tree_neighbors(x):
                    if y in good and y not in dd:
                        dd[y] = dd[x] + 1
                        nxt.append(y)
            frontier = nxt
        for x in comp:
            frag[x] = owner
            fdist[x] = dd[x]
    return frag, fdist


def fr_marking(net: Network, tree: RootedTree) -> FRMarking:
    """Run the marking cascade (Algorithm 4, lines 3–9).

    Stops, as the algorithm does, as soon as a degree-``k`` node turns good
    (the tree is then improvable) or no inter-fragment edge remains (the
    tree is an FR-tree with the computed marking).
    """
    k = tree.max_degree()
    good = {v for v in net.nodes if tree.degree(v) <= k - 2}
    witness: dict[int, tuple[int, int]] = {}
    witness_step: dict[int, int] = {}
    frag, fdist = _good_fragments(net, tree, good)
    step = 0
    while True:
        if any(tree.degree(v) == k for v in good):
            break
        bridge = None
        for e in sorted(net.edges):
            u, v = e
            if (u in good and v in good and frag[u] != frag[v]
                    and not tree.has_edge(u, v)):
                bridge = e
                break
        if bridge is None:
            break
        step += 1
        for x in tree.fundamental_cycle(bridge):
            if x not in good:
                good.add(x)
                witness[x] = bridge
                witness_step[x] = step
        frag, fdist = _good_fragments(net, tree, good)
    improvable = sorted(v for v in good if tree.degree(v) == k)
    return FRMarking(degree=k, good=good, witness=witness,
                     witness_step=witness_step, fragments=frag,
                     fragment_dist=fdist, improvable=improvable,
                     cascade_steps=step)


def is_fr_tree(net: Network, tree: RootedTree) -> bool:
    """Definition 8.1 membership (via the cascade, see module docstring)."""
    return fr_marking(net, tree).is_fr


class _Blocked(Exception):
    """An improvement plan hit a node it cannot legally reduce."""


def improvement_session(net: Network, tree: RootedTree, marking: FRMarking,
                        target: int) -> tuple[list, RootedTree] | None:
    """Plan the well-nested swap sequence reducing ``deg(target)`` by one.

    Pure planning: returns ``(swap list, resulting tree)`` or None when the
    plan is blocked (e.g. a witness edge was consumed by an inner swap) —
    in which case the caller retries with another target or re-runs the
    cascade.  Invariants enforced while planning: no node ever reaches
    degree ``k + 1``, every insert lands on endpoints of degree <= k - 2.
    """
    k = marking.degree
    cur = tree
    planned: list[tuple[tuple[int, int], tuple[int, int]]] = []
    improved: set[int] = set()

    def reduce(x: int) -> None:
        nonlocal cur
        if x in improved or x not in marking.witness:
            raise _Blocked(x)
        improved.add(x)
        e = marking.witness[x]
        u, v = e
        for z in (u, v):
            if cur.degree(z) >= k:      # cannot be fixed by one reduction
                raise _Blocked(z)
            if cur.degree(z) == k - 1:
                reduce(z)
                if cur.degree(z) != k - 2:
                    raise _Blocked(z)
        if cur.has_edge(u, v):
            raise _Blocked(x)           # witness consumed by an inner swap
        cycle_edges = cur.fundamental_cycle_edges(e)
        at_x = [g for g in cycle_edges if x in g]
        if not at_x:
            raise _Blocked(x)           # x fell off the witness cycle
        f = at_x[0]
        cur = cur.swap(e, f)
        planned.append((e, f))

    try:
        reduce(target)
    except _Blocked:
        return None
    assert cur.max_degree() <= k
    assert cur.degree(target) == tree.degree(target) - 1
    return planned, cur


def _direct_improvement(net: Network, tree: RootedTree, k: int,
                        ) -> tuple[list, RootedTree] | None:
    """Fallback: a single swap reducing some degree-``k`` node, using any
    non-tree edge with slack endpoints whose cycle crosses it."""
    hot = [v for v in net.nodes if tree.degree(v) == k]
    for e in tree.non_tree_edges():
        u, v = e
        if tree.degree(u) > k - 2 or tree.degree(v) > k - 2:
            continue
        cycle = tree.fundamental_cycle(e)
        for x in hot:
            if x not in cycle:
                continue
            at_x = [g for g in tree.fundamental_cycle_edges(e) if x in g]
            f = at_x[0]
            return [(e, f)], tree.swap(e, f)
    return None


def fuerer_raghavachari(net: Network, initial_tree: RootedTree | None = None,
                        ) -> FRRun:
    """The full Algorithm 4 loop: cascade, improve, repeat until FR.

    Terminates because each applied improvement strictly decreases
    ``(deg(T), #nodes of degree deg(T))`` lexicographically; a budget guard
    raises if that metric ever fails to decrease.
    """
    tree = initial_tree if initial_tree is not None else bfs_tree(net)
    improvements = 0
    swaps = 0
    degree_history = [tree.max_degree()]
    budget = net.n * net.n + net.n  # lexicographic metric takes <= n*Delta steps
    while True:
        marking = fr_marking(net, tree)
        if marking.is_fr:
            return FRRun(tree=tree, marking=marking, improvements=improvements,
                         swaps=swaps, degree_history=degree_history)
        before = _metric(net, tree)
        plan = None
        for w in marking.improvable:
            plan = improvement_session(net, tree, marking, w)
            if plan is not None:
                break
        if plan is None:
            plan = _direct_improvement(net, tree, marking.degree)
        if plan is None:
            raise RuntimeError(
                f"FR: improvable tree but no applicable improvement "
                f"(n={net.n}, degree={marking.degree})")
        seq, tree = plan
        improvements += 1
        swaps += len(seq)
        degree_history.append(tree.max_degree())
        if _metric(net, tree) >= before:
            raise RuntimeError("FR: improvement did not decrease the metric")
        if improvements > budget:
            raise RuntimeError("FR: improvement budget exceeded")


def _metric(net: Network, tree: RootedTree) -> tuple[int, int]:
    k = tree.max_degree()
    return (k, sum(1 for v in net.nodes if tree.degree(v) == k))

"""Algorithms 1 and 3: PLS-guided spanning tree construction (sequential).

These are the paper's reference engines::

    construct a spanning tree T of G
    while phi(T) != 0:
        find edges e and f such that phi(T + e - f) < phi(T)   # Alg. 1
        # or a well-nested sequence (e_i, f_i)                  # Alg. 3
        T <- T + e - f
    output T

The distributed silent self-stabilizing implementations in
:mod:`repro.core.bfs`, :mod:`repro.core.mst` and :mod:`repro.core.mdst`
follow the same loop through registers; the tests cross-check both against
each other.  The engines record the full improvement history (trees,
potential values, swapped edges) so the benchmarks can regenerate the
paper's convergence behaviour (phi strictly decreasing, at most phi_max
iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.potential import CyclicalDecreasingPotential, NestDecreasingPotential
from repro.core.trees import RootedTree, bfs_tree
from repro.graphs.network import Network

__all__ = ["LocalSearchRun", "pls_guided_construction", "pls_guided_construction_nested"]


@dataclass
class LocalSearchRun:
    """The record of one Algorithm 1 / Algorithm 3 execution."""

    tree: RootedTree
    iterations: int
    phi_history: list[int] = field(default_factory=list)
    swaps: list = field(default_factory=list)

    @property
    def initial_phi(self) -> int:
        return self.phi_history[0]

    @property
    def final_phi(self) -> int:
        return self.phi_history[-1]


def pls_guided_construction(
    net: Network,
    potential: CyclicalDecreasingPotential,
    initial_tree: RootedTree | None = None,
    require_strict_decrease: bool = True,
) -> LocalSearchRun:
    """Algorithm 1 (PLS-guided spanning tree construction I).

    Raises RuntimeError if an improvement fails to decrease phi (with
    ``require_strict_decrease``) or if the iteration count exceeds phi_max —
    either would falsify the cyclical-decreasing property the paper claims.
    """
    tree = initial_tree if initial_tree is not None else bfs_tree(net)
    phi = potential.value(net, tree)
    history = [phi]
    swaps: list = []
    budget = potential.max_value(net) + 1
    while phi != 0:
        if len(swaps) >= budget:
            raise RuntimeError(
                f"{potential.name}: exceeded phi_max = {budget - 1} improvements")
        pair = potential.find_improvement(net, tree)
        if pair is None:
            raise RuntimeError(
                f"{potential.name}: phi = {phi} > 0 but no improvement found")
        e, f = pair
        tree = tree.swap(e, f)
        new_phi = potential.value(net, tree)
        if require_strict_decrease and new_phi >= phi:
            raise RuntimeError(
                f"{potential.name}: swap ({e}, {f}) did not decrease phi "
                f"({phi} -> {new_phi})")
        phi = new_phi
        history.append(phi)
        swaps.append(pair)
    return LocalSearchRun(tree=tree, iterations=len(swaps),
                          phi_history=history, swaps=swaps)


def pls_guided_construction_nested(
    net: Network,
    potential: NestDecreasingPotential,
    initial_tree: RootedTree | None = None,
) -> LocalSearchRun:
    """Algorithm 3 (PLS-guided spanning tree construction II).

    Each iteration applies one well-nested sequence of swaps; phi must
    strictly decrease per sequence (not per swap).
    """
    tree = initial_tree if initial_tree is not None else bfs_tree(net)
    phi = potential.value(net, tree)
    history = [phi]
    swaps: list = []
    budget = potential.max_value(net) + 1
    while phi != 0:
        if len(swaps) >= budget:
            raise RuntimeError(
                f"{potential.name}: exceeded phi_max = {budget - 1} sequences")
        seq = potential.find_improving_sequence(net, tree)
        if seq is None:
            raise RuntimeError(
                f"{potential.name}: phi = {phi} > 0 but no sequence found")
        for e, f in seq:
            tree = tree.swap(e, f)
        new_phi = potential.value(net, tree)
        if new_phi >= phi:
            raise RuntimeError(
                f"{potential.name}: sequence of {len(seq)} swaps did not "
                f"decrease phi ({phi} -> {new_phi})")
        phi = new_phi
        history.append(phi)
        swaps.append(seq)
    return LocalSearchRun(tree=tree, iterations=len(swaps),
                          phi_history=history, swaps=swaps)

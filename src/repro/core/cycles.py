"""Fundamental-cycle membership from NCA labels (Section V).

Given the labels ``lambda(u)``, ``lambda(v)`` of the endpoints of a
designated non-tree edge ``e = {u, v}``, every node ``x`` decides from its
own label whether it lies on the fundamental cycle ``C`` of ``T + e``:

    x in C  iff  ( nca(x,u) = x and nca(x,v) = w )
             or  ( nca(x,u) = w and nca(x,v) = x )

where ``w = nca(u, v)`` — i.e. ``x`` is on the tree path from ``u`` up to
``w`` or from ``v`` up to ``w``.  This predicate is what lets the
distributed protocols of Sections VI and VIII mark cycles, find extremal
cycle edges, and schedule the chain of local switches, all with O(log n)
bits per node.
"""

from __future__ import annotations

from repro.labeling.nca import NCALabel, label_is_ancestor, nca_of_labels

__all__ = [
    "on_fundamental_cycle",
    "on_chain_segment",
]


def on_fundamental_cycle(lx: NCALabel, lu: NCALabel, lv: NCALabel) -> bool:
    """The paper's membership predicate (Section V), from labels alone."""
    w = nca_of_labels(lu, lv)
    xu = nca_of_labels(lx, lu)
    xv = nca_of_labels(lx, lv)
    return (xu == lx and xv == w) or (xu == w and xv == lx)


def on_chain_segment(lx: NCALabel, la: NCALabel, ltop: NCALabel) -> bool:
    """Whether ``x`` lies on the tree path from ``a`` up to ``top``
    (inclusive), assuming ``top`` is an ancestor of ``a``.

    Used by the switch scheduler: when replacing tree edge ``f = {c, p(c)}``
    (child side ``c = top``) by non-tree edge ``e`` with endpoint ``a``
    inside the detached subtree, the nodes that re-parent are exactly the
    path from ``a`` up to ``c``.
    """
    return label_is_ancestor(lx, la) and label_is_ancestor(ltop, lx)

"""PLS-guided BFS construction (the worked example of Section III).

The potential: with the tree rooted at ``r`` and every node labeled by its
tree depth, ``phi(T) = sum_u |d_T(u) - dist_G(u, r)|``.  It is zero exactly
on BFS trees, and cyclical-decreasing: a node ``u`` with a graph neighbor
``v`` such that ``d(v) + 1 < d(u)`` yields the improvement
``e = {u, v}, f = {u, p(u)}`` (re-parenting ``u`` onto ``v`` lowers the
whole subtree of ``u``, so every |.| term weakly decreases and ``u``'s
strictly).  ``phi_max = O(n^2)``.

This module hosts the sequential potential; the distributed silent
self-stabilizing protocol built on it lives in
:class:`repro.core.tasks.bfs_protocol` (see :mod:`repro.core.tasks`).
"""

from __future__ import annotations

from repro.core.potential import CyclicalDecreasingPotential
from repro.core.trees import RootedTree
from repro.graphs.network import Network

__all__ = ["BFSPotential", "is_bfs_tree"]


def is_bfs_tree(net: Network, tree: RootedTree) -> bool:
    """Whether every node's tree depth equals its graph distance to the root."""
    dist = net.bfs_distances(tree.root)
    return all(tree.depth(v) == dist[v] for v in net.nodes)


class BFSPotential(CyclicalDecreasingPotential):
    """phi(T) = sum |d_T(u) - dist_G(u, root)| (Section III example)."""

    name = "bfs-potential"

    def value(self, net: Network, tree: RootedTree) -> int:
        dist = net.bfs_distances(tree.root)
        return sum(abs(tree.depth(v) - dist[v]) for v in net.nodes)

    def find_improvement(self, net: Network, tree: RootedTree):
        """The deepest-gain candidate: u rejecting because a neighbor v has
        d(v) < d(u) - 1 (the paper lets the root arbitrate ties; we pick the
        largest gain, then smallest ids, for determinism).

        Guard fast path: the depth map and adjacency mapping are
        materialized once per call instead of being re-fetched through
        method accessors per edge, and nodes at depth <= 1 are skipped
        before their neighborhoods are scanned — u improves only if some
        neighbor sits at depth < d(u) - 1, impossible for d(u) <= 1 since
        depths are non-negative (this also covers the root).
        """
        best = None
        depth = {v: tree.depth(v) for v in net.nodes}
        adjacency = net.adjacency
        for u in net.nodes:
            du = depth[u]
            if du <= 1:
                continue
            du1 = du - 1
            for v in adjacency[u]:
                dv = depth[v]
                if dv < du1:
                    gain = du1 - dv
                    cand = (-gain, u, v)
                    if best is None or cand < best:
                        best = cand
        if best is None:
            return None
        _, u, v = best
        e = (u, v)
        f = (u, tree.parent(u))
        return e, f

    def max_value(self, net: Network) -> int:
        # every term is at most n - 1
        return net.n * (net.n - 1)

"""Potential functions over spanning trees (Sections III and VII).

A family ``F`` of spanning trees *admits a local search algorithm* when a
potential ``phi`` over spanning trees satisfies:

1. ``phi(T) >= 0``;
2. ``phi(T) = 0`` iff ``T`` belongs to ``F``;
3. (*cyclical-decreasing*, Section III) if ``phi(T) > 0`` there are edges
   ``e not in T`` and ``f`` on the fundamental cycle of ``T + e`` with
   ``phi(T + e - f) < phi(T)``; or
   (*nest-decreasing*, Section VII) there is a *well-nested* sequence of
   such pairs whose combined application decreases ``phi``.

These interfaces are consumed by the Algorithm 1 / Algorithm 3 engines in
:mod:`repro.core.local_search` and mirrored by the distributed protocols.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.trees import RootedTree
from repro.graphs.network import Network

__all__ = ["CyclicalDecreasingPotential", "NestDecreasingPotential"]


class CyclicalDecreasingPotential(ABC):
    """A potential with single-swap improvements (Algorithm 1 material)."""

    #: short name used in reports
    name: str = "potential"

    @abstractmethod
    def value(self, net: Network, tree: RootedTree) -> int:
        """phi(T) >= 0; zero exactly on the target family."""

    @abstractmethod
    def find_improvement(self, net: Network, tree: RootedTree,
                         ) -> tuple[tuple[int, int], tuple[int, int]] | None:
        """An ``(e, f)`` pair with ``phi(T + e - f) < phi(T)``, or None when
        ``phi(T) = 0``."""

    @abstractmethod
    def max_value(self, net: Network) -> int:
        """An upper bound phi_max on phi over all spanning trees of net."""

    def is_member(self, net: Network, tree: RootedTree) -> bool:
        """Whether T belongs to the family (phi = 0)."""
        return self.value(net, tree) == 0


class NestDecreasingPotential(ABC):
    """A potential improved by well-nested swap sequences (Algorithm 3)."""

    name: str = "nest-potential"

    @abstractmethod
    def value(self, net: Network, tree: RootedTree) -> int:
        """phi(T) >= 0; zero exactly on the target family."""

    @abstractmethod
    def find_improving_sequence(self, net: Network, tree: RootedTree,
                                ) -> list[tuple[tuple[int, int], tuple[int, int]]] | None:
        """A well-nested sequence of ``(e_i, f_i)`` pairs whose application
        (in order, each ``f_i`` on the fundamental cycle of the *current*
        tree plus ``e_i``) strictly decreases phi; None when phi = 0."""

    @abstractmethod
    def max_value(self, net: Network) -> int:
        """An upper bound on phi."""

    def is_member(self, net: Network, tree: RootedTree) -> bool:
        return self.value(net, tree) == 0

"""The paper's contribution: PLS-guided silent self-stabilizing tree construction.

Sequential layer (reference engines used as ground truth and by Lemma/Theorem
reproductions):

* :mod:`trees` — rooted spanning trees, fundamental cycles, edge swaps;
* :mod:`potential` — cyclical-decreasing and nest-decreasing potentials;
* :mod:`local_search` — Algorithms 1 and 3 of the paper;
* :mod:`fr` — the Fuerer-Raghavachari machinery (Algorithm 4).

Distributed layer (guarded-rule protocols for the state model):

* :mod:`sst` — silent spanning-tree + leader-election substrate;
* :mod:`waves` — bounded min/max fixpoints, convergecast/broadcast builders;
* :mod:`pif` — root-coordinated phases with feedback;
* :mod:`swap` — the Section IV three-phase loop-free edge switch;
* :mod:`cycles` — fundamental-cycle membership from NCA labels (Section V);
* :mod:`bfs`, :mod:`mst`, :mod:`mdst` — the three task instantiations.
"""

from repro.core.trees import (
    RootedTree,
    bfs_tree,
    dfs_tree,
    random_spanning_tree,
    tree_from_edges,
)

__all__ = [
    "RootedTree",
    "bfs_tree",
    "dfs_tree",
    "random_spanning_tree",
    "tree_from_edges",
]

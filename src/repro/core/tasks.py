"""Distributed PLS-guided task protocols (Theorems 3.1 / 7.1, end to end).

Every task composes three ingredients, all guarded rules in the state
model:

* the :class:`~repro.core.swap.MalleableTreeProtocol` layer below —
  construction, redundant (d, s) labels, and the Section IV switch;
* task labels maintained as self-correcting fixpoints on the stable tree
  (distances for BFS; NCA labels and Boruvka traces for MST);
* a root-coordinated improvement loop in the style of Algorithm 1: the
  root cycles through *phases*, broadcast down the tree and acknowledged
  back up (a propagation-of-information-with-feedback discipline):

  - ``WORK``: labels settle; every node aggregates its best improvement
    candidate (convergecast); when the root's subtree is fully acked and no
    candidate exists, the system is legal and **silent**;
  - intermediate find phases where needed (MST aggregates the heaviest
    cycle edge for the chosen non-tree edge);
  - ``SWAP``: the chosen pair is broadcast; the nodes of the chain execute
    their local switches in order (each fires when its former chain child
    has completed, Fig. 1a), and completion flows back up as
    acknowledgements.

Self-stabilization is hierarchical: the tree layer recovers structure; the
phase/ack/candidate fields are self-correcting on the stable tree; a
spurious phase or stale candidate can cause at most a bounded number of
valid-but-useless switches before genuine WORK data drives real progress.

Every layer here reads only its 1-hop neighborhood.  The MST/MDST
detector decision is consulted through the certificate-backed oracle of
:mod:`repro.certify.oracle` — register-carried subtree digests plus a
digest-keyed write-once memo — so the compositions run with
``read_locality = "neighborhood"`` on the incremental engine.
"""

from __future__ import annotations

from repro.certify.oracle import CertifiedOracle, DigestLayer
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.nca import NCALabel, label_is_ancestor
from repro.runtime.protocol import ComposedProtocol, NodeView, Protocol
from repro.runtime.registers import (
    NONE,
    RegisterSpec,
    custom_field,
    enum_field,
    flag_field,
)

__all__ = [
    "PhaseLayer",
    "GuidedBFS",
    "GuidedMST",
    "GuidedMDST",
    "NCALabelLayer",
    "guided_bfs_protocol",
    "guided_mst_protocol",
    "guided_mdst_protocol",
]

WORK = "WORK"
FINDF = "FINDF"
SWAP = "SWAP"


def _payload_field(name: str):
    """A broadcast/aggregation slot holding a small tuple or NONE.

    Bit accounting: payloads carry O(1) identities/weights plus up to two
    NCA labels; the analysis code measures NCA labels in their
    Gilbert–Moore wire format, the structural tuple here is the simulator
    representation.
    """

    def bits(net, value):
        if value is NONE:
            return 1
        return 1 + 6 * net.id_bits() + 2 * _label_bits(net, value)

    def corrupt(net, node, rng):
        if rng.random() < 0.5:
            return NONE
        arity = rng.choice((2, 3))
        return tuple(rng.randint(1, net.id_space) for _ in range(arity))

    return custom_field(name, lambda net, node: NONE, bits, corrupt)


def _label_bits(net, value) -> int:
    # conservative structural proxy; see DESIGN.md (the wire format is the
    # measured Gilbert-Moore encoding)
    return 2 * net.id_bits()


class PhaseLayer(Protocol):
    """Shared phase/ack machinery.  Subclasses define the task hooks.

    Every rule of this layer — phase copy-down, candidate aggregation,
    acknowledgements, and the root transition — reads only the 1-hop
    neighborhood.  The oracle-consulting subclasses keep that property by
    consulting their detector through the certificate-backed
    :class:`repro.certify.oracle.CertifiedOracle` (digest-keyed, write-once
    memo), so the whole family runs with the default
    ``read_locality = "neighborhood"`` on the incremental engine.
    """

    name = "phase-layer"
    phases: tuple[str, ...] = (WORK, SWAP)

    # ------------------------------------------------------------------
    # task hooks
    # ------------------------------------------------------------------

    def own_candidate(self, view: NodeView):
        """This node's improvement candidate (a tuple ordered so that
        smaller = better), or NONE."""
        raise NotImplementedError

    def extra_fields(self) -> list:
        return []

    def extra_rules(self, view: NodeView, intended: dict) -> None:
        """Additional per-step updates (label fixpoints, switch roles)."""

    def next_phase(self, view: NodeView, phase: str, cand):
        """Root-only: (next phase, payload updates) when the subtree acked."""
        raise NotImplementedError

    def phase_done(self, view: NodeView, phase: str) -> bool:
        """Whether this node's own part of the phase is complete."""
        return True

    def labels_settled(self, view: NodeView) -> bool:
        """Whether this node's task labels are locally consistent (WORK)."""
        return True

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            enum_field("ph", self.phases, WORK),
            flag_field("ack"),
            _payload_field("cand"),
            _payload_field("bc"),
        ] + self.extra_fields())

    # tree-layer helpers ------------------------------------------------

    @staticmethod
    def tree_sound(view: NodeView) -> bool:
        return (view["d"] is not NONE and view["s"] is not NONE
                and not view["mark"] and view["swt"] is NONE)

    @staticmethod
    def children_of(view: NodeView) -> list[int]:
        me = view.id
        return [u for u in view.neighbors if view.nbr(u)["par"] == me]

    @staticmethod
    def is_root(view: NodeView) -> bool:
        return view["par"] is NONE

    def step(self, view: NodeView) -> dict | None:
        cur = view.state
        intended = dict()
        children = self.children_of(view)

        # ---- phase / broadcast copy-down --------------------------------
        if self.is_root(view):
            ph, bc = cur["ph"], cur["bc"]
        else:
            pst = view.nbr(view["par"]) if view["par"] in view.neighbors else None
            if pst is not None and "ph" in pst:
                ph, bc = pst["ph"], pst["bc"]
            else:
                ph, bc = cur["ph"], cur["bc"]
        intended["ph"] = ph
        intended["bc"] = bc

        # ---- candidate aggregation --------------------------------------
        own = self.own_candidate(view) if self.tree_sound(view) else NONE
        best = own
        for c in children:
            cc = view.nbr(c)["cand"]
            if cc is not NONE and (best is NONE or cc < best):
                best = cc
        intended["cand"] = best

        # ---- acknowledgement --------------------------------------------
        kids_ok = all(
            view.nbr(c)["ack"] and view.nbr(c)["ph"] == ph for c in children
        )
        settled = (self.tree_sound(view)
                   and (ph != WORK or self.labels_settled(view))
                   and self.phase_done(view, ph)
                   and cur["cand"] == best)
        intended["ack"] = bool(kids_ok and settled)

        # ---- root transition ---------------------------------------------
        if self.is_root(view) and intended["ack"]:
            move = self.next_phase(view, ph, best)
            if move is not None:
                nxt, payload = move
                intended["ph"] = nxt
                intended["bc"] = payload
                intended["ack"] = False

        # ---- task-specific extras -----------------------------------------
        self.extra_rules(view, intended)

        delta = {k: v for k, v in intended.items() if cur.get(k) != v}
        return delta or None


class GuidedBFS(PhaseLayer):
    """The Section III task, end to end distributed.

    Candidate: a node ``u`` with a neighbor ``v`` such that
    ``d(v) + 1 < d(u)`` proposes the swap ``e = {u, v}, f = {u, p(u)}``
    (largest gain wins the aggregation).  The SWAP phase broadcasts
    ``(u, v)``; ``u`` performs a single local switch through the tree
    layer.
    """

    name = "guided-bfs"
    phases = (WORK, SWAP)

    def own_candidate(self, view: NodeView):
        if self.is_root(view):
            return NONE
        du = view["d"]
        best = NONE
        for v in view.neighbors:
            st = view.nbr(v)
            dv = st["d"]
            if dv is NONE or st["rid"] != view["rid"]:
                continue
            if isinstance(dv, int) and dv + 1 < du:
                cand = (-(du - dv - 1), view.id, v)
                if best is NONE or cand < best:
                    best = cand
        return best

    def next_phase(self, view: NodeView, phase: str, cand):
        if phase == WORK:
            # malformed candidates (corruption) are flushed by the
            # aggregation fixpoint within a step; never act on them
            if cand is NONE or not (isinstance(cand, tuple) and len(cand) == 3):
                return None  # legal: stay silent
            _, u, v = cand
            return SWAP, (u, v)
        return WORK, NONE  # SWAP acked -> back to work

    @staticmethod
    def _commanded_switch(view: NodeView, bc):
        """The still-executable switch command ``(u, v)`` addressed to this
        node, or None.

        A SWAP broadcast that is not (or no longer) a legal *improving*
        switch — target not a neighbor, root identity disagreement, or
        ``d(v) + 1 < d(u)`` failing — is treated as complete rather than
        pending: a corrupted broadcast can command a switch the tree
        layer will never accept (e.g. re-parenting onto the node's own
        subtree), and waiting for it would wedge the phase machinery in
        SWAP forever (a silent illegal island, or a livelock of raise /
        sanity-clear cycles — both found by the small-n model checker).
        Acking instead lets the root flush the phase and retry from
        genuine WORK data.
        """
        if bc is NONE or not (isinstance(bc, tuple) and len(bc) == 2):
            return None
        u, v = bc
        if view.id != u or view["par"] == v:
            return None
        st = view.nbr_or_none(v)
        if st is None or st["rid"] != view["rid"]:
            return None
        du, dv = view["d"], st["d"]
        if not (isinstance(du, int) and isinstance(dv, int) and dv + 1 < du):
            return None
        return u, v

    def phase_done(self, view: NodeView, phase: str) -> bool:
        if phase != SWAP:
            return True
        # done = re-parented, not addressed, or command impossible (abort)
        return self._commanded_switch(view, view["bc"]) is None

    def extra_rules(self, view: NodeView, intended: dict) -> None:
        # the designated switcher raises the tree-layer request
        if intended.get("ph") != SWAP:
            return
        cmd = self._commanded_switch(view, intended.get("bc", view["bc"]))
        if cmd is None or view["swt"] is not NONE or view["par"] is NONE:
            return
        intended["swt"] = cmd[1]

    # ------------------------------------------------------------------

    def is_legal(self, net: Network, config) -> bool:
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return False
        dist = net.bfs_distances(tree.root)
        return all(tree.depth(v) == dist[v] for v in net.nodes)


def guided_bfs_protocol() -> ComposedProtocol:
    """The full silent self-stabilizing PLS-guided BFS construction."""
    return ComposedProtocol([MalleableTreeProtocol(), GuidedBFS()],
                            name="guided-bfs")


class NCALabelLayer(Protocol):
    """Distributed construction of the NCA labels (Section V) on the
    current tree: heavy-child pointers from the certified sizes, labels by
    parent derivation — self-correcting downward fixpoints, silent on a
    stable labeled tree.  Carries Lemma 5.1's certificate material."""

    name = "nca-labels"

    def register_spec(self, net: Network) -> RegisterSpec:
        def lam_bits(net_, value):
            if value is NONE:
                return 1
            return 1 + 2 * net_.id_bits()  # structural proxy (see DESIGN.md)

        return RegisterSpec([
            custom_field("hv", lambda n, v: NONE,
                         lambda n, v: 1 + n.id_bits(),
                         lambda n, v, rng: NONE),
            custom_field("lam", lambda n, v: NONE, lam_bits,
                         lambda n, v, rng: NONE),
        ])

    def step(self, view: NodeView) -> dict | None:
        cur = view.state
        me = view.id
        # freeze during SWAP phases: the chain roles of Fig. 1(a) are
        # derived from the *pre-swap* labels (Section V)
        if cur.get("ph") == SWAP:
            return None
        children = [u for u in view.neighbors if view.nbr(u)["par"] == me]
        # heavy child from the tree layer's certified sizes
        hv = NONE
        sizes = [(view.nbr(c)["s"], c) for c in children]
        if children and all(s is not NONE for s, _ in sizes):
            hv = min(sizes, key=lambda sc: (-sc[0], sc[1]))[1]
        # label derivation from the parent
        lam = NONE
        if view["par"] is NONE:
            lam = ((me, 0),)
        else:
            pst = view.nbr(view["par"]) if view["par"] in view.neighbors else None
            if pst is not None and pst.get("lam") not in (None, NONE):
                plam = pst["lam"]
                if pst.get("hv") == me:
                    apex, depth = plam[-1]
                    lam = plam[:-1] + ((apex, depth + 1),)
                else:
                    lam = plam + ((me, 0),)
        delta = {}
        if cur["hv"] != hv:
            delta["hv"] = hv
        if lam is not NONE and cur["lam"] != lam:
            delta["lam"] = lam
        return delta or None

    def fast_step_slots(self, schema):
        """The label fixpoint compiled to slot indices.

        Requires the tree layer's ``par``/``s`` fields in the schema (the
        layer is only ever composed above them); returns ``None`` —
        falling back to the NodeView adapter — otherwise.  ``ph`` is
        resolved when present, mirroring ``state.get("ph")``.  Reads its
        own (possibly composition-patched) register only through ``own``;
        the parent row is located by scanning ``nbr_rows``, which matches
        the ``par in view.neighbors`` containment semantics of
        :meth:`step` (junk parent pointers compare unequal, they never
        hash).
        """
        index = schema.index
        if "par" not in index or "s" not in index:
            return None
        HV, LAM = index["hv"], index["lam"]
        PAR, S = index["par"], index["s"]
        PH = index.get("ph")

        def rule(net, config, me, own, nbr_rows) -> dict | None:
            # freeze during SWAP phases (pre-swap labels, Section V)
            if PH is not None and own[PH] == SWAP:
                return None
            # heavy child from the tree layer's certified sizes
            sizes = [(st[S], u) for u, st in nbr_rows if st[PAR] == me]
            hv = NONE
            if sizes and all(s is not NONE for s, _ in sizes):
                hv = min(sizes, key=lambda sc: (-sc[0], sc[1]))[1]
            # label derivation from the parent
            lam = NONE
            par = own[PAR]
            if par is NONE:
                lam = ((me, 0),)
            else:
                pst = None
                for u, st in nbr_rows:
                    if u == par:
                        pst = st
                        break
                if pst is not None and pst[LAM] not in (None, NONE):
                    plam = pst[LAM]
                    if pst[HV] == me:
                        apex, depth = plam[-1]
                        lam = plam[:-1] + ((apex, depth + 1),)
                    else:
                        lam = plam + ((me, 0),)
            delta = {}
            if own[HV] != hv:
                delta[HV] = hv
            if lam is not NONE and own[LAM] != lam:
                delta[LAM] = lam
            return delta or None

        return rule

    @staticmethod
    def labels_ok(net: Network, config, tree: RootedTree) -> bool:
        from repro.labeling.nca import NCALabeling
        ref = NCALabeling(net, tree)
        return all(config[v]["lam"] is not NONE
                   and NCALabel(config[v]["lam"]) == ref.labels[v]
                   for v in net.nodes)


def _lam_depth(segments) -> int:
    """Tree depth encoded by an NCA label (heavy hops + light edges)."""
    return sum(d for _, d in segments) + len(segments) - 1


def _nca_settled_at(view: NodeView) -> bool:
    """Whether the NCA layer's fixpoint is locally stable (mirrors
    :meth:`NCALabelLayer.step`)."""
    me = view.id
    children = [u for u in view.neighbors if view.nbr(u)["par"] == me]
    sizes = [(view.nbr(c)["s"], c) for c in children]
    if any(s is NONE for s, _ in sizes):
        return False
    hv = min(sizes, key=lambda sc: (-sc[0], sc[1]))[1] if children else NONE
    if view["hv"] != hv:
        return False
    if view["par"] is NONE:
        return view["lam"] == ((me, 0),)
    pst = view.nbr(view["par"])
    plam = pst.get("lam")
    if plam in (None, NONE):
        return False
    if pst.get("hv") == me:
        apex, depth = plam[-1]
        want = plam[:-1] + ((apex, depth + 1),)
    else:
        want = plam + ((me, 0),)
    return view["lam"] == want


class ChainSwapMixin:
    """Shared SWAP-phase behavior for tasks whose improvements are full
    ``T + e - f`` swaps executed as the Fig. 1(a) chain.

    Broadcast payload: ``(a, b, x, lam_a, lam_x)`` where ``e = {a, b}``
    (``a`` inside the detached subtree), and ``x`` is the child side of the
    removed edge ``f = {x, p(x)}``.  Every node derives its role from its
    own frozen NCA label: the chain is the tree path from ``a`` up to
    ``x``; each chain node re-parents onto its former chain child once that
    child has completed, ``a`` re-parents onto ``b`` first.
    """

    @staticmethod
    def _chain_role(view: NodeView, bc):
        """(on_chain, target_id) for this node, or (False, None)."""
        if bc is NONE or not (isinstance(bc, tuple) and len(bc) == 5):
            return False, None
        a, b, x, lam_a_raw, lam_x_raw = bc
        lam_raw = view["lam"]
        if lam_raw in (None, NONE):
            return False, None
        try:
            lam = NCALabel(tuple(lam_raw))
            lam_a = NCALabel(tuple(lam_a_raw))
            lam_x = NCALabel(tuple(lam_x_raw))
        except (TypeError, ValueError):
            return False, None
        if view.id == a:
            return True, b
        # label comparisons may raise on corrupted labels (e.g. two labels
        # claiming different root apexes); any such junk simply means this
        # node is not on the chain
        try:
            if not (label_is_ancestor(lam, lam_a)
                    and label_is_ancestor(lam_x, lam)):
                return False, None
        except (TypeError, ValueError):
            return False, None
        # my former chain child: the unique neighbor strictly below me on
        # the path toward a (frozen pre-swap labels)
        my_depth = _lam_depth(lam.segments)
        for z in view.neighbors:
            zlam_raw = view.nbr(z).get("lam")
            if zlam_raw in (None, NONE):
                continue
            try:
                zlam = NCALabel(tuple(zlam_raw))
                if (label_is_ancestor(lam, zlam)
                        and label_is_ancestor(zlam, lam_a)
                        and _lam_depth(zlam.segments) == my_depth + 1):
                    return True, z
            except (TypeError, ValueError):
                continue
        return False, None

    @staticmethod
    def _endpoint_feasible(view: NodeView, bc) -> bool:
        """Whether the chain endpoint's commanded re-parent can still be
        the decided improvement.

        A genuine payload satisfies all three checks: the endpoint's own
        label still equals the payload's frozen ``lam_a`` (the decision
        was made about *this* node in *this* position — a mismatch means
        the payload is stale or was decided over junk labels), the
        target is not currently the endpoint's child (a direct register
        check no corrupted label can fool), and the target's label does
        not descend from ``lam_a`` (``b`` sits outside the detached
        subtree by construction).  An infeasible command can never
        become ready; its raise prunes the target's distance and marks
        it, and the resulting raise/reset churn is a daemon cycle (three
        variants found by the small-n model checker).  Such commands are
        refused and acked as complete so the root flushes the phase,
        retires the decision, and re-consults on the current tree.
        """
        st = view.nbr_or_none(bc[1])
        if st is None:
            return False
        if st.get("par") == view.id:
            return False  # the target is currently my own child
        lam_b_raw = st.get("lam")
        own_lam = view["lam"]
        if lam_b_raw in (None, NONE) or own_lam in (None, NONE):
            return False
        try:
            if tuple(own_lam) != tuple(bc[3]):
                return False  # stale: I am no longer the decided endpoint
            lam_a = NCALabel(tuple(bc[3]))
            lam_b = NCALabel(tuple(lam_b_raw))
            return not label_is_ancestor(lam_a, lam_b)
        except (TypeError, ValueError):
            return False

    def chain_phase_done(self, view: NodeView, bc) -> bool:
        on_chain, target = self._chain_role(view, bc)
        if not on_chain:
            return True
        if view["par"] == target:
            return True
        # impossible commands are acked as complete (abort) instead of
        # waited on: the tree layer would never accept such a request
        # (see _switch_request_sane), so holding the ack would wedge the
        # phase in SWAP forever on a corrupted or stale broadcast
        st = view.nbr_or_none(target)
        if st is None or st["rid"] != view["rid"]:
            return True
        if view.id == bc[0] and not self._endpoint_feasible(view, bc):
            return True
        # the chain executes bottom-up: my turn comes once my former
        # chain child has re-parented.  If that child is still attached
        # to me but has *acknowledged* the SWAP phase, the chain below
        # me is dead — its endpoint refused an infeasible command — and
        # waiting would wedge the phase: ack too, so the abort cascades
        # up and the root can flush and re-consult.
        if (view.id != bc[0] and st["par"] == view.id
                and st.get("ack") and st.get("ph") == SWAP):
            return True
        return False

    def chain_extra_rules(self, view: NodeView, intended: dict) -> None:
        if intended.get("ph") != SWAP:
            return
        bc = intended.get("bc", view["bc"])
        on_chain, target = self._chain_role(view, bc)
        if not on_chain or target is None:
            return
        if view["par"] == target or view["swt"] is not NONE:
            return
        if target not in view.neighbors:
            return
        # only raise requests the tree layer would accept (rid agreement,
        # see _switch_request_sane) — re-raising an insane request fights
        # the sanity rule forever on corrupted broadcasts
        tst = view.nbr(target)
        if tst["rid"] != view["rid"]:
            return
        if view.id == bc[0]:
            # the subtree endpoint fires first — but never toward its own
            # (label-judged) descendant, see _endpoint_feasible
            if self._endpoint_feasible(view, bc):
                intended["swt"] = target
        else:
            # an inner chain node fires once its former child has left it
            if tst["par"] != view.id and tst["swt"] is NONE:
                intended["swt"] = target


#: register fields the MST/MDST detectors read: the tree structure and
#: the NCA labels carried in the SWAP payloads.  The subtree digests of
#: the certificate-backed oracle cover exactly these, so a change to any
#: of them anywhere reaches the consulting root as a chain of ordinary
#: 1-hop register writes.
ORACLE_DIGEST_FIELDS = ("par", "lam")


class _OracleGuidedTask(ChainSwapMixin, PhaseLayer):
    """Base for the MST and MDST tasks.

    The *execution* is fully distributed (tree layer, NCA labels, chain
    switches, phase waves).  The *detector's decision* — which ``(e, f)``
    to swap next — is computed at the root.  The paper's companion report
    [14] implements this decision with convergecast/broadcast waves over
    the same certificates (Boruvka traces for MST, FR marks/witnesses for
    MDST); we reproduce those certificates and their verifiers in
    :mod:`repro.labeling.mst_pls` / :mod:`repro.labeling.fr_pls` and
    :mod:`repro.certify.schemes`, and keep the wave-level detector out of
    scope — see DESIGN.md, substitution 6.

    The decision procedure is consulted through the certificate-backed
    oracle (:mod:`repro.certify.oracle`): the root keys every consult by
    the digest its 1-hop neighborhood dictates, and the digest chain
    carried in the ``ver`` registers guarantees a remote change of any
    oracle-relevant field reaches the root as ordinary neighborhood
    writes.  The root's rule is therefore a pure function of its 1-hop
    view (plus the write-once memo shared by every evaluation path), and
    the composition runs with ``read_locality = "neighborhood"``.
    """

    phases = (WORK, SWAP)

    #: the root's rule is 1-hop *given* the oracle memo, but the memo is
    #: per-instance state fed by a whole-configuration thunk
    #: (``tree_of_config``) — a shard-local subgraph cannot evaluate it,
    #: so the guided constructions decline sharded execution until the
    #: detector is fully local (ROADMAP item 5)
    shardable = False

    def __init__(self, digest: DigestLayer) -> None:
        self._digest = digest
        self._oracle = CertifiedOracle()
        #: the digest key the outstanding SWAP payload was issued under;
        #: compared at flush time to retire decisions that moved nothing
        self._issued_key: int | None = None

    def own_candidate(self, view: NodeView):
        return NONE

    def on_topology_event(self, old_net: Network, new_net: Network,
                          event: object) -> bool:
        """Flush the oracle across topology revisions (Protocol hook).

        Every memo entry was computed by ``_decide`` under the *old*
        network (the decision thunk closes over the consult-time
        topology), so a digest key that recurs after the event would
        replay a decision about edges that may no longer exist.  Drop
        the memo and the issued-key latch wholesale and invalidate every
        cached proposal: the consulting root's enabledness is a function
        of the memo, not only of its 1-hop registers.
        """
        self._oracle = CertifiedOracle()
        self._issued_key = None
        return True

    def labels_settled(self, view: NodeView) -> bool:
        # No explicit digest check is needed here: the DigestLayer runs
        # earlier in the same composed atomic step, so any ack write is
        # accompanied by a collateral refresh of the node's own ``ver``
        # — acked children always carry their current subtree digest,
        # which is what keys the root's consult.  Residual staleness
        # windows (an ack bit written before a later remote change) are
        # bounded by the one-shot retirement in :meth:`next_phase`: a
        # decision whose SWAP moved nothing is never replayed under the
        # same key.  (A register-vs-expected comparison here would be
        # tautological for exactly the layer-ordering reason above.)
        return _nca_settled_at(view)

    def phase_done(self, view: NodeView, phase: str) -> bool:
        if phase != SWAP:
            return True
        return self.chain_phase_done(view, view["bc"])

    def extra_rules(self, view: NodeView, intended: dict) -> None:
        self.chain_extra_rules(view, intended)

    # -- the oracle boundary -------------------------------------------

    def oracle_next_swap(self, net: Network, tree: RootedTree):
        """The next (e, f) improvement, or None when the tree is legal."""
        raise NotImplementedError

    def _decide(self, net: Network, config):
        """The detector: the next SWAP payload, or None (stay silent).

        Runs once per distinct subtree digest (see
        :class:`~repro.certify.oracle.CertifiedOracle`); reads the global
        configuration, which is sound exactly because the digest key
        certifies that content to the consulting root.
        """
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return None
        pair = self.oracle_next_swap(net, tree)
        if pair is None:
            return None  # legal: stay silent
        e, f = pair
        fx, fy = f
        x = fx if tree.parent(fx) == fy else fy
        detached = tree.subtree_nodes(x)
        a = e[0] if e[0] in detached else e[1]
        b = e[1] if a == e[0] else e[0]
        lam_a = config[a]["lam"]
        lam_x = config[x]["lam"]
        if lam_a in (None, NONE) or lam_x in (None, NONE):
            return None  # labels not ready; the next label write re-keys
        return (a, b, x, tuple(lam_a), tuple(lam_x))

    def next_phase(self, view: NodeView, phase: str, cand):
        key = self._digest.expected(view)
        if phase == SWAP:
            # flush back to WORK; a completed SWAP that left the digest
            # unchanged moved none of the registers the decision was
            # about — the payload was stale or infeasible, and replaying
            # it on the next recurrence of the same key would be a
            # livelock.  Retire it (one shot per key).
            if self._issued_key is not None and key == self._issued_key:
                self._oracle.retire(key)
            self._issued_key = None
            return WORK, NONE
        net = view.net
        config = view._config
        payload = self._oracle.consult(
            key, lambda: self._decide(net, config))
        if payload is None:
            return None
        # recording the issuance key is idempotent across re-evaluations
        # of this same guard state and does not affect this evaluation's
        # result, so cached proposals and rescans stay in agreement
        self._issued_key = key
        return SWAP, payload


class GuidedMST(_OracleGuidedTask):
    """Algorithm 2 distributed (Corollary 6.1): red-rule swaps until the
    Boruvka-trace potential reaches zero (the unique MST)."""

    name = "guided-mst"

    def oracle_next_swap(self, net: Network, tree: RootedTree):
        from repro.core.mst import MSTPotential
        return MSTPotential().find_improvement(net, tree)

    def is_legal(self, net: Network, config) -> bool:
        from repro.baselines.sequential_mst import kruskal_mst
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return False
        return tree.edges() == kruskal_mst(net)


class GuidedMDST(_OracleGuidedTask):
    """Algorithm 4 distributed (Corollary 8.1): well-nested improvement
    sequences executed one chain swap at a time until the tree is an
    FR-tree (degree <= OPT + 1)."""

    name = "guided-mdst"

    def __init__(self, digest: DigestLayer) -> None:
        super().__init__(digest)
        self._plan: list = []
        self._plan_tree_edges: frozenset | None = None

    def oracle_next_swap(self, net: Network, tree: RootedTree):
        from repro.core.fr import (fr_marking, improvement_session,
                                   _direct_improvement)
        edges = frozenset(tree.edges())
        if self._plan and self._plan_tree_edges != edges:
            # a chain swap landed since the plan was made: if the head's
            # inserted edge materialized, advance to the plan's tail;
            # otherwise the plan derailed (faults) and is dropped
            e, _ = self._plan[0]
            if tuple(sorted(e)) in edges:
                self._plan.pop(0)
                self._plan_tree_edges = edges
            else:
                self._plan = []
        if self._plan and self._plan_tree_edges == edges:
            e, f = self._plan[0]
            return e, f
        self._plan = []
        marking = fr_marking(net, tree)
        if marking.is_fr:
            return None
        plan = None
        for w in marking.improvable:
            plan = improvement_session(net, tree, marking, w)
            if plan is not None:
                break
        if plan is None:
            plan = _direct_improvement(net, tree, marking.degree)
        if plan is None:
            return None
        seq, _ = plan
        self._plan = list(seq)
        self._plan_tree_edges = edges
        return self._plan[0]

    def is_legal(self, net: Network, config) -> bool:
        from repro.core.fr import is_fr_tree
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return False
        return is_fr_tree(net, tree)


def guided_mst_protocol() -> ComposedProtocol:
    """The full silent self-stabilizing MST construction (Corollary 6.1)."""
    digest = DigestLayer(fields=ORACLE_DIGEST_FIELDS)
    return ComposedProtocol(
        [MalleableTreeProtocol(), NCALabelLayer(), digest, GuidedMST(digest)],
        name="guided-mst")


def guided_mdst_protocol() -> ComposedProtocol:
    """The full silent self-stabilizing near-MDST construction
    (Corollary 8.1)."""
    digest = DigestLayer(fields=ORACLE_DIGEST_FIELDS)
    return ComposedProtocol(
        [MalleableTreeProtocol(), NCALabelLayer(), digest, GuidedMDST(digest)],
        name="guided-mdst")

"""Distributed PLS-guided task protocols (Theorems 3.1 / 7.1, end to end).

Every task composes three ingredients, all guarded rules in the state
model:

* the :class:`~repro.core.swap.MalleableTreeProtocol` layer below —
  construction, redundant (d, s) labels, and the Section IV switch;
* task labels maintained as self-correcting fixpoints on the stable tree
  (distances for BFS; NCA labels and Boruvka traces for MST);
* a root-coordinated improvement loop in the style of Algorithm 1: the
  root cycles through *phases*, broadcast down the tree and acknowledged
  back up (a propagation-of-information-with-feedback discipline):

  - ``WORK``: labels settle; every node aggregates its best improvement
    candidate (convergecast); when the root's subtree is fully acked and no
    candidate exists, the system is legal and **silent**;
  - intermediate find phases where needed (MST aggregates the heaviest
    cycle edge for the chosen non-tree edge);
  - ``SWAP``: the chosen pair is broadcast; the nodes of the chain execute
    their local switches in order (each fires when its former chain child
    has completed, Fig. 1a), and completion flows back up as
    acknowledgements.

Self-stabilization is hierarchical: the tree layer recovers structure; the
phase/ack/candidate fields are self-correcting on the stable tree; a
spurious phase or stale candidate can cause at most a bounded number of
valid-but-useless switches before genuine WORK data drives real progress.
"""

from __future__ import annotations

from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.nca import NCALabel, label_is_ancestor
from repro.runtime.protocol import ComposedProtocol, NodeView, Protocol
from repro.runtime.registers import (
    NONE,
    RegisterSpec,
    custom_field,
    enum_field,
    flag_field,
)

__all__ = [
    "PhaseLayer",
    "GuidedBFS",
    "GuidedMST",
    "GuidedMDST",
    "NCALabelLayer",
    "guided_bfs_protocol",
    "guided_mst_protocol",
    "guided_mdst_protocol",
]

WORK = "WORK"
FINDF = "FINDF"
SWAP = "SWAP"


def _payload_field(name: str):
    """A broadcast/aggregation slot holding a small tuple or NONE.

    Bit accounting: payloads carry O(1) identities/weights plus up to two
    NCA labels; the analysis code measures NCA labels in their
    Gilbert–Moore wire format, the structural tuple here is the simulator
    representation.
    """

    def bits(net, value):
        if value is NONE:
            return 1
        return 1 + 6 * net.id_bits() + 2 * _label_bits(net, value)

    def corrupt(net, node, rng):
        if rng.random() < 0.5:
            return NONE
        arity = rng.choice((2, 3))
        return tuple(rng.randint(1, net.id_space) for _ in range(arity))

    return custom_field(name, lambda net, node: NONE, bits, corrupt)


def _label_bits(net, value) -> int:
    # conservative structural proxy; see DESIGN.md (the wire format is the
    # measured Gilbert-Moore encoding)
    return 2 * net.id_bits()


class PhaseLayer(Protocol):
    """Shared phase/ack machinery.  Subclasses define the task hooks."""

    name = "phase-layer"
    phases: tuple[str, ...] = (WORK, SWAP)
    #: next_phase consults the oracle over the whole configuration
    #: (tree_of_config + remote NCA labels), so a write anywhere can flip
    #: this layer's enabledness — the engine must not cache proposals
    #: across non-neighbor writes.
    read_locality = "global"

    # ------------------------------------------------------------------
    # task hooks
    # ------------------------------------------------------------------

    def own_candidate(self, view: NodeView):
        """This node's improvement candidate (a tuple ordered so that
        smaller = better), or NONE."""
        raise NotImplementedError

    def extra_fields(self) -> list:
        return []

    def extra_rules(self, view: NodeView, intended: dict) -> None:
        """Additional per-step updates (label fixpoints, switch roles)."""

    def next_phase(self, view: NodeView, phase: str, cand):
        """Root-only: (next phase, payload updates) when the subtree acked."""
        raise NotImplementedError

    def phase_done(self, view: NodeView, phase: str) -> bool:
        """Whether this node's own part of the phase is complete."""
        return True

    def labels_settled(self, view: NodeView) -> bool:
        """Whether this node's task labels are locally consistent (WORK)."""
        return True

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            enum_field("ph", self.phases, WORK),
            flag_field("ack"),
            _payload_field("cand"),
            _payload_field("bc"),
        ] + self.extra_fields())

    # tree-layer helpers ------------------------------------------------

    @staticmethod
    def tree_sound(view: NodeView) -> bool:
        return (view["d"] is not NONE and view["s"] is not NONE
                and not view["mark"] and view["swt"] is NONE)

    @staticmethod
    def children_of(view: NodeView) -> list[int]:
        me = view.id
        return [u for u in view.neighbors if view.nbr(u)["par"] == me]

    @staticmethod
    def is_root(view: NodeView) -> bool:
        return view["par"] is NONE

    def step(self, view: NodeView) -> dict | None:
        cur = view.state
        intended = dict()
        children = self.children_of(view)

        # ---- phase / broadcast copy-down --------------------------------
        if self.is_root(view):
            ph, bc = cur["ph"], cur["bc"]
        else:
            pst = view.nbr(view["par"]) if view["par"] in view.neighbors else None
            if pst is not None and "ph" in pst:
                ph, bc = pst["ph"], pst["bc"]
            else:
                ph, bc = cur["ph"], cur["bc"]
        intended["ph"] = ph
        intended["bc"] = bc

        # ---- candidate aggregation --------------------------------------
        own = self.own_candidate(view) if self.tree_sound(view) else NONE
        best = own
        for c in children:
            cc = view.nbr(c)["cand"]
            if cc is not NONE and (best is NONE or cc < best):
                best = cc
        intended["cand"] = best

        # ---- acknowledgement --------------------------------------------
        kids_ok = all(
            view.nbr(c)["ack"] and view.nbr(c)["ph"] == ph for c in children
        )
        settled = (self.tree_sound(view)
                   and (ph != WORK or self.labels_settled(view))
                   and self.phase_done(view, ph)
                   and cur["cand"] == best)
        intended["ack"] = bool(kids_ok and settled)

        # ---- root transition ---------------------------------------------
        if self.is_root(view) and intended["ack"]:
            move = self.next_phase(view, ph, best)
            if move is not None:
                nxt, payload = move
                intended["ph"] = nxt
                intended["bc"] = payload
                intended["ack"] = False

        # ---- task-specific extras -----------------------------------------
        self.extra_rules(view, intended)

        delta = {k: v for k, v in intended.items() if cur.get(k) != v}
        return delta or None


class GuidedBFS(PhaseLayer):
    """The Section III task, end to end distributed.

    Candidate: a node ``u`` with a neighbor ``v`` such that
    ``d(v) + 1 < d(u)`` proposes the swap ``e = {u, v}, f = {u, p(u)}``
    (largest gain wins the aggregation).  The SWAP phase broadcasts
    ``(u, v)``; ``u`` performs a single local switch through the tree
    layer.
    """

    name = "guided-bfs"
    phases = (WORK, SWAP)

    def own_candidate(self, view: NodeView):
        if self.is_root(view):
            return NONE
        du = view["d"]
        best = NONE
        for v in view.neighbors:
            st = view.nbr(v)
            dv = st["d"]
            if dv is NONE or st["rid"] != view["rid"]:
                continue
            if isinstance(dv, int) and dv + 1 < du:
                cand = (-(du - dv - 1), view.id, v)
                if best is NONE or cand < best:
                    best = cand
        return best

    def next_phase(self, view: NodeView, phase: str, cand):
        if phase == WORK:
            # malformed candidates (corruption) are flushed by the
            # aggregation fixpoint within a step; never act on them
            if cand is NONE or not (isinstance(cand, tuple) and len(cand) == 3):
                return None  # legal: stay silent
            _, u, v = cand
            return SWAP, (u, v)
        return WORK, NONE  # SWAP acked -> back to work

    def phase_done(self, view: NodeView, phase: str) -> bool:
        if phase != SWAP:
            return True
        bc = view["bc"]
        if bc is NONE or len(bc) != 2:
            return True
        u, v = bc
        if view.id != u:
            return True
        return view["par"] == v  # the designated switcher has re-parented

    def extra_rules(self, view: NodeView, intended: dict) -> None:
        # the designated switcher raises the tree-layer request
        if intended.get("ph") != SWAP:
            return
        bc = intended.get("bc", view["bc"])
        if bc is NONE or len(bc) != 2:
            return
        u, v = bc
        if view.id != u or view["par"] == v or view["swt"] is not NONE:
            return
        if v in view.neighbors and view["par"] is not NONE:
            intended["swt"] = v

    # ------------------------------------------------------------------

    def is_legal(self, net: Network, config) -> bool:
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return False
        dist = net.bfs_distances(tree.root)
        return all(tree.depth(v) == dist[v] for v in net.nodes)


def guided_bfs_protocol() -> ComposedProtocol:
    """The full silent self-stabilizing PLS-guided BFS construction."""
    return ComposedProtocol([MalleableTreeProtocol(), GuidedBFS()],
                            name="guided-bfs")


class NCALabelLayer(Protocol):
    """Distributed construction of the NCA labels (Section V) on the
    current tree: heavy-child pointers from the certified sizes, labels by
    parent derivation — self-correcting downward fixpoints, silent on a
    stable labeled tree.  Carries Lemma 5.1's certificate material."""

    name = "nca-labels"

    def register_spec(self, net: Network) -> RegisterSpec:
        def lam_bits(net_, value):
            if value is NONE:
                return 1
            return 1 + 2 * net_.id_bits()  # structural proxy (see DESIGN.md)

        return RegisterSpec([
            custom_field("hv", lambda n, v: NONE,
                         lambda n, v: 1 + n.id_bits(),
                         lambda n, v, rng: NONE),
            custom_field("lam", lambda n, v: NONE, lam_bits,
                         lambda n, v, rng: NONE),
        ])

    def step(self, view: NodeView) -> dict | None:
        cur = view.state
        me = view.id
        # freeze during SWAP phases: the chain roles of Fig. 1(a) are
        # derived from the *pre-swap* labels (Section V)
        if cur.get("ph") == SWAP:
            return None
        children = [u for u in view.neighbors if view.nbr(u)["par"] == me]
        # heavy child from the tree layer's certified sizes
        hv = NONE
        sizes = [(view.nbr(c)["s"], c) for c in children]
        if children and all(s is not NONE for s, _ in sizes):
            hv = min(sizes, key=lambda sc: (-sc[0], sc[1]))[1]
        # label derivation from the parent
        lam = NONE
        if view["par"] is NONE:
            lam = ((me, 0),)
        else:
            pst = view.nbr(view["par"]) if view["par"] in view.neighbors else None
            if pst is not None and pst.get("lam") not in (None, NONE):
                plam = pst["lam"]
                if pst.get("hv") == me:
                    apex, depth = plam[-1]
                    lam = plam[:-1] + ((apex, depth + 1),)
                else:
                    lam = plam + ((me, 0),)
        delta = {}
        if cur["hv"] != hv:
            delta["hv"] = hv
        if lam is not NONE and cur["lam"] != lam:
            delta["lam"] = lam
        return delta or None

    @staticmethod
    def labels_ok(net: Network, config, tree: RootedTree) -> bool:
        from repro.labeling.nca import NCALabeling
        ref = NCALabeling(net, tree)
        return all(config[v]["lam"] is not NONE
                   and NCALabel(config[v]["lam"]) == ref.labels[v]
                   for v in net.nodes)


def _lam_depth(segments) -> int:
    """Tree depth encoded by an NCA label (heavy hops + light edges)."""
    return sum(d for _, d in segments) + len(segments) - 1


def _nca_settled_at(view: NodeView) -> bool:
    """Whether the NCA layer's fixpoint is locally stable (mirrors
    :meth:`NCALabelLayer.step`)."""
    me = view.id
    children = [u for u in view.neighbors if view.nbr(u)["par"] == me]
    sizes = [(view.nbr(c)["s"], c) for c in children]
    if any(s is NONE for s, _ in sizes):
        return False
    hv = min(sizes, key=lambda sc: (-sc[0], sc[1]))[1] if children else NONE
    if view["hv"] != hv:
        return False
    if view["par"] is NONE:
        return view["lam"] == ((me, 0),)
    pst = view.nbr(view["par"])
    plam = pst.get("lam")
    if plam in (None, NONE):
        return False
    if pst.get("hv") == me:
        apex, depth = plam[-1]
        want = plam[:-1] + ((apex, depth + 1),)
    else:
        want = plam + ((me, 0),)
    return view["lam"] == want


class ChainSwapMixin:
    """Shared SWAP-phase behavior for tasks whose improvements are full
    ``T + e - f`` swaps executed as the Fig. 1(a) chain.

    Broadcast payload: ``(a, b, x, lam_a, lam_x)`` where ``e = {a, b}``
    (``a`` inside the detached subtree), and ``x`` is the child side of the
    removed edge ``f = {x, p(x)}``.  Every node derives its role from its
    own frozen NCA label: the chain is the tree path from ``a`` up to
    ``x``; each chain node re-parents onto its former chain child once that
    child has completed, ``a`` re-parents onto ``b`` first.
    """

    @staticmethod
    def _chain_role(view: NodeView, bc):
        """(on_chain, target_id) for this node, or (False, None)."""
        if bc is NONE or not (isinstance(bc, tuple) and len(bc) == 5):
            return False, None
        a, b, x, lam_a_raw, lam_x_raw = bc
        lam_raw = view["lam"]
        if lam_raw in (None, NONE):
            return False, None
        try:
            lam = NCALabel(tuple(lam_raw))
            lam_a = NCALabel(tuple(lam_a_raw))
            lam_x = NCALabel(tuple(lam_x_raw))
        except (TypeError, ValueError):
            return False, None
        if view.id == a:
            return True, b
        if not (label_is_ancestor(lam, lam_a) and label_is_ancestor(lam_x, lam)):
            return False, None
        # my former chain child: the unique neighbor strictly below me on
        # the path toward a (frozen pre-swap labels)
        my_depth = _lam_depth(lam.segments)
        for z in view.neighbors:
            zlam_raw = view.nbr(z).get("lam")
            if zlam_raw in (None, NONE):
                continue
            try:
                zlam = NCALabel(tuple(zlam_raw))
            except (TypeError, ValueError):
                continue
            if (label_is_ancestor(lam, zlam)
                    and label_is_ancestor(zlam, lam_a)
                    and _lam_depth(zlam.segments) == my_depth + 1):
                return True, z
        return False, None

    def chain_phase_done(self, view: NodeView, bc) -> bool:
        on_chain, target = self._chain_role(view, bc)
        if not on_chain:
            return True
        return view["par"] == target

    def chain_extra_rules(self, view: NodeView, intended: dict) -> None:
        if intended.get("ph") != SWAP:
            return
        bc = intended.get("bc", view["bc"])
        on_chain, target = self._chain_role(view, bc)
        if not on_chain or target is None:
            return
        if view["par"] == target or view["swt"] is not NONE:
            return
        if target not in view.neighbors:
            return
        if view.id == bc[0]:
            # the subtree endpoint fires first, unconditionally
            intended["swt"] = target
        else:
            # an inner chain node fires once its former child has left it
            tst = view.nbr(target)
            if tst["par"] != view.id and tst["swt"] is NONE:
                intended["swt"] = target


class _OracleGuidedTask(ChainSwapMixin, PhaseLayer):
    """Base for the MST and MDST tasks.

    The *execution* is fully distributed (tree layer, NCA labels, chain
    switches, phase waves).  The *detector's decision* — which ``(e, f)``
    to swap next — is computed at the root from the global configuration.
    The paper's companion report [14] implements this decision with
    convergecast/broadcast waves over the same certificates (Boruvka
    traces for MST, FR marks/witnesses for MDST); we reproduce those
    certificates and their verifiers sequentially
    (:mod:`repro.labeling.mst_pls`, :mod:`repro.labeling.fr_pls`) and keep
    the wave-level detector out of scope — see DESIGN.md, substitution 6.
    Space claims are measured on the certificates; round measurements
    cover construction, labeling and switching.
    """

    phases = (WORK, SWAP)

    def own_candidate(self, view: NodeView):
        return NONE

    def labels_settled(self, view: NodeView) -> bool:
        return _nca_settled_at(view)

    def phase_done(self, view: NodeView, phase: str) -> bool:
        if phase != SWAP:
            return True
        return self.chain_phase_done(view, view["bc"])

    def extra_rules(self, view: NodeView, intended: dict) -> None:
        self.chain_extra_rules(view, intended)

    # -- the oracle boundary -------------------------------------------

    def oracle_next_swap(self, net: Network, tree: RootedTree):
        """The next (e, f) improvement, or None when the tree is legal."""
        raise NotImplementedError

    def next_phase(self, view: NodeView, phase: str, cand):
        if phase == SWAP:
            return WORK, NONE
        net = view.net
        try:
            tree = tree_of_config(net, view._config)  # oracle: global read
        except ValueError:
            return None
        pair = self.oracle_next_swap(net, tree)
        if pair is None:
            return None  # legal: stay silent
        e, f = pair
        fx, fy = f
        x = fx if tree.parent(fx) == fy else fy
        detached = tree.subtree_nodes(x)
        a = e[0] if e[0] in detached else e[1]
        b = e[1] if a == e[0] else e[0]
        lam_a = view._config[a]["lam"]
        lam_x = view._config[x]["lam"]
        if lam_a in (None, NONE) or lam_x in (None, NONE):
            return None  # labels not ready; ack discipline will retry
        return SWAP, (a, b, x, tuple(lam_a), tuple(lam_x))


class GuidedMST(_OracleGuidedTask):
    """Algorithm 2 distributed (Corollary 6.1): red-rule swaps until the
    Boruvka-trace potential reaches zero (the unique MST)."""

    name = "guided-mst"

    def oracle_next_swap(self, net: Network, tree: RootedTree):
        from repro.core.mst import MSTPotential
        return MSTPotential().find_improvement(net, tree)

    def is_legal(self, net: Network, config) -> bool:
        from repro.baselines.sequential_mst import kruskal_mst
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return False
        return tree.edges() == kruskal_mst(net)


class GuidedMDST(_OracleGuidedTask):
    """Algorithm 4 distributed (Corollary 8.1): well-nested improvement
    sequences executed one chain swap at a time until the tree is an
    FR-tree (degree <= OPT + 1)."""

    name = "guided-mdst"

    def __init__(self) -> None:
        self._plan: list = []
        self._plan_tree_edges: frozenset | None = None

    def oracle_next_swap(self, net: Network, tree: RootedTree):
        from repro.core.fr import (fr_marking, improvement_session,
                                   _direct_improvement)
        edges = frozenset(tree.edges())
        if self._plan and self._plan_tree_edges == edges:
            e, f = self._plan[0]
            return e, f
        self._plan = []
        marking = fr_marking(net, tree)
        if marking.is_fr:
            return None
        plan = None
        for w in marking.improvable:
            plan = improvement_session(net, tree, marking, w)
            if plan is not None:
                break
        if plan is None:
            plan = _direct_improvement(net, tree, marking.degree)
        if plan is None:
            return None
        seq, _ = plan
        self._plan = list(seq)
        self._plan_tree_edges = edges
        return self._plan[0]

    def next_phase(self, view: NodeView, phase: str, cand):
        move = super().next_phase(view, phase, cand)
        if phase == SWAP and self._plan:
            # the swap just acked corresponds to the plan head; the next
            # WORK phase revalidates against the mutated tree
            e, _ = self._plan[0]
            try:
                tree = tree_of_config(view.net, view._config)
                if tuple(sorted(e)) in tree.edges():
                    self._plan.pop(0)
                    self._plan_tree_edges = frozenset(tree.edges())
            except ValueError:
                self._plan = []
        return move

    def is_legal(self, net: Network, config) -> bool:
        from repro.core.fr import is_fr_tree
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return False
        return is_fr_tree(net, tree)


def guided_mst_protocol() -> ComposedProtocol:
    """The full silent self-stabilizing MST construction (Corollary 6.1)."""
    return ComposedProtocol(
        [MalleableTreeProtocol(), NCALabelLayer(), GuidedMST()],
        name="guided-mst")


def guided_mdst_protocol() -> ComposedProtocol:
    """The full silent self-stabilizing near-MDST construction
    (Corollary 8.1)."""
    return ComposedProtocol(
        [MalleableTreeProtocol(), NCALabelLayer(), GuidedMDST()],
        name="guided-mdst")

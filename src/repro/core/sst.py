"""Silent self-stabilizing spanning tree + leader election (guarded rules).

This is instruction 1 of Algorithms 1 and 3 — the paper delegates it to
Datta–Larmore–Vemula [25]; we implement the classical bounded-distance
construction that plays that role:

* every node maintains ``(rid, par, d)``: the claimed root identity, parent
  pointer, and distance to the root;
* a node adopts the smallest root claim reachable through a neighbor,
  breaking ties by distance, as long as the distance stays below the public
  bound ``N >= n`` (the *incorruptible* constant ``n_bound``);
* claims of identities with no live owner ("ghost roots", planted by
  transient faults) are flushed because their minimal supporting distance
  strictly increases every round until it hits ``N``.

The protocol is silent: in the unique stable configuration every node
carries ``rid = min identity``, ``d = `` its BFS distance to that node, and
a parent realizing it.  Registers are O(log n) bits.  Stabilization takes
O(N) rounds under every scheduler (tested under all daemons from arbitrary
configurations).

This protocol doubles as the classical *ad hoc* BFS baseline of the
related-work discussion (Dolev–Israeli–Moran style); the paper's
PLS-guided machinery in :mod:`repro.core.swap` / :mod:`repro.core.tasks`
maintains arbitrary trees instead, and only this layer's *rule structure*
is reused there for recovery after faults.
"""

from __future__ import annotations

from repro.graphs.network import Network
from repro.runtime.columns import NONE_SENTINEL
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.registers import (
    NONE,
    RegisterSpec,
    counter_field,
    id_field,
    opt_id_field,
)

__all__ = ["SpanningTreeProtocol"]


class SpanningTreeProtocol(Protocol):
    """Min-identity leader election with a BFS spanning tree, silent."""

    name = "sst"
    #: every returned field differs from the register (the delta dicts
    #: below are built by comparing against ``own`` first), so the engine
    #: skips its no-op filter
    exact_deltas = True
    #: applying a proposal always lands the register on the rule's own
    #: fixpoint for the unchanged neighborhood: case A writes the stable
    #: root claim ``(me, NONE, 0)`` (best is still ``(me, 0)``), case B
    #: adopts the best claim with a witness parent that realizes it —
    #: re-evaluating either returns None until a neighbor changes
    settles_after_move = True

    def __init__(self) -> None:
        # per-network constant cache: n_bound is an incorruptible constant,
        # re-reading it through two property hops per transition evaluation
        # is measurable at engine call rates
        self._bound_net: Network | None = None
        self._bound1 = -1

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            id_field("rid"),
            opt_id_field("par"),
            counter_field("d", lambda n: n.n_bound),
        ])

    def fast_step(self, net: Network, config, me: int, nbr_rows) -> dict | None:
        """The transition rule on raw engine state (see Protocol.fast_step).

        This is the single implementation of the rule; :meth:`step` is a
        thin NodeView adapter over it, so the engine's fast path and the
        from-scratch rescan cannot disagree.
        """
        own = config[me]
        # all reachable claims: my own candidacy plus every neighbor claim
        # strictly better than my identity, with room left in the distance
        # bound (claims at distance >= N cannot be extended)
        best_rid, best_d = me, 0
        if net is not self._bound_net:
            self._bound_net = net
            self._bound1 = net.n_bound - 1
        bound1 = self._bound1  # d_u + 1 < bound  <=>  d_u < bound - 1
        for _, st in nbr_rows:
            rid_u, d_u = st["rid"], st["d"]
            # junk values are skipped: incomparable ones raise out of the
            # range test, comparable non-ints (floats, ...) are rejected by
            # the isinstance gate.  The gate runs only for candidates that
            # would improve ``best`` — rejected candidates never mutate
            # ``best`` either way, so the accepted set is exactly the seed
            # engine's isinstance-filter-first semantics.
            try:
                if (rid_u < me and -1 < d_u < bound1
                        and (rid_u < best_rid or (rid_u == best_rid
                                                  and d_u + 1 < best_d))
                        and isinstance(rid_u, int) and isinstance(d_u, int)):
                    best_rid, best_d = rid_u, d_u + 1
            except TypeError:
                continue
        # stability: the current claim is valid and as good as the best
        # available candidate (any valid parent achieving it is acceptable —
        # the rule does not churn between equivalent parents)
        rid, d = own["rid"], own["d"]
        if rid == best_rid and d == best_d:
            par = own["par"]
            if par is NONE:
                if rid == me and d == 0:
                    return None
            else:
                # inline nbr_or_none: membership on the precomputed
                # neighbor set, tolerating unhashable junk pointers
                try:
                    in_nbrs = par in net.neighbor_set(me)
                except TypeError:
                    in_nbrs = False
                if in_nbrs:
                    pst = config[par]
                    if (pst["rid"] == rid and pst["d"] == d - 1
                            and rid < me):
                        return None
        if best_rid == me:
            delta = {}
            if rid != me:
                delta["rid"] = me
            if own["par"] is not NONE:
                delta["par"] = NONE
            if d != 0:
                delta["d"] = 0
            return delta or None
        # deterministic tie-break: the smallest neighbor offering the claim
        # (nbr_rows is in ascending neighbor order, so first match wins)
        par_d = best_d - 1
        for par, st in nbr_rows:
            if st["rid"] == best_rid and st["d"] == par_d:
                break
        delta = {}
        if rid != best_rid:
            delta["rid"] = best_rid
        if own["par"] != par:
            delta["par"] = par
        if d != best_d:
            delta["d"] = best_d
        return delta or None

    def step(self, view: NodeView) -> dict | None:
        return self.fast_step(view.net, view._config, view.node,
                              view.nbr_states())

    def fast_step_slots(self, schema):
        """The same rule compiled to slot indices (Protocol.fast_step_slots).

        A line-by-line transliteration of :meth:`fast_step` with field
        names resolved to row positions once, here; the golden suite and
        the incremental-vs-rescan cross-check pin the two paths to each
        other at every scheduler selection.
        """
        RID, PAR, D = schema.slot("rid"), schema.slot("par"), schema.slot("d")
        cache: list = []  # (net, bound1, adjacency_sets) per-net constants

        def rule(net: Network, config, me: int, own, nbr_rows,
                 _c=cache) -> dict | None:
            best_rid, best_d = me, 0
            if not _c or _c[0] is not net:
                # adjacency_sets is the per-node neighbor-set table; the
                # rule only ever reads _c[2][me] — locality-equivalent to
                # net.neighbor_set(me), cached once to skip the property
                # hop on the parent-membership probe
                _c[:] = (net, net.n_bound - 1,
                         net.adjacency_sets)  # statics: ignore[L001]
            bound1 = _c[1]
            for _, st in nbr_rows:
                rid_u, d_u = st[RID], st[D]
                # improvement test first: once a good claim is adopted,
                # most neighbors fail it in one comparison.  best_rid is
                # always <= me, so rid_u < best_rid subsumes rid_u < me;
                # the tie arm re-checks it for the best_rid == me start.
                try:
                    if ((rid_u < best_rid
                         or (rid_u == best_rid and rid_u < me
                             and d_u + 1 < best_d))
                            and -1 < d_u < bound1
                            and isinstance(rid_u, int)
                            and isinstance(d_u, int)):
                        best_rid, best_d = rid_u, d_u + 1
                except TypeError:
                    continue
            rid, d = own[RID], own[D]
            if rid == best_rid and d == best_d:
                par = own[PAR]
                if par is NONE:
                    if rid == me and d == 0:
                        return None
                else:
                    try:
                        in_nbrs = par in _c[2][me]
                    except TypeError:
                        in_nbrs = False
                    if in_nbrs:
                        pst = config[par].row
                        if (pst[RID] == rid and pst[D] == d - 1
                                and rid < me):
                            return None
            if best_rid == me:
                delta = {}
                if rid != me:
                    delta[RID] = me
                if own[PAR] is not NONE:
                    delta[PAR] = NONE
                if d != 0:
                    delta[D] = 0
                return delta or None
            par_d = best_d - 1
            for par, st in nbr_rows:
                if st[RID] == best_rid and st[D] == par_d:
                    break
            delta = {}
            if rid != best_rid:
                delta[RID] = best_rid
            if own[PAR] != par:
                delta[PAR] = par
            if d != best_d:
                delta[D] = best_d
            return delta or None

        return rule

    def interrupt_step(self, schema):
        """The super-stabilization interrupt section (Protocol.interrupt_step).

        The classical parent-vanished correction: a node whose parent
        pointer was severed by the event (the incident edge removed, or
        the parent crashed) resets to a self-root claim ``(me, NONE, 0)``
        instead of waiting a round to rediscover it — the one prioritized
        write Dolev–Herman's interrupt section allows.  Nodes that merely
        gained or lost a non-parent neighbor are untouched; the ordinary
        rule re-proposes them through the dirty set.
        """
        RID, PAR, D = schema.slot("rid"), schema.slot("par"), schema.slot("d")

        def rule(net: Network, config, me: int, own, event) -> dict | None:
            if own[PAR] not in event.lost_neighbors(me):
                return None
            delta = {}
            if own[RID] != me:
                delta[RID] = me
            delta[PAR] = NONE
            if own[D] != 0:
                delta[D] = 0
            return delta

        return rule

    def fast_write_impact(self, schema):
        """Which neighbors a write can re-enable (Protocol.fast_write_impact).

        The rule reads a neighbor ``v`` only through its candidate
        contribution — ``(rid, d+1)`` when ``rid < me`` and ``d`` is a
        bounded int, nothing otherwise — and through the stability /
        witness probes, which match only values that *are* valid
        candidate contributions.  So after a write to ``v``:

        * a ``par``-only write changes nothing any neighbor reads;
        * otherwise neighbor ``u`` is affected only if ``u``'s parent
          pointer names ``v`` (the stability probe reads the parent's
          ``(rid, d)`` unconditionally), or ``v``'s contribution
          *mattered*: ``u``'s rule output depends on the contribution
          multiset only through its lexicographic minimum, the smallest
          neighbor achieving it, and the parent probe — and ``u``'s
          best reachable claim is already known to the engine: it is
          ``u``'s row merged with its fresh proposal.  Packing claims
          into ``rid * n_bound + d`` keys (valid ``d`` lives in
          ``[0, n_bound)``):

          - new key *below* ``u``'s best: a new minimum — evaluate;
          - new key *equal* to the best (a tie): the canonical witness
            moves only if ``u`` is mid-adoption with a witness larger
            than ``v`` (a stable ``u``'s probe does not care who else
            offers its claim) — evaluate exactly then;
          - old key equal to the best: ``v`` was *a* provider of the
            minimum, which matters only if ``u`` was adopting *through*
            ``v`` — any other provider (for an enabled ``u``, its
            witness is the smallest) still offers the same minimum, so
            the output is unchanged — evaluate only when ``u``'s
            effective witness is ``v``;
          - anything else leaves every read ``u`` makes unchanged.

          Any junk that defeats the packing — on either side —
          includes ``u`` conservatively.
        """
        RID, PAR, D = schema.slots("rid", "par", "d")
        cache: list = []  # (net, K, bound1, adjacency) per-net constants

        def impact(net: Network, rows, v: int, delta, old, proposal,
                   _c=cache) -> list[int] | tuple:
            if RID not in delta and D not in delta:
                return ()  # par-only: invisible to every neighbor
            if not _c or _c[0] is not net:
                K = net.n_bound
                _c[:] = (net, K, K - 1, net.adjacency)
            K = _c[1]
            bound1 = _c[2]
            row = rows[v]
            r_new, d_new = row[RID], row[D]
            r_old = old[RID] if RID in old else r_new
            d_old = old[D] if D in old else d_new
            # candidate-gate validity, u-independent part (isinstance
            # mirrors the rule's accepted set, bools included; junk that
            # would raise out of the rule's range test fails here too)
            ok_old = (isinstance(r_old, int) and isinstance(d_old, int)
                      and -1 < d_old < bound1)
            k_old = r_old * K + d_old + 1 if ok_old else 0
            ok_new = (isinstance(r_new, int) and isinstance(d_new, int)
                      and -1 < d_new < bound1)
            k_new = r_new * K + d_new + 1 if ok_new else 0
            if not ok_old and not ok_new:
                # no valid contribution either side: only children see it
                return [u for u in _c[3][v] if rows[u][PAR] == v]
            if ok_new and (not ok_old or r_new < r_old):
                lim = r_new  # a contribution is visible to u iff u > rid
            else:
                lim = r_old
            out = []
            for u in _c[3][v]:
                row_u = rows[u]
                if row_u[PAR] == v:
                    out.append(u)
                    continue
                if u <= lim:
                    continue  # invisible to u before and after
                nw = ok_new and r_new < u
                od = ok_old and r_old < u
                p = proposal[u]
                if p is None:
                    rb, db = row_u[RID], row_u[D]
                else:
                    rb = p[RID] if RID in p else row_u[RID]
                    db = p[D] if D in p else row_u[D]
                if not (isinstance(rb, int) and isinstance(db, int)
                        and -1 < db < K):
                    out.append(u)  # unpackable best claim: evaluate
                    continue
                kb = rb * K + db
                if nw and k_new <= kb:
                    if k_new < kb:
                        out.append(u)
                    elif p is not None:
                        # tie: only a smaller-id witness re-decides an
                        # adoption in flight (junk witness: evaluate)
                        wpar = p[PAR] if PAR in p else row_u[PAR]
                        if not isinstance(wpar, int) or v < wpar:
                            out.append(u)
                elif od and k_old == kb and p is not None:
                    wpar = p[PAR] if PAR in p else row_u[PAR]
                    if wpar == v:
                        out.append(u)
            return out

        return impact

    def vector_step(self, schema, cols):
        """The same rule over typed columns (Protocol.vector_step).

        Claims pack into one comparison key ``rid * K + dist`` with
        ``K = n_bound`` (dists live in ``[0, n_bound)``), so "adopt the
        best reachable claim" becomes one segment-min over the CSR edge
        arrays and stability one segment-or.  Deltas are rebuilt
        per-enabled-node in plain Python ints, byte-identical to
        :meth:`fast_step_slots`.  Declines (scalar fallback) whenever a
        needed column failed to encode or value magnitudes could
        overflow the packed key.
        """
        RID, PAR, D = schema.slots("rid", "par", "d")
        if cols.n < 2 or cols.e == 0 or cols.min_degree == 0:
            return None  # reduceat segments must all be non-empty
        K = cols.n_bound
        LIM = (2 ** 62) // K  # |value| < LIM keeps rid * K + d in int64
        if cols.id_space >= LIM:
            return None
        if cols.np is None:
            return self._compile_vector_py(RID, PAR, D, cols, LIM)

        np = cols.np
        starts = cols.nbr_offsets[:-1]
        nbr = cols.nbr_index
        nbr_ids = cols.nbr_ids
        owner = cols.owner_index
        ids_arr = cols.ids_arr
        ids_list = cols.ids
        E = cols.e
        bound1 = K - 1
        SENT = NONE_SENTINEL
        BIG = np.int64(2 ** 63 - 1)
        edge_range = np.arange(E, dtype=np.int64)
        seed_key = ids_arr * K  # every node's own candidacy: (me, 0)

        def rule(store, active, patch=None):
            if patch:
                return None  # always the bottom layer of compositions
            if not store.valid_slot(RID, PAR, D):
                return None
            rid = store.col(RID)
            par = store.col(PAR)
            d = store.col(D)
            # magnitude guard: junk (or NONE-encoded) rid/d beyond the
            # packable range declines to the scalar path, which handles
            # arbitrary ints
            if int(rid.min()) <= -LIM or int(rid.max()) >= LIM:
                return None
            if int(d.min()) <= -LIM or int(d.max()) >= LIM:
                return None
            rid_e = rid[nbr]
            d_e = d[nbr]
            cand = (rid_e < ids_arr[owner]) & (d_e > -1) & (d_e < bound1)
            key_e = np.where(cand, rid_e * K + d_e + 1, BIG)
            best_key = np.minimum(seed_key,
                                  np.minimum.reduceat(key_e, starts))
            best_rid = best_key // K
            best_d = best_key - best_rid * K
            # stability: claim matches the best, and the parent realizes
            # it (root claims need par = NONE, rid = me, d = 0)
            par_none = par == SENT
            root_ok = par_none & (rid == ids_arr) & (d == 0)
            pmatch = ((nbr_ids == par[owner]) & (rid_e == rid[owner])
                      & (d_e == d[owner] - 1))
            pok = np.logical_or.reduceat(pmatch, starts)
            stable = ((rid == best_rid) & (d == best_d)
                      & (root_ok | (~par_none & pok & (rid < ids_arr))))
            en_pos = np.nonzero(~stable)[0]
            if en_pos.size == 0:
                return {}
            # tie-break witness: first (= smallest-id) edge offering the
            # best claim; only read for non-root adoptions, which always
            # have one (the claim came from some neighbor)
            wmask = (rid_e == best_rid[owner]) & (d_e == best_d[owner] - 1)
            first = np.minimum.reduceat(
                np.where(wmask, edge_range, E), starts)
            wpar = nbr_ids[np.minimum(first, E - 1)]
            # decode the enabled slice to plain Python ints (tolist):
            # delta reprs feed golden hashes, numpy scalars must not leak
            en = en_pos.tolist()
            bra = best_rid[en_pos].tolist()
            bda = best_d[en_pos].tolist()
            ra = rid[en_pos].tolist()
            da = d[en_pos].tolist()
            pa = par[en_pos].tolist()
            wa = wpar[en_pos].tolist()
            out = {}
            for k, i in enumerate(en):
                me = ids_list[i]
                br = bra[k]
                r0 = ra[k]
                d0 = da[k]
                p0 = pa[k]
                delta = {}
                if br == me:
                    if r0 != me:
                        delta[RID] = me
                    if p0 != SENT:
                        delta[PAR] = NONE
                    if d0 != 0:
                        delta[D] = 0
                else:
                    if r0 != br:
                        delta[RID] = br
                    w = wa[k]
                    if p0 != w:
                        delta[PAR] = w
                    bd = bda[k]
                    if d0 != bd:
                        delta[D] = bd
                out[me] = delta
            return out

        return rule

    def _compile_vector_py(self, RID, PAR, D, cols, LIM):
        """The columnar rule on the ``array('q')`` fallback backend.

        Same loop shape as :meth:`fast_step_slots` but over encoded
        memoryviews and CSR positions — no per-node view or pair-list
        indirection.  Python ints cannot overflow, so the only encoded
        artifact to handle is the NONE sentinel (a NONE ``rid`` is never
        a candidate, mirroring the scalar rule's TypeError skip).
        """
        off = cols.nbr_offsets
        nbr = cols.nbr_index
        nbr_ids = cols.nbr_ids
        ids_list = cols.ids
        n = cols.n
        bound1 = cols.n_bound - 1
        SENT = NONE_SENTINEL

        def rule(store, active, patch=None):
            if patch:
                return None
            if not store.valid_slot(RID, PAR, D):
                return None
            rid = store.col(RID)
            par = store.col(PAR)
            d = store.col(D)
            out = {}
            for i in range(n):
                me = ids_list[i]
                lo = off[i]
                hi = off[i + 1]
                best_rid, best_d = me, 0
                for e in range(lo, hi):
                    j = nbr[e]
                    rid_u = rid[j]
                    if rid_u != SENT and rid_u < me:
                        d_u = d[j]
                        if (-1 < d_u < bound1
                                and (rid_u < best_rid
                                     or (rid_u == best_rid
                                         and d_u + 1 < best_d))):
                            best_rid, best_d = rid_u, d_u + 1
                r0 = rid[i]
                d0 = d[i]
                p0 = par[i]
                if r0 == best_rid and d0 == best_d:
                    if p0 == SENT:
                        if r0 == me and d0 == 0:
                            continue
                    else:
                        stable = False
                        for e in range(lo, hi):
                            if nbr_ids[e] == p0:
                                j = nbr[e]
                                if (rid[j] == r0 and d[j] == d0 - 1
                                        and r0 < me):
                                    stable = True
                                break
                        if stable:
                            continue
                if best_rid == me:
                    delta = {}
                    if r0 != me:
                        delta[RID] = me
                    if p0 != SENT:
                        delta[PAR] = NONE
                    if d0 != 0:
                        delta[D] = 0
                else:
                    par_d = best_d - 1
                    w = -1
                    for e in range(lo, hi):
                        j = nbr[e]
                        if rid[j] == best_rid and d[j] == par_d:
                            w = nbr_ids[e]
                            break
                    delta = {}
                    if r0 != best_rid:
                        delta[RID] = best_rid
                    if p0 != w:
                        delta[PAR] = w
                    if d0 != best_d:
                        delta[D] = best_d
                out[me] = delta
            return out

        return rule

    def probe_potential(self, net: Network, config) -> int:
        """Packed-claim sum: the telemetry layer's convergence potential.

        Every node contributes its claim packed into the comparison key
        the columnar rule already uses — ``rid * n_bound + d`` — so the
        sum strictly descends as nodes adopt smaller root claims and
        ghost-root distances are flushed upward then dropped.  Junk
        claims (non-int fields, values outside the packable range, as an
        adversary may plant) contribute the cap ``id_space * n_bound``:
        total on arbitrary configurations, and a fault can only raise
        the potential, never lower it.  Observer surface only
        (:data:`repro.runtime.protocol.OBS_ENTRYPOINTS`) — no rule reads
        this.
        """
        bound = net.n_bound
        cap = net.id_space * bound
        total = 0
        for v in net.nodes:
            st = config[v]
            rid, d = st["rid"], st["d"]
            if (type(rid) is int and type(d) is int
                    and 0 <= d < bound and 0 < rid * bound + d < cap):
                total += rid * bound + d
            else:
                total += cap
        return total

    def is_legal(self, net: Network, config) -> bool:
        """Legal: the min-identity BFS tree with exact distances."""
        root = net.min_id
        dist = net.bfs_distances(root)
        for v in net.nodes:
            st = config[v]
            if st["rid"] != root or st["d"] != dist[v]:
                return False
            if v == root:
                if st["par"] is not NONE:
                    return False
            else:
                p = st["par"]
                if p is NONE or p not in net.neighbors(v):
                    return False
                if dist[p] != dist[v] - 1:
                    return False
        return True

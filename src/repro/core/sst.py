"""Silent self-stabilizing spanning tree + leader election (guarded rules).

This is instruction 1 of Algorithms 1 and 3 — the paper delegates it to
Datta–Larmore–Vemula [25]; we implement the classical bounded-distance
construction that plays that role:

* every node maintains ``(rid, par, d)``: the claimed root identity, parent
  pointer, and distance to the root;
* a node adopts the smallest root claim reachable through a neighbor,
  breaking ties by distance, as long as the distance stays below the public
  bound ``N >= n`` (the *incorruptible* constant ``n_bound``);
* claims of identities with no live owner ("ghost roots", planted by
  transient faults) are flushed because their minimal supporting distance
  strictly increases every round until it hits ``N``.

The protocol is silent: in the unique stable configuration every node
carries ``rid = min identity``, ``d = `` its BFS distance to that node, and
a parent realizing it.  Registers are O(log n) bits.  Stabilization takes
O(N) rounds under every scheduler (tested under all daemons from arbitrary
configurations).

This protocol doubles as the classical *ad hoc* BFS baseline of the
related-work discussion (Dolev–Israeli–Moran style); the paper's
PLS-guided machinery in :mod:`repro.core.swap` / :mod:`repro.core.tasks`
maintains arbitrary trees instead, and only this layer's *rule structure*
is reused there for recovery after faults.
"""

from __future__ import annotations

from repro.graphs.network import Network
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.registers import (
    NONE,
    RegisterSpec,
    counter_field,
    id_field,
    opt_id_field,
)

__all__ = ["SpanningTreeProtocol"]


class SpanningTreeProtocol(Protocol):
    """Min-identity leader election with a BFS spanning tree, silent."""

    name = "sst"
    #: every returned field differs from the register (the delta dicts
    #: below are built by comparing against ``own`` first), so the engine
    #: skips its no-op filter
    exact_deltas = True

    def __init__(self) -> None:
        # per-network constant cache: n_bound is an incorruptible constant,
        # re-reading it through two property hops per transition evaluation
        # is measurable at engine call rates
        self._bound_net: Network | None = None
        self._bound1 = -1

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            id_field("rid"),
            opt_id_field("par"),
            counter_field("d", lambda n: n.n_bound),
        ])

    def fast_step(self, net: Network, config, me: int, nbr_rows) -> dict | None:
        """The transition rule on raw engine state (see Protocol.fast_step).

        This is the single implementation of the rule; :meth:`step` is a
        thin NodeView adapter over it, so the engine's fast path and the
        from-scratch rescan cannot disagree.
        """
        own = config[me]
        # all reachable claims: my own candidacy plus every neighbor claim
        # strictly better than my identity, with room left in the distance
        # bound (claims at distance >= N cannot be extended)
        best_rid, best_d = me, 0
        if net is not self._bound_net:
            self._bound_net = net
            self._bound1 = net.n_bound - 1
        bound1 = self._bound1  # d_u + 1 < bound  <=>  d_u < bound - 1
        for _, st in nbr_rows:
            rid_u, d_u = st["rid"], st["d"]
            # junk values are skipped: incomparable ones raise out of the
            # range test, comparable non-ints (floats, ...) are rejected by
            # the isinstance gate.  The gate runs only for candidates that
            # would improve ``best`` — rejected candidates never mutate
            # ``best`` either way, so the accepted set is exactly the seed
            # engine's isinstance-filter-first semantics.
            try:
                if (rid_u < me and -1 < d_u < bound1
                        and (rid_u < best_rid or (rid_u == best_rid
                                                  and d_u + 1 < best_d))
                        and isinstance(rid_u, int) and isinstance(d_u, int)):
                    best_rid, best_d = rid_u, d_u + 1
            except TypeError:
                continue
        # stability: the current claim is valid and as good as the best
        # available candidate (any valid parent achieving it is acceptable —
        # the rule does not churn between equivalent parents)
        rid, d = own["rid"], own["d"]
        if rid == best_rid and d == best_d:
            par = own["par"]
            if par is NONE:
                if rid == me and d == 0:
                    return None
            else:
                # inline nbr_or_none: membership on the precomputed
                # neighbor set, tolerating unhashable junk pointers
                try:
                    in_nbrs = par in net.neighbor_set(me)
                except TypeError:
                    in_nbrs = False
                if in_nbrs:
                    pst = config[par]
                    if (pst["rid"] == rid and pst["d"] == d - 1
                            and rid < me):
                        return None
        if best_rid == me:
            delta = {}
            if rid != me:
                delta["rid"] = me
            if own["par"] is not NONE:
                delta["par"] = NONE
            if d != 0:
                delta["d"] = 0
            return delta or None
        # deterministic tie-break: the smallest neighbor offering the claim
        # (nbr_rows is in ascending neighbor order, so first match wins)
        par_d = best_d - 1
        for par, st in nbr_rows:
            if st["rid"] == best_rid and st["d"] == par_d:
                break
        delta = {}
        if rid != best_rid:
            delta["rid"] = best_rid
        if own["par"] != par:
            delta["par"] = par
        if d != best_d:
            delta["d"] = best_d
        return delta or None

    def step(self, view: NodeView) -> dict | None:
        return self.fast_step(view.net, view._config, view.node,
                              view.nbr_states())

    def fast_step_slots(self, schema):
        """The same rule compiled to slot indices (Protocol.fast_step_slots).

        A line-by-line transliteration of :meth:`fast_step` with field
        names resolved to row positions once, here; the golden suite and
        the incremental-vs-rescan cross-check pin the two paths to each
        other at every scheduler selection.
        """
        RID, PAR, D = schema.slot("rid"), schema.slot("par"), schema.slot("d")

        def rule(net: Network, config, me: int, own, nbr_rows,
                 _self=self) -> dict | None:
            best_rid, best_d = me, 0
            if net is not _self._bound_net:
                _self._bound_net = net
                _self._bound1 = net.n_bound - 1
            bound1 = _self._bound1
            for _, st in nbr_rows:
                rid_u, d_u = st[RID], st[D]
                try:
                    if (rid_u < me and -1 < d_u < bound1
                            and (rid_u < best_rid or (rid_u == best_rid
                                                      and d_u + 1 < best_d))
                            and isinstance(rid_u, int)
                            and isinstance(d_u, int)):
                        best_rid, best_d = rid_u, d_u + 1
                except TypeError:
                    continue
            rid, d = own[RID], own[D]
            if rid == best_rid and d == best_d:
                par = own[PAR]
                if par is NONE:
                    if rid == me and d == 0:
                        return None
                else:
                    try:
                        in_nbrs = par in net.neighbor_set(me)
                    except TypeError:
                        in_nbrs = False
                    if in_nbrs:
                        pst = config[par].row
                        if (pst[RID] == rid and pst[D] == d - 1
                                and rid < me):
                            return None
            if best_rid == me:
                delta = {}
                if rid != me:
                    delta[RID] = me
                if own[PAR] is not NONE:
                    delta[PAR] = NONE
                if d != 0:
                    delta[D] = 0
                return delta or None
            par_d = best_d - 1
            for par, st in nbr_rows:
                if st[RID] == best_rid and st[D] == par_d:
                    break
            delta = {}
            if rid != best_rid:
                delta[RID] = best_rid
            if own[PAR] != par:
                delta[PAR] = par
            if d != best_d:
                delta[D] = best_d
            return delta or None

        return rule

    def is_legal(self, net: Network, config) -> bool:
        """Legal: the min-identity BFS tree with exact distances."""
        root = net.min_id
        dist = net.bfs_distances(root)
        for v in net.nodes:
            st = config[v]
            if st["rid"] != root or st["d"] != dist[v]:
                return False
            if v == root:
                if st["par"] is not NONE:
                    return False
            else:
                p = st["par"]
                if p is NONE or p not in net.neighbors(v):
                    return False
                if dist[p] != dist[v] - 1:
                    return False
        return True

"""Silent self-stabilizing spanning tree + leader election (guarded rules).

This is instruction 1 of Algorithms 1 and 3 — the paper delegates it to
Datta–Larmore–Vemula [25]; we implement the classical bounded-distance
construction that plays that role:

* every node maintains ``(rid, par, d)``: the claimed root identity, parent
  pointer, and distance to the root;
* a node adopts the smallest root claim reachable through a neighbor,
  breaking ties by distance, as long as the distance stays below the public
  bound ``N >= n`` (the *incorruptible* constant ``n_bound``);
* claims of identities with no live owner ("ghost roots", planted by
  transient faults) are flushed because their minimal supporting distance
  strictly increases every round until it hits ``N``.

The protocol is silent: in the unique stable configuration every node
carries ``rid = min identity``, ``d = `` its BFS distance to that node, and
a parent realizing it.  Registers are O(log n) bits.  Stabilization takes
O(N) rounds under every scheduler (tested under all daemons from arbitrary
configurations).

This protocol doubles as the classical *ad hoc* BFS baseline of the
related-work discussion (Dolev–Israeli–Moran style); the paper's
PLS-guided machinery in :mod:`repro.core.swap` / :mod:`repro.core.tasks`
maintains arbitrary trees instead, and only this layer's *rule structure*
is reused there for recovery after faults.
"""

from __future__ import annotations

from repro.graphs.network import Network
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.registers import (
    NONE,
    RegisterSpec,
    counter_field,
    id_field,
    opt_id_field,
)

__all__ = ["SpanningTreeProtocol"]


class SpanningTreeProtocol(Protocol):
    """Min-identity leader election with a BFS spanning tree, silent."""

    name = "sst"

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            id_field("rid"),
            opt_id_field("par"),
            counter_field("d", lambda n: n.n_bound),
        ])

    def step(self, view: NodeView) -> dict | None:
        me = view.id
        # all reachable claims: my own candidacy plus every neighbor claim
        # strictly better than my identity, with room left in the distance
        # bound (claims at distance >= N cannot be extended)
        best_rid, best_d = me, 0
        for u in view.neighbors:
            st = view.nbr(u)
            rid_u, d_u = st["rid"], st["d"]
            if not isinstance(rid_u, int) or not isinstance(d_u, int):
                continue
            if rid_u < me and 0 <= d_u and d_u + 1 < view.n_bound:
                if (rid_u, d_u + 1) < (best_rid, best_d):
                    best_rid, best_d = rid_u, d_u + 1
        if self._current_is_stable(view, best_rid, best_d):
            return None
        if best_rid == me:
            return {"rid": me, "par": NONE, "d": 0}
        # deterministic tie-break: the smallest neighbor offering the claim
        par = min(u for u in view.neighbors
                  if view.nbr(u)["rid"] == best_rid
                  and view.nbr(u)["d"] == best_d - 1)
        return {"rid": best_rid, "par": par, "d": best_d}

    def _current_is_stable(self, view: NodeView, best_rid: int,
                           best_d: int) -> bool:
        """Whether the node's current claim is valid and as good as the best
        available candidate (any valid parent achieving it is acceptable —
        the rule does not churn between equivalent parents)."""
        rid, par, d = view["rid"], view["par"], view["d"]
        if (rid, d) != (best_rid, best_d):
            return False
        if par is NONE:
            return rid == view.id and d == 0
        if par not in view.neighbors:
            return False
        pst = view.nbr(par)
        return pst["rid"] == rid and pst["d"] == d - 1 and rid < view.id

    def is_legal(self, net: Network, config) -> bool:
        """Legal: the min-identity BFS tree with exact distances."""
        root = net.min_id
        dist = net.bfs_distances(root)
        for v in net.nodes:
            st = config[v]
            if st["rid"] != root or st["d"] != dist[v]:
                return False
            if v == root:
                if st["par"] is not NONE:
                    return False
            else:
                p = st["par"]
                if p is NONE or p not in net.neighbors(v):
                    return False
                if dist[p] != dist[v] - 1:
                    return False
        return True

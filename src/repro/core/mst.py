"""PLS-guided MST construction (Section VI, Algorithm 2, Corollary 6.1).

The potential: run Boruvka virtually on the current tree ``T`` and store
each node's fragment/selected-edge trace (:mod:`repro.labeling.mst_pls`).
With ``phi_x(T)`` = the largest level prefix of ``x``'s trace whose
selected edges are minimum-weight outgoing edges *in G*,

    phi(T) = k * n - sum_x phi_x(T),        phi_max <= n * ceil(log2 n) + n.

``phi(T) = 0`` iff ``T`` is the (unique, by distinct weights) MST.

The improvement (Algorithm 2, lines 6–9): pick a node ``u`` and level ``i``
with ``phi_u = i < k``; let ``e`` be the true minimum-weight outgoing edge
of ``F_{i+1}(u)`` in ``G`` (by the cut property, ``e`` belongs to the MST)
and ``f`` the maximum-weight edge of the fundamental cycle of ``T + e``
(by Tarjan's red rule, ``f`` belongs to no MST).

**Reproduction note** (recorded in EXPERIMENTS.md): with the trace
*recomputed from scratch* after each swap — the only construction the
paper's text fully specifies — ``phi`` is NOT always monotone: a swap can
reshuffle the whole fragment hierarchy (and even change ``k``).  The paper
asserts ``phi(T+e-f) < phi(T)`` for its incrementally *updated* labels
(Algorithm 2 line 11), whose update rule is not spelled out.  Termination
here rests on a stronger invariant of the same improvement step: each swap
adds an MST edge and removes a non-MST edge, so ``|T ∩ MST|`` strictly
increases and at most ``n - 1`` swaps ever happen — comfortably inside the
paper's ``phi_max = n ceil(log n)`` iteration bound.  ``phi`` remains the
*measured* potential: zero exactly at the MST, reported by the benchmarks.
"""

from __future__ import annotations

from repro.core.potential import CyclicalDecreasingPotential
from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.mst_pls import (
    boruvka_trace,
    find_mst_violation,
    min_outgoing_graph_edge,
    phi_values,
)

__all__ = ["MSTPotential"]


class MSTPotential(CyclicalDecreasingPotential):
    """phi(T) = k*n - sum_x phi_x(T) over the Boruvka trace of T."""

    name = "mst-potential"

    def value(self, net: Network, tree: RootedTree) -> int:
        k, phis = phi_values(net, tree)
        return k * net.n - sum(phis.values())

    def find_improvement(self, net: Network, tree: RootedTree):
        trace = boruvka_trace(net, tree)
        violation = find_mst_violation(net, tree, trace)
        if violation is None:
            return None
        u, i = violation  # trace level i (0-based) = the paper's f_{i+1}
        fragment_of = {x: trace[x][i].fragment for x in net.nodes}
        e = min_outgoing_graph_edge(net, fragment_of, fragment_of[u])
        cycle_edges = tree.fundamental_cycle_edges(e)
        f = max(cycle_edges, key=net.weight_of)
        return e, f

    def max_value(self, net: Network) -> int:
        # k <= ceil(log2 n) + 1 levels, phi <= k * n
        k_max = max(1, net.n - 1).bit_length() + 1
        return k_max * net.n

"""Rooted spanning trees, fundamental cycles, and edge swaps.

This is the *sequential* tree algebra underpinning the whole reproduction:
the paper's trees are distributedly encoded by parent pointers (Section
II-B), and its local-search framework lives on two operations:

* ``fundamental_cycle(e)`` — the cycle formed by a non-tree edge ``e`` and
  the tree path between its endpoints (footnote 2 of the paper);
* ``swap(e, f)`` — the transformation ``T <- T + e - f`` with ``f`` on the
  fundamental cycle of ``e`` (Algorithm 1, instruction 4).

The distributed protocols manipulate the same objects through registers;
the verifiers and tests use this module as the oracle.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping

from repro.graphs.network import Network, UWEdge

__all__ = [
    "RootedTree",
    "bfs_tree",
    "dfs_tree",
    "random_spanning_tree",
    "tree_from_edges",
]


class RootedTree:
    """A rooted spanning tree of a network, encoded by parent pointers.

    Invariants (checked at construction): exactly one root with parent
    ``None``; every other node's parent is a graph neighbor; following
    parents always reaches the root; all of the network's nodes appear.
    """

    def __init__(self, net: Network, parent: Mapping[int, int | None]) -> None:
        self.net = net
        self._parent: dict[int, int | None] = {}
        roots = [v for v in net.nodes if parent.get(v) is None]
        if len(roots) != 1:
            raise ValueError(f"expected exactly one root, found {sorted(roots)}")
        self._root = roots[0]
        for v in net.nodes:
            p = parent.get(v)
            if v == self._root:
                self._parent[v] = None
                continue
            if p is None or p not in net.neighbors(v):
                raise ValueError(f"parent of {v} is {p}, not a neighbor")
            self._parent[v] = p
        self._children: dict[int, tuple[int, ...]] = {v: () for v in net.nodes}
        kids: dict[int, list[int]] = {v: [] for v in net.nodes}
        for v, p in self._parent.items():
            if p is not None:
                kids[p].append(v)
        for v in net.nodes:
            self._children[v] = tuple(sorted(kids[v]))
        self._depth = self._compute_depths()
        self._edge_set = {UWEdge(v, p) for v, p in self._parent.items() if p is not None}

    # ------------------------------------------------------------------
    # construction-time validation
    # ------------------------------------------------------------------

    def _compute_depths(self) -> dict[int, int]:
        depth = {self._root: 0}
        frontier = [self._root]
        while frontier:
            nxt = []
            for u in frontier:
                for c in self._children[u]:
                    depth[c] = depth[u] + 1
                    nxt.append(c)
            frontier = nxt
        if len(depth) != self.net.n:
            unreachable = sorted(set(self.net.nodes) - set(depth))
            raise ValueError(f"parent map is not a spanning tree; "
                             f"unreachable from root: {unreachable}")
        return depth

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        return self._root

    def parent(self, v: int) -> int | None:
        return self._parent[v]

    @property
    def parent_map(self) -> dict[int, int | None]:
        return dict(self._parent)

    def children(self, v: int) -> tuple[int, ...]:
        return self._children[v]

    def depth(self, v: int) -> int:
        return self._depth[v]

    def height(self) -> int:
        return max(self._depth.values())

    def edges(self) -> set[tuple[int, int]]:
        """The tree's undirected edge set (n - 1 canonical edges)."""
        return set(self._edge_set)

    def has_edge(self, u: int, v: int) -> bool:
        return UWEdge(u, v) in self._edge_set

    def tree_neighbors(self, v: int) -> tuple[int, ...]:
        p = self._parent[v]
        if p is None:
            return self._children[v]
        return tuple(sorted(self._children[v] + (p,)))

    def degree(self, v: int) -> int:
        """Degree of v *in the tree* (parent plus children)."""
        return len(self._children[v]) + (0 if self._parent[v] is None else 1)

    def max_degree(self) -> int:
        return max(self.degree(v) for v in self.net.nodes)

    def nodes_of_degree(self, d: int) -> list[int]:
        return [v for v in self.net.nodes if self.degree(v) == d]

    def subtree_sizes(self) -> dict[int, int]:
        """Size of the subtree rooted at each node (the `s` labels)."""
        size = {v: 1 for v in self.net.nodes}
        for v in sorted(self.net.nodes, key=lambda u: -self._depth[u]):
            p = self._parent[v]
            if p is not None:
                size[p] += size[v]
        return size

    def subtree_nodes(self, v: int) -> set[int]:
        out = {v}
        stack = [v]
        while stack:
            u = stack.pop()
            for c in self._children[u]:
                out.add(c)
                stack.append(c)
        return out

    def path_to_root(self, v: int) -> list[int]:
        """[v, parent(v), ..., root]."""
        path = [v]
        while self._parent[path[-1]] is not None:
            path.append(self._parent[path[-1]])
        return path

    def is_ancestor(self, a: int, v: int) -> bool:
        """Whether ``a`` lies on the tree path from ``v`` to the root."""
        while v is not None:
            if v == a:
                return True
            v = self._parent[v]
        return False

    def nca(self, u: int, v: int) -> int:
        """Nearest common ancestor (oracle implementation)."""
        du, dv = self._depth[u], self._depth[v]
        while du > dv:
            u = self._parent[u]
            du -= 1
        while dv > du:
            v = self._parent[v]
            dv -= 1
        while u != v:
            u = self._parent[u]
            v = self._parent[v]
        return u

    def tree_path(self, u: int, v: int) -> list[int]:
        """The simple tree path from u to v (inclusive)."""
        w = self.nca(u, v)
        up = []
        x = u
        while x != w:
            up.append(x)
            x = self._parent[x]
        down = []
        x = v
        while x != w:
            down.append(x)
            x = self._parent[x]
        return up + [w] + list(reversed(down))

    # ------------------------------------------------------------------
    # fundamental cycles and swaps
    # ------------------------------------------------------------------

    def non_tree_edges(self) -> list[tuple[int, int]]:
        return [e for e in self.net.edges if e not in self._edge_set]

    def fundamental_cycle(self, e: tuple[int, int]) -> list[int]:
        """Nodes of the fundamental cycle of non-tree edge ``e`` (in path
        order from one endpoint to the other; the closing edge is ``e``)."""
        u, v = e
        if self.has_edge(u, v):
            raise ValueError(f"{e} is a tree edge; fundamental cycles need non-tree edges")
        if not self.net.has_edge(u, v):
            raise ValueError(f"{e} is not a graph edge")
        return self.tree_path(u, v)

    def fundamental_cycle_edges(self, e: tuple[int, int]) -> list[tuple[int, int]]:
        """Tree edges on the fundamental cycle of ``e``."""
        path = self.fundamental_cycle(e)
        return [UWEdge(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def swap(self, e: tuple[int, int], f: tuple[int, int]) -> "RootedTree":
        """``T + e - f`` (Algorithm 1, instruction 4), keeping the same root.

        ``e`` must be a non-tree edge and ``f`` a tree edge on the
        fundamental cycle of ``e``; the result is again a spanning tree.
        The detached component is re-rooted along the path from ``e``'s
        endpoint inside it, mirroring the chain of local switches the
        distributed protocol performs (Section IV, Fig. 1a).
        """
        e = UWEdge(*e)
        f = UWEdge(*f)
        if f not in set(self.fundamental_cycle_edges(e)):
            raise ValueError(f"{f} is not on the fundamental cycle of {e}")
        parent = dict(self._parent)
        # cut f = {x, p(x)}: identify the child side
        fx, fy = f
        x = fx if parent[fx] == fy else fy
        detached = self.subtree_nodes(x)
        a, b = e
        inside = a if a in detached else b
        outside = b if inside == a else a
        if outside in detached:
            raise AssertionError("both endpoints of e inside the detached part")
        # re-root the detached subtree at `inside`: reverse parents up to x
        chain = []
        y = inside
        while y != x:
            chain.append(y)
            y = parent[y]
        chain.append(x)
        for i in range(len(chain) - 1):
            parent[chain[i + 1]] = chain[i]
        parent[inside] = outside
        return RootedTree(self.net, parent)

    def rerooted(self, new_root: int) -> "RootedTree":
        """The same tree with parents re-oriented toward ``new_root``."""
        parent = dict(self._parent)
        chain = self.path_to_root(new_root)
        for i in range(len(chain) - 1):
            parent[chain[i + 1]] = chain[i]
        parent[new_root] = None
        return RootedTree(self.net, parent)

    def total_weight(self) -> int:
        return self.net.total_weight(self._edge_set)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RootedTree):
            return NotImplemented
        return self._parent == other._parent and self.net is other.net

    def __hash__(self) -> int:
        return hash(tuple(sorted((v, p) for v, p in self._parent.items())))

    def same_edges(self, other: "RootedTree") -> bool:
        """Equality as unrooted trees."""
        return self._edge_set == other._edge_set

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RootedTree(root={self._root}, n={self.net.n})"


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------


def bfs_tree(net: Network, root: int | None = None) -> RootedTree:
    """A breadth-first spanning tree (parents on shortest paths)."""
    r = net.min_id if root is None else root
    parent: dict[int, int | None] = {r: None}
    frontier = [r]
    while frontier:
        nxt = []
        for u in frontier:
            for v in net.neighbors(u):
                if v not in parent:
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    return RootedTree(net, parent)


def dfs_tree(net: Network, root: int | None = None) -> RootedTree:
    """A depth-first spanning tree (long paths — e.g. a Hamiltonian path in
    K_n — making it a good stress input for the relabeling waves)."""
    r = net.min_id if root is None else root
    parent: dict[int, int | None] = {}
    stack: list[tuple[int, int | None]] = [(r, None)]
    while stack:
        u, p = stack.pop()
        if u in parent:
            continue
        parent[u] = p
        for v in reversed(net.neighbors(u)):
            if v not in parent:
                stack.append((v, u))
    return RootedTree(net, parent)


def random_spanning_tree(net: Network, seed: int = 0,
                         root: int | None = None) -> RootedTree:
    """A random spanning tree via randomized DFS order."""
    rng = random.Random(seed)
    r = (root if root is not None else rng.choice(list(net.nodes)))
    parent: dict[int, int | None] = {r: None}
    stack = [r]
    while stack:
        u = stack.pop()
        nbrs = list(net.neighbors(u))
        rng.shuffle(nbrs)
        for v in nbrs:
            if v not in parent:
                parent[v] = u
                stack.append(v)
    return RootedTree(net, parent)


def tree_from_edges(net: Network, edges: Iterable[tuple[int, int]],
                    root: int) -> RootedTree:
    """Orient an undirected spanning edge set into a RootedTree."""
    adj: dict[int, list[int]] = {v: [] for v in net.nodes}
    count = 0
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
        count += 1
    if count != net.n - 1:
        raise ValueError(f"expected {net.n - 1} edges, got {count}")
    parent: dict[int, int | None] = {root: None}
    stack = [root]
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if v not in parent:
                parent[v] = u
                stack.append(v)
    return RootedTree(net, parent)

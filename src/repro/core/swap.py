"""The distributed tree layer with loop-free edge switching (Section IV).

One protocol maintains, at every node, the register
``(rid, par, d, s, mark, swt)``:

* ``(rid, par, d, s)`` is the *redundant labeling* of the malleable scheme
  (Lemma 4.1): root identity, parent pointer, distance to the root and
  subtree size, where ``d`` / ``s`` may hold the discard symbol NONE;
* ``mark`` is the prune-size wave flag: it is raised at the old parent
  ``w`` (which sees a child requesting a switch) and at the new parent
  ``w'`` (which sees a neighbor targeting it), climbs to the root along
  parent pointers, and sizes are then pruned *downward* along the marked
  paths — exactly the wave order of Fig. 1(b), which keeps every
  intermediate configuration accepted by the Lemma 4.1 verifier;
* ``swt`` is the switch request: setting ``swt = w'`` at node ``v`` makes
  the protocol perform the three phases of the local switch
  ``p(v): w -> w'`` and clear ``swt`` at the switching step.

Rule groups (every step writes the whole register atomically):

1. *construction/adoption* (the SST rules of :mod:`repro.core.sst`): fire
   only on structural breakage — wrong root claims, invalid parents,
   counter overflow — and rebuild the tree toward the min-identity root;
2. *switching*: an initiator with ``swt = w'`` waits until ``w`` and ``w'``
   show ``(d, _)`` and all its children show ``(_, s)``, then atomically
   re-parents and updates its distance;
3. *mark maintenance*: ``mark`` is a pure function of the neighborhood
   (self-correcting: spurious marks collapse);
4. *size rules*: marked nodes prune top-down (a node prunes when its parent
   is pruned or it is the root); unmarked nodes recompute ``1 + sum of
   children`` bottom-up once every child is concrete; overflow (> N) prunes
   the size entry (a full reset would discard valid election state and feed
   the central-daemon livelock, see ``_best_claim``);
5. *distance rules*: children of a node with a pending switch prune; NONE
   propagates downward; otherwise ``d = d(parent) + 1`` chases, and
   overflow (>= N) resets — this is what flushes parent-pointer cycles.

Silence: on a correctly labeled tree with no pending ``swt`` no rule fires.
"""

from __future__ import annotations

from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.malleable import MalleableLabel, MalleablePLS
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.registers import (
    NONE,
    RegisterSpec,
    flag_field,
    id_field,
    opt_counter_field,
    opt_id_field,
)

__all__ = ["MalleableTreeProtocol", "tree_of_config", "malleable_labels_of_config"]


def tree_of_config(net: Network, config) -> RootedTree:
    """The tree encoded by the parent pointers (raises if not a tree)."""
    parent = {v: (None if config[v]["par"] is NONE else config[v]["par"])
              for v in net.nodes}
    return RootedTree(net, parent)


def malleable_labels_of_config(net: Network, config) -> dict[int, MalleableLabel]:
    """Project a configuration onto Lemma 4.1 labels (for the verifier)."""
    out = {}
    for v in net.nodes:
        st = config[v]
        out[v] = MalleableLabel(
            rid=st["rid"],
            par=None if st["par"] is NONE else st["par"],
            d=None if st["d"] is NONE else st["d"],
            s=None if st["s"] is NONE else st["s"],
        )
    return out


class MalleableTreeProtocol(Protocol):
    """Tree maintenance + the Section IV switch, as one guarded-rule layer."""

    name = "malleable-tree"
    #: fast_step filters every field against the current register before
    #: returning, so the engine's per-proposal no-op scan is redundant
    exact_deltas = True

    def __init__(self) -> None:
        # per-network constant cache (see repro.core.sst): n_bound is an
        # incorruptible constant, re-reading it through attribute hops per
        # transition evaluation is measurable at engine call rates
        self._bound_net: Network | None = None
        self._bound = -1

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            id_field("rid"),
            opt_id_field("par"),
            opt_counter_field("d", lambda n: n.n_bound),
            opt_counter_field("s", lambda n: n.n_bound),
            flag_field("mark"),
            opt_id_field("swt"),
        ])

    # ------------------------------------------------------------------
    # the transition function
    # ------------------------------------------------------------------

    def fast_step(self, net: Network, config, me: int,
                  nbr_rows) -> dict | None:
        """The transition rule on raw engine state (see Protocol.fast_step).

        This is the single implementation of the rule; :meth:`step` is a
        thin NodeView adapter over it, so the engine's fast path and the
        from-scratch rescan cannot disagree.
        """
        own = config[me]
        intended = self._intended(net, config, me, nbr_rows)
        delta = {k: v for k, v in intended.items() if own[k] != v}
        return delta or None

    def step(self, view: NodeView) -> dict | None:
        return self.fast_step(view.net, view._config, view.node,
                              view.nbr_states())

    def fast_step_slots(self, schema):
        """The same rule compiled to slot indices (Protocol.fast_step_slots).

        A line-by-line transliteration of :meth:`_intended` and its
        helpers with field names resolved to row positions once, here.
        In compositions (the guided constructions) the engine hands this
        rule a patched ``own`` row, so — like every compiled slot rule —
        it reads its own register exclusively through ``own`` and its
        neighbors through ``nbr_rows`` / ``config[u].row``.  The golden
        suite, the incremental-vs-rescan cross-check, and the small-n
        model checker pin it to the NodeView path.
        """
        RID, PAR, D = schema.slot("rid"), schema.slot("par"), schema.slot("d")
        S, MARK, SWT = schema.slot("s"), schema.slot("mark"), schema.slot("swt")

        def self_root(me: int) -> dict:
            return {RID: me, PAR: NONE, D: 0, S: 1, MARK: False, SWT: NONE}

        def request_sane(net, config, me, own) -> bool:
            # mirrors _switch_request_sane
            swt = own[SWT]
            if swt not in net.neighbor_set(me):
                return False
            if own[PAR] is NONE or swt == own[PAR]:
                return False
            st = config[swt].row
            if st[PAR] == me:
                return False
            return st[RID] == own[RID]

        def switch_ready(config, me, own, nbr_rows, bound) -> bool:
            # mirrors _switch_ready
            wst, wpst = config[own[PAR]].row, config[own[SWT]].row
            if wst[S] is not NONE or wst[D] is NONE:
                return False
            if wpst[S] is not NONE or wpst[D] is NONE:
                return False
            if wpst[D] + 1 >= bound:
                return False
            if own[D] is NONE or own[S] is NONE:
                return False
            for _, st in nbr_rows:
                if st[PAR] == me:
                    if st[D] is not NONE or st[S] is NONE:
                        return False
            return True

        def intended(net, config, me, own, nbr_rows, bound) -> dict:
            # mirrors _intended (structural/_best_claim inlined)
            rid, par = own[RID], own[PAR]
            d, s, swt = own[D], own[S], own[SWT]

            # ---- 1. construction / adoption ----------------------------
            if par is NONE:
                broken = rid != me
            else:
                broken = (par not in net.neighbor_set(me)
                          or config[par].row[RID] != rid
                          or rid >= me)
            # the best adoptable neighbor claim (see _best_claim)
            best = None
            for u, st in nbr_rows:
                rid_u, d_u = st[RID], st[D]
                if not isinstance(rid_u, int) or rid_u >= me:
                    continue
                if d_u is NONE or not isinstance(d_u, int):
                    continue
                if d_u + 1 >= bound:
                    continue
                if st[S] is NONE or st[MARK] or st[SWT] is not NONE:
                    continue  # holder cannot support a child mid-switch
                cand = (rid_u, d_u, u)
                if best is None or cand < best:
                    best = cand
            if not broken and best is not None and best[0] < rid:
                broken = True
            if broken:
                if best is None or best[0] >= me:
                    return self_root(me)
                brid, bd, bpar = best
                return {RID: brid, PAR: bpar, D: bd + 1, S: 1,
                        MARK: False, SWT: NONE}

            # mark = I am w (child requests a switch) or w' (a neighbor
            # targets me) or the wave is climbing through me
            new_mark = False
            for _, st in nbr_rows:
                if st[PAR] == me and (st[SWT] is not NONE or st[MARK]):
                    new_mark = True
                    break
                if st[SWT] == me:
                    new_mark = True
                    break

            # ---- 2. switching -------------------------------------------
            new_par, new_d = par, d
            new_swt = swt
            if swt is not NONE:
                if not request_sane(net, config, me, own):
                    new_swt = NONE
                elif switch_ready(config, me, own, nbr_rows, bound):
                    new_par = swt
                    new_d = config[swt].row[D] + 1
                    new_swt = NONE
                # else: hold everything, waiting for the waves

            # ---- 4. size rules ------------------------------------------
            new_s = s
            if new_mark:
                parent_pruned = (new_par is NONE
                                 or config[new_par].row[S] is NONE)
                if parent_pruned:
                    new_s = NONE
                # else: hold s until the prune wave descends to the parent
            else:
                total = 1
                for _, st in nbr_rows:
                    if st[PAR] == me:
                        cs = st[S]
                        if cs is NONE:
                            total = None  # hold (a wave below is collapsing)
                            break
                        total += cs
                if total is not None:
                    # overflow (> N) prunes instead of resetting — see
                    # the rationale in _intended
                    new_s = NONE if total > bound else total

            # ---- 5. distance rules --------------------------------------
            if new_par is NONE:
                new_d = 0
            elif new_par == swt and new_swt is NONE and swt is not NONE:
                pass  # new_d already set by the switch
            else:
                pst = config[new_par].row
                if pst[SWT] is not NONE:
                    new_d = NONE      # pre-switch pruning below the initiator
                elif pst[D] is NONE:
                    new_d = NONE      # pruning propagates downward
                else:
                    want = pst[D] + 1
                    if want >= bound:
                        return self_root(me)
                    new_d = want

            # forbidden label pairs reset — see the rationale in _intended
            if new_d is NONE and new_s is NONE:
                return self_root(me)
            if new_mark and new_d is NONE and new_swt is NONE:
                return self_root(me)
            return {RID: rid, PAR: new_par, D: new_d, S: new_s,
                    MARK: new_mark, SWT: new_swt}

        def rule(net, config, me, own, nbr_rows, _self=self) -> dict | None:
            if net is not _self._bound_net:
                _self._bound_net = net
                _self._bound = net.n_bound
            new = intended(net, config, me, own, nbr_rows, _self._bound)
            delta = {k: v for k, v in new.items() if own[k] != v}
            return delta or None

        return rule

    def _intended(self, net: Network, config, me: int, rows) -> dict:
        if net is not self._bound_net:
            self._bound_net = net
            self._bound = net.n_bound
        bound = self._bound
        own = config[me]
        rid, par = own["rid"], own["par"]
        d, s, swt = own["d"], own["s"], own["swt"]

        # ---- 1. construction / adoption --------------------------------
        rebuilt = self._structural(net, config, me, rows, bound)
        if rebuilt is not None:
            return rebuilt
        # here: par is NONE with rid == me, or par is a neighbor sharing rid

        # mark = I am w (child requests a switch) or w' (a neighbor
        # targets me) or the wave is climbing through me (a marked child)
        new_mark = False
        for _, st in rows:
            if st["par"] == me and (st["swt"] is not NONE or st["mark"]):
                new_mark = True
                break
            if st["swt"] == me:
                new_mark = True
                break

        # ---- 2. switching ----------------------------------------------
        new_par, new_d = par, d
        new_swt = swt
        if swt is not NONE:
            if not self._switch_request_sane(net, config, me, own):
                new_swt = NONE
            elif self._switch_ready(config, me, own, rows, bound):
                new_par = swt
                new_d = config[swt]["d"] + 1
                new_swt = NONE
            # else: hold everything, waiting for the waves

        # ---- 4. size rules ---------------------------------------------
        new_s = s
        if new_mark:
            parent_pruned = (new_par is NONE
                             or config[new_par]["s"] is NONE)
            if parent_pruned:
                new_s = NONE
            # else: hold s until the prune wave descends to the parent
        else:
            total = 1
            for _, st in rows:
                if st["par"] == me:
                    cs = st["s"]
                    if cs is NONE:
                        total = None  # hold (a wave below is collapsing)
                        break
                    total += cs
            if total is not None:
                # overflow (> N) *prunes* the size instead of resetting
                # the whole register: the election state (rid, par, d)
                # may be perfectly valid while children claim junk
                # sizes, and a full reset reseeds fresh d = 0 claims
                # that let a deterministic central daemon cycle size
                # inflation against the distance flush forever.  Sizes
                # on genuine trees never exceed n <= N, so legal
                # operation is unaffected; parent cycles are flushed by
                # the distance chase, whose own overflow still resets.
                new_s = NONE if total > bound else total

        # ---- 5. distance rules ------------------------------------------
        if new_par is NONE:
            new_d = 0
        elif new_par == swt and new_swt is NONE and swt is not NONE:
            pass  # new_d already set by the switch
        else:
            pst = config[new_par]
            if pst["swt"] is not NONE:
                new_d = NONE          # pre-switch pruning below the initiator
            elif pst["d"] is NONE:
                new_d = NONE          # pruning propagates downward
            else:
                want = pst["d"] + 1
                if want >= bound:
                    return self._self_root(me)
                new_d = want

        # (NONE, NONE) labels are forbidden by the scheme and never arise in
        # legal operation (path prunes keep d, subtree prunes keep s); a node
        # reaching it — e.g. on a parent cycle where neither counter can
        # settle — resets, which is what breaks such cycles
        if new_d is NONE and new_s is NONE:
            return self._self_root(me)
        # marked ∧ distance-pruned is equally forbidden: marks live on the
        # two root paths of a switch (which keep d and prune s) while
        # distance prunes live strictly below the initiator (disjoint in
        # every legal wave, since the new parent sits outside the moving
        # subtree).  Without this reset a parent cycle can freeze forever:
        # the members mutually sustain each other's marks, the mark hold
        # rule freezes their (inconsistent) sizes, and the d = NONE prune
        # wave never bottoms out — a silent illegal configuration the
        # small-n model checker found.  Initiators holding a live switch
        # request are exempt (they hold everything by design).
        if new_mark and new_d is NONE and new_swt is NONE:
            return self._self_root(me)
        return {"rid": rid, "par": new_par, "d": new_d, "s": new_s,
                "mark": new_mark, "swt": new_swt}

    # ------------------------------------------------------------------
    # rule helpers
    # ------------------------------------------------------------------

    def _structural(self, net: Network, config, me: int, rows,
                    bound: int) -> dict | None:
        """The SST-style adoption layer; None when structurally sound."""
        own = config[me]
        rid, par = own["rid"], own["par"]
        if par is NONE:
            broken = rid != me
        else:
            broken = (par not in net.neighbor_set(me)
                      or config[par]["rid"] != rid
                      or rid >= me)
        # a visibly better root claim makes the node out of date
        best = self._best_claim(me, rows, bound)
        if not broken and best is not None and best[0] < rid:
            broken = True
        if not broken:
            return None
        if best is None or best[0] >= me:
            return self._self_root(me)
        brid, bd, bpar = best
        # s = 1 is a concrete placeholder: the bottom-up size fixpoint
        # corrects it, and concreteness keeps the (NONE, NONE) reset rule
        # from misfiring while neighbors still hold garbage requests
        return {"rid": brid, "par": bpar, "d": bd + 1, "s": 1,
                "mark": False, "swt": NONE}

    @staticmethod
    def _best_claim(me: int, rows, bound: int):
        """The best adoptable neighbor claim (rid, d, neighbor) or None.

        Election-layer soundness guard: a claim only counts when its
        holder's labels could actually support a child right now — both
        counters concrete, no pending switch, unmarked.  Without the
        guard a deterministic central daemon can starve the election
        forever: a broken node adopts a claim whose holder is mid-switch
        junk, the distance/size rules immediately prune the adopted
        labels to the forbidden ``(NONE, NONE)`` pair, the reset rule
        self-roots the node, and the better-claim check re-adopts — a
        two-step oscillation with no local fixpoint, so the node is
        always enabled and the adversary (e.g. central-max-id) never has
        to schedule anyone else.  With the guard the node settles
        (self-rooted) until its neighborhood clears, forcing the daemon
        to schedule the nodes that actually make progress.
        """
        best = None
        for u, st in rows:
            rid_u, d_u = st["rid"], st["d"]
            if not isinstance(rid_u, int) or rid_u >= me:
                continue
            if d_u is NONE or not isinstance(d_u, int):
                continue
            if d_u + 1 >= bound:
                continue
            if st["s"] is NONE or st["mark"] or st["swt"] is not NONE:
                continue  # holder cannot support a child mid-switch
            cand = (rid_u, d_u, u)
            if best is None or cand < best:
                best = cand
        return best

    @staticmethod
    def _self_root(me: int) -> dict:
        return {"rid": me, "par": NONE, "d": 0, "s": 1,
                "mark": False, "swt": NONE}

    @staticmethod
    def _switch_request_sane(net: Network, config, me: int, own) -> bool:
        swt = own["swt"]
        if swt not in net.neighbor_set(me):
            return False
        if own["par"] is NONE or swt == own["par"]:
            return False
        st = config[swt]
        if st["par"] == me:
            # re-parenting onto one's own child can never become ready:
            # the wave requires the target to keep a concrete distance,
            # but a child of the initiator prunes its distance — a
            # contradiction only corrupted/stale requests can ask for
            return False
        return st["rid"] == own["rid"]

    @staticmethod
    def _switch_ready(config, me: int, own, rows, bound: int) -> bool:
        """Fig. 1(b): w and w' both (d, _), all children (_, s), self intact."""
        wst, wpst = config[own["par"]], config[own["swt"]]
        if wst["s"] is not NONE or wst["d"] is NONE:
            return False
        if wpst["s"] is not NONE or wpst["d"] is NONE:
            return False
        if wpst["d"] + 1 >= bound:
            return False
        if own["d"] is NONE or own["s"] is NONE:
            return False
        for _, st in rows:
            if st["par"] == me:
                if st["d"] is not NONE or st["s"] is NONE:
                    return False
        return True

    # ------------------------------------------------------------------
    # legality (for tests)
    # ------------------------------------------------------------------

    def is_legal(self, net: Network, config) -> bool:
        """Legal: a spanning tree rooted at the min identity with the full
        (unpruned) redundant labeling, no marks, no pending switches."""
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return False
        if tree.root != net.min_id:
            return False
        sizes = tree.subtree_sizes()
        for v in net.nodes:
            st = config[v]
            if st["rid"] != net.min_id or st["mark"] or st["swt"] is not NONE:
                return False
            if st["d"] != tree.depth(v) or st["s"] != sizes[v]:
                return False
        return True

    def verifier_accepts(self, net: Network, config) -> bool:
        """The Lemma 4.1 verifier on the (rid, par, d, s) projection."""
        return MalleablePLS().verify(net, malleable_labels_of_config(net, config)).accepted

    def legal_configuration(self, net: Network, tree: RootedTree) -> dict:
        """The silent configuration encoding a given tree (for tests)."""
        sizes = tree.subtree_sizes()
        return {
            v: {
                "rid": tree.root, "par": tree.parent(v) or NONE,
                "d": tree.depth(v), "s": sizes[v],
                "mark": False, "swt": NONE,
            }
            for v in net.nodes
        }

"""The distributed tree layer with loop-free edge switching (Section IV).

One protocol maintains, at every node, the register
``(rid, par, d, s, mark, swt)``:

* ``(rid, par, d, s)`` is the *redundant labeling* of the malleable scheme
  (Lemma 4.1): root identity, parent pointer, distance to the root and
  subtree size, where ``d`` / ``s`` may hold the discard symbol NONE;
* ``mark`` is the prune-size wave flag: it is raised at the old parent
  ``w`` (which sees a child requesting a switch) and at the new parent
  ``w'`` (which sees a neighbor targeting it), climbs to the root along
  parent pointers, and sizes are then pruned *downward* along the marked
  paths — exactly the wave order of Fig. 1(b), which keeps every
  intermediate configuration accepted by the Lemma 4.1 verifier;
* ``swt`` is the switch request: setting ``swt = w'`` at node ``v`` makes
  the protocol perform the three phases of the local switch
  ``p(v): w -> w'`` and clear ``swt`` at the switching step.

Rule groups (every step writes the whole register atomically):

1. *construction/adoption* (the SST rules of :mod:`repro.core.sst`): fire
   only on structural breakage — wrong root claims, invalid parents,
   counter overflow — and rebuild the tree toward the min-identity root;
2. *switching*: an initiator with ``swt = w'`` waits until ``w`` and ``w'``
   show ``(d, _)`` and all its children show ``(_, s)``, then atomically
   re-parents and updates its distance;
3. *mark maintenance*: ``mark`` is a pure function of the neighborhood
   (self-correcting: spurious marks collapse);
4. *size rules*: marked nodes prune top-down (a node prunes when its parent
   is pruned or it is the root); unmarked nodes recompute ``1 + sum of
   children`` bottom-up once every child is concrete; overflow (> N) resets;
5. *distance rules*: children of a node with a pending switch prune; NONE
   propagates downward; otherwise ``d = d(parent) + 1`` chases, and
   overflow (>= N) resets — this is what flushes parent-pointer cycles.

Silence: on a correctly labeled tree with no pending ``swt`` no rule fires.
"""

from __future__ import annotations

from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.malleable import MalleableLabel, MalleablePLS
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.registers import (
    NONE,
    RegisterSpec,
    flag_field,
    id_field,
    opt_counter_field,
    opt_id_field,
)

__all__ = ["MalleableTreeProtocol", "tree_of_config", "malleable_labels_of_config"]


def tree_of_config(net: Network, config) -> RootedTree:
    """The tree encoded by the parent pointers (raises if not a tree)."""
    parent = {v: (None if config[v]["par"] is NONE else config[v]["par"])
              for v in net.nodes}
    return RootedTree(net, parent)


def malleable_labels_of_config(net: Network, config) -> dict[int, MalleableLabel]:
    """Project a configuration onto Lemma 4.1 labels (for the verifier)."""
    out = {}
    for v in net.nodes:
        st = config[v]
        out[v] = MalleableLabel(
            rid=st["rid"],
            par=None if st["par"] is NONE else st["par"],
            d=None if st["d"] is NONE else st["d"],
            s=None if st["s"] is NONE else st["s"],
        )
    return out


class MalleableTreeProtocol(Protocol):
    """Tree maintenance + the Section IV switch, as one guarded-rule layer."""

    name = "malleable-tree"

    def register_spec(self, net: Network) -> RegisterSpec:
        return RegisterSpec([
            id_field("rid"),
            opt_id_field("par"),
            opt_counter_field("d", lambda n: n.n_bound),
            opt_counter_field("s", lambda n: n.n_bound),
            flag_field("mark"),
            opt_id_field("swt"),
        ])

    # ------------------------------------------------------------------
    # the transition function
    # ------------------------------------------------------------------

    def step(self, view: NodeView) -> dict | None:
        cur = view.state
        intended = self._intended(view)
        delta = {k: v for k, v in intended.items() if cur[k] != v}
        return delta or None

    def _intended(self, view: NodeView) -> dict:
        me = view.id
        rid, par = view["rid"], view["par"]
        d, s, swt = view["d"], view["s"], view["swt"]

        # ---- 1. construction / adoption --------------------------------
        rebuilt = self._structural(view)
        if rebuilt is not None:
            return rebuilt
        # here: par is NONE with rid == me, or par is a neighbor sharing rid

        new_mark = self._trigger(view)

        # ---- 2. switching ----------------------------------------------
        new_par, new_d = par, d
        new_swt = swt
        if swt is not NONE:
            if not self._switch_request_sane(view):
                new_swt = NONE
            elif self._switch_ready(view):
                new_par = swt
                new_d = view.nbr(swt)["d"] + 1
                new_swt = NONE
            # else: hold everything, waiting for the waves

        # ---- 4. size rules ---------------------------------------------
        children = [u for u in view.neighbors if view.nbr(u)["par"] == me]
        new_s = s
        if new_mark:
            parent_pruned = (new_par is NONE
                             or view.nbr(new_par)["s"] is NONE)
            if parent_pruned:
                new_s = NONE
            # else: hold s until the prune wave descends to the parent
        else:
            child_sizes = [view.nbr(c)["s"] for c in children]
            if all(cs is not NONE for cs in child_sizes):
                total = 1 + sum(child_sizes)
                if total > view.n_bound:
                    return self._self_root(view)
                new_s = total
            # else: hold (a wave below is still collapsing)

        # ---- 5. distance rules ------------------------------------------
        if new_par is NONE:
            new_d = 0
        elif new_par == swt and new_swt is NONE and swt is not NONE:
            pass  # new_d already set by the switch
        else:
            pst = view.nbr(new_par)
            if pst["swt"] is not NONE:
                new_d = NONE          # pre-switch pruning below the initiator
            elif pst["d"] is NONE:
                new_d = NONE          # pruning propagates downward
            else:
                want = pst["d"] + 1
                if want >= view.n_bound:
                    return self._self_root(view)
                new_d = want

        # (NONE, NONE) labels are forbidden by the scheme and never arise in
        # legal operation (path prunes keep d, subtree prunes keep s); a node
        # reaching it — e.g. on a parent cycle where neither counter can
        # settle — resets, which is what breaks such cycles
        if new_d is NONE and new_s is NONE:
            return self._self_root(view)
        return {"rid": rid, "par": new_par, "d": new_d, "s": new_s,
                "mark": new_mark, "swt": new_swt}

    # ------------------------------------------------------------------
    # rule helpers
    # ------------------------------------------------------------------

    def _structural(self, view: NodeView) -> dict | None:
        """The SST-style adoption layer; None when structurally sound."""
        me = view.id
        rid, par = view["rid"], view["par"]
        broken = False
        if par is NONE:
            broken = rid != me
        else:
            broken = (par not in view.neighbors
                      or view.nbr(par)["rid"] != rid
                      or rid >= me)
        # a visibly better root claim makes the node out of date
        best = self._best_claim(view)
        if not broken and best is not None and best[0] < rid:
            broken = True
        if not broken:
            return None
        if best is None or best[0] >= me:
            return self._self_root(view)
        brid, bd, bpar = best
        # s = 1 is a concrete placeholder: the bottom-up size fixpoint
        # corrects it, and concreteness keeps the (NONE, NONE) reset rule
        # from misfiring while neighbors still hold garbage requests
        return {"rid": brid, "par": bpar, "d": bd + 1, "s": 1,
                "mark": False, "swt": NONE}

    def _best_claim(self, view: NodeView):
        """The best adoptable neighbor claim (rid, d, neighbor) or None."""
        best = None
        for u in view.neighbors:
            st = view.nbr(u)
            rid_u, d_u = st["rid"], st["d"]
            if not isinstance(rid_u, int) or rid_u >= view.id:
                continue
            if d_u is NONE or not isinstance(d_u, int):
                continue
            if d_u + 1 >= view.n_bound:
                continue
            cand = (rid_u, d_u, u)
            if best is None or cand < best:
                best = cand
        return best

    def _self_root(self, view: NodeView) -> dict:
        return {"rid": view.id, "par": NONE, "d": 0, "s": 1,
                "mark": False, "swt": NONE}

    def _trigger(self, view: NodeView) -> bool:
        """mark = I am w (child requests a switch) or w' (a neighbor targets
        me) or the wave is climbing through me (a marked child)."""
        me = view.id
        for u in view.neighbors:
            st = view.nbr(u)
            if st["par"] == me and (st["swt"] is not NONE or st["mark"]):
                return True
            if st["swt"] == me:
                return True
        return False

    def _switch_request_sane(self, view: NodeView) -> bool:
        swt = view["swt"]
        if swt not in view.neighbors:
            return False
        if view["par"] is NONE or swt == view["par"]:
            return False
        return view.nbr(swt)["rid"] == view["rid"]

    def _switch_ready(self, view: NodeView) -> bool:
        """Fig. 1(b): w and w' both (d, _), all children (_, s), self intact."""
        me = view.id
        w = view["par"]
        wp = view["swt"]
        wst, wpst = view.nbr(w), view.nbr(wp)
        if wst["s"] is not NONE or wst["d"] is NONE:
            return False
        if wpst["s"] is not NONE or wpst["d"] is NONE:
            return False
        if wpst["d"] + 1 >= view.n_bound:
            return False
        if view["d"] is NONE or view["s"] is NONE:
            return False
        for u in view.neighbors:
            st = view.nbr(u)
            if st["par"] == me:
                if st["d"] is not NONE or st["s"] is NONE:
                    return False
        return True

    # ------------------------------------------------------------------
    # legality (for tests)
    # ------------------------------------------------------------------

    def is_legal(self, net: Network, config) -> bool:
        """Legal: a spanning tree rooted at the min identity with the full
        (unpruned) redundant labeling, no marks, no pending switches."""
        try:
            tree = tree_of_config(net, config)
        except ValueError:
            return False
        if tree.root != net.min_id:
            return False
        sizes = tree.subtree_sizes()
        for v in net.nodes:
            st = config[v]
            if st["rid"] != net.min_id or st["mark"] or st["swt"] is not NONE:
                return False
            if st["d"] != tree.depth(v) or st["s"] != sizes[v]:
                return False
        return True

    def verifier_accepts(self, net: Network, config) -> bool:
        """The Lemma 4.1 verifier on the (rid, par, d, s) projection."""
        return MalleablePLS().verify(net, malleable_labels_of_config(net, config)).accepted

    def legal_configuration(self, net: Network, tree: RootedTree) -> dict:
        """The silent configuration encoding a given tree (for tests)."""
        sizes = tree.subtree_sizes()
        return {
            v: {
                "rid": tree.root, "par": tree.parent(v) or NONE,
                "d": tree.depth(v), "s": sizes[v],
                "mark": False, "swt": NONE,
            }
            for v in net.nodes
        }

"""Registers with exact bit accounting.

Each node owns a single-writer multiple-reader register partitioned into
named *fields*.  A :class:`Field` bundles:

* a default value (the value a freshly reset node holds),
* an exact bit-size function for the values it can store,
* a corruption sampler drawing an arbitrary value of the field's domain
  (transient faults may write *any* domain value, per Section II-A; note
  that a corrupted variable cannot hold a value of "arbitrary large size" —
  corruption stays within the field's domain).

The point of carrying encoders everywhere is that the paper's headline
claims are *space* claims (O(log n) / O(log^2 n) bits per register); the
benchmarks measure these numbers from live configurations instead of
trusting the implementation.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # schema.py imports nothing from here at runtime
    from repro.runtime.schema import StateSchema

from repro._bits import (
    bits_for_counter,
    bits_for_enum,
    bits_for_flag,
    bits_for_id,
    bits_for_option,
    bits_for_weight,
)
from repro.graphs.network import Network

__all__ = [
    "NONE",
    "Field",
    "RegisterSpec",
    "id_field",
    "opt_id_field",
    "counter_field",
    "opt_counter_field",
    "flag_field",
    "enum_field",
    "weight_field",
    "edge_field",
    "custom_field",
]


class _NoneValue:
    """The register null marker (the paper's bottom symbol)."""

    __slots__ = ()

    _instance: "_NoneValue | None" = None

    def __new__(cls) -> "_NoneValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NONE"

    def __bool__(self) -> bool:
        return False


NONE = _NoneValue()


@dataclass(frozen=True, slots=True)
class Field:
    """One named field of a node register.

    Attributes
    ----------
    name:
        Field name, unique within a :class:`RegisterSpec`.
    default:
        ``default(net, node) -> value`` — the reset value.
    bits:
        ``bits(net, value) -> int`` — exact storage cost of ``value``.
    corrupt:
        ``corrupt(net, node, rng) -> value`` — arbitrary domain value.
    """

    name: str
    default: Callable[[Network, int], object]
    bits: Callable[[Network, object], int]
    corrupt: Callable[[Network, int, random.Random], object]


def id_field(name: str, default: int | None = None) -> Field:
    """A field storing a node identity from {1, ..., id_space}.

    ``default``: None means "own id".
    """

    def default_fn(net: Network, node: int) -> int:
        return node if default is None else default

    return Field(
        name=name,
        default=default_fn,
        bits=lambda net, value: bits_for_id(net.id_space),
        corrupt=lambda net, node, rng: rng.randint(1, net.id_space),
    )


def opt_id_field(name: str) -> Field:
    """An identity or NONE (e.g. a parent pointer; the root stores NONE)."""

    def corrupt_fn(net: Network, node: int, rng: random.Random) -> object:
        if rng.random() < 0.2:
            return NONE
        # corruption of a pointer usually lands on some id; bias toward
        # neighbors so faults create plausible-looking (hard) states.
        if net.neighbors(node) and rng.random() < 0.7:
            return rng.choice(net.neighbors(node))
        return rng.randint(1, net.id_space)

    return Field(
        name=name,
        default=lambda net, node: NONE,
        bits=lambda net, value: bits_for_option(bits_for_id(net.id_space)),
        corrupt=corrupt_fn,
    )


def counter_field(name: str, max_value: Callable[[Network], int],
                  default: int = 0) -> Field:
    """A bounded integer counter in {0, ..., max_value(net)}."""

    return Field(
        name=name,
        default=lambda net, node: default,
        bits=lambda net, value: bits_for_counter(max_value(net)),
        corrupt=lambda net, node, rng: rng.randint(0, max_value(net)),
    )


def opt_counter_field(name: str, max_value: Callable[[Network], int]) -> Field:
    """A bounded counter or NONE (a prunable label entry)."""

    def corrupt_fn(net: Network, node: int, rng: random.Random) -> object:
        if rng.random() < 0.2:
            return NONE
        return rng.randint(0, max_value(net))

    return Field(
        name=name,
        default=lambda net, node: NONE,
        bits=lambda net, value: bits_for_option(bits_for_counter(max_value(net))),
        corrupt=corrupt_fn,
    )


def flag_field(name: str, default: bool = False) -> Field:
    return Field(
        name=name,
        default=lambda net, node: default,
        bits=lambda net, value: bits_for_flag(),
        corrupt=lambda net, node, rng: rng.random() < 0.5,
    )


def enum_field(name: str, states: Sequence[object],
               default_state: object = None) -> Field:
    """A field over a fixed finite state set."""
    if not states:
        raise ValueError("enum_field needs at least one state")
    default_value = states[0] if default_state is None else default_state

    return Field(
        name=name,
        default=lambda net, node: default_value,
        bits=lambda net, value: bits_for_enum(len(states)),
        corrupt=lambda net, node, rng: rng.choice(states),
    )


def weight_field(name: str) -> Field:
    """An edge weight or NONE."""

    def corrupt_fn(net: Network, node: int, rng: random.Random) -> object:
        if rng.random() < 0.2:
            return NONE
        return rng.randint(1, max(1, net.weight_space()))

    return Field(
        name=name,
        default=lambda net, node: NONE,
        bits=lambda net, value: bits_for_option(bits_for_weight(net.weight_space())),
        corrupt=corrupt_fn,
    )


def edge_field(name: str) -> Field:
    """An undirected edge (pair of ids) or NONE, e.g. a selected swap edge."""

    def corrupt_fn(net: Network, node: int, rng: random.Random) -> object:
        if rng.random() < 0.25:
            return NONE
        u = rng.randint(1, net.id_space)
        v = rng.randint(1, net.id_space)
        return (min(u, v), max(u, v)) if u != v else NONE

    return Field(
        name=name,
        default=lambda net, node: NONE,
        bits=lambda net, value: bits_for_option(2 * bits_for_id(net.id_space)),
        corrupt=corrupt_fn,
    )


def custom_field(
    name: str,
    default: Callable[[Network, int], object],
    bits: Callable[[Network, object], int],
    corrupt: Callable[[Network, int, random.Random], object],
) -> Field:
    """Escape hatch for structured labels (NCA labels, Boruvka traces)."""
    return Field(name=name, default=default, bits=bits, corrupt=corrupt)


class RegisterSpec:
    """The ordered collection of fields forming one node's register."""

    __slots__ = ("_fields", "_by_name", "_schema")

    def __init__(self, fields: list[Field]) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            dupes = sorted({x for x in names if names.count(x) > 1})
            raise ValueError(f"duplicate field names: {dupes}")
        self._fields: tuple[Field, ...] = tuple(fields)
        self._by_name: dict[str, Field] = {f.name: f for f in fields}
        #: compiled lazily, once per spec instance
        self._schema: StateSchema | None = None

    def schema(self) -> StateSchema:
        """The compiled :class:`~repro.runtime.schema.StateSchema`.

        Cached on the spec instance: the simulator binds one spec per
        ``(protocol, network)`` and compiles its slot layout exactly once.
        """
        if self._schema is None:
            from repro.runtime.schema import StateSchema
            self._schema = StateSchema(self)
        return self._schema

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self._fields)

    def field(self, name: str) -> Field:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def default_state(self, net: Network, node: int) -> dict[str, object]:
        return {f.name: f.default(net, node) for f in self._fields}

    def state_bits(self, net: Network, state: Mapping[str, object]) -> int:
        """Exact bit size of one node's register contents."""
        return sum(f.bits(net, state[f.name]) for f in self._fields)

    def corrupt_state(self, net: Network, node: int, rng: random.Random,
                      field_names: list[str] | None = None) -> dict[str, object]:
        """Arbitrary domain values for the chosen fields (all by default)."""
        targets = self.names if field_names is None else tuple(field_names)
        return {name: self._by_name[name].corrupt(net, node, rng) for name in targets}

    def merged(self, other: "RegisterSpec") -> "RegisterSpec":
        """Concatenation of two registers (layer composition)."""
        return RegisterSpec(list(self._fields) + list(other._fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterSpec({', '.join(self.names)})"

"""Guarded-rule protocols in the state model.

A protocol defines, for every node, the transition function delta applied in
one atomic step: read the node's own register and the registers of its
neighbors, compute, write.  Concretely :meth:`Protocol.step` receives a
:class:`NodeView` and returns either ``None`` (the node is *not enabled*:
its register already holds what delta would write) or a dict of field
updates (the node is *enabled*; applying the dict is its step).

Determinism requirement: ``step`` must be a pure function of the view (the
node's state, its neighbors' states, and the incorruptible constants).  The
simulator relies on this to cache enabledness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

from repro.graphs.network import Network
from repro.runtime.registers import RegisterSpec
from repro.runtime.schema import SlotState

__all__ = ["NodeView", "Protocol", "ComposedProtocol", "RULE_ENTRYPOINTS",
           "OBS_ENTRYPOINTS", "effective_delta", "adapt_step_to_slots"]

#: The rule surface of a protocol, in evaluation-preference order: the
#: names a subclass may implement to define its transition function.
#: ``repro.statics`` analyzes exactly these entrypoints, and
#: :meth:`Protocol.rule_contract` reports which of them a class actually
#: overrides — one definition of "the rule surface" shared by the
#: runtime, the analyzer, and the docs.
RULE_ENTRYPOINTS: tuple[str, ...] = ("step", "fast_step", "fast_step_slots",
                                     "vector_step", "shard_step",
                                     "interrupt_step")

#: The observer surface: probe callbacks the telemetry layer
#: (:mod:`repro.obs`) invokes *between* atomic steps, never from inside
#: one.  They read the whole configuration by design (a potential
#: function is a global quantity), produce no deltas, and are therefore
#: outside the rule contract — ``repro.statics`` never chases a call to
#: one of these names into L/W-series findings, exactly as it never
#: analyzes them as entrypoints.
OBS_ENTRYPOINTS: tuple[str, ...] = ("probe_potential",)


def effective_delta(protocol: "Protocol",
                    view: "NodeView") -> dict[str, object] | None:
    """The fields ``protocol.step`` would *actually change* at ``view``.

    Protocols may return updates that restate current values; enabledness
    is defined on the effective write (register differs from what delta
    would store), so those no-op fields are filtered out here.  Returns
    ``None`` when the node is not enabled.  This is the single definition
    of enabledness shared by the simulator's incremental engine and its
    from-scratch cross-check rescan.
    """
    delta = protocol.step(view)
    if not delta:
        return None
    own = view.state
    delta = {k: val for k, val in delta.items() if own[k] != val}
    return delta or None


class NodeView:
    """Everything a node may legally read during one atomic step.

    Exposes the node's incorruptible constants (its id, its neighbors, the
    incident edge weights, the bounds ``n_bound`` and ``id_space``), its own
    register, and its neighbors' registers.  Nothing else: protocols written
    against this interface cannot cheat by peeking at global state.
    """

    __slots__ = ("net", "node", "_config", "_rows")

    def __init__(self, net: Network, node: int,
                 config: Mapping[int, Mapping[str, object]],
                 rows: Mapping[int, tuple] | None = None) -> None:
        self.net = net
        self.node = node
        self._config = config
        # engine-provided precomputed (neighbor, register) pair tuples per
        # node, valid only when ``config`` is the engine's live configuration
        # (register dicts are mutated in place, never replaced); lets
        # :meth:`nbr_states` skip rebuilding the pair list on the hot path
        self._rows = rows

    # -- incorruptible constants --------------------------------------

    @property
    def id(self) -> int:
        return self.node

    @property
    def neighbors(self) -> tuple[int, ...]:
        return self.net.neighbors(self.node)

    @property
    def degree(self) -> int:
        return self.net.degree(self.node)

    @property
    def n_bound(self) -> int:
        """Public upper bound N >= n."""
        return self.net.n_bound

    @property
    def id_space(self) -> int:
        return self.net.id_space

    def weight(self, nbr: int) -> int:
        """Weight of the edge to neighbor ``nbr``."""
        return self.net.weight(self.node, nbr)

    # -- registers ------------------------------------------------------

    @property
    def state(self) -> Mapping[str, object]:
        """The node's own register."""
        return self._config[self.node]

    def __getitem__(self, field: str) -> object:
        return self._config[self.node][field]

    def nbr(self, nbr: int) -> Mapping[str, object]:
        """A neighbor's register (read-only)."""
        if not self.is_neighbor(nbr):
            raise KeyError(f"{nbr!r} is not a neighbor of {self.node}")
        return self._config[nbr]

    def is_neighbor(self, u) -> bool:
        """Whether ``u`` is a neighbor of this node (O(1)).

        Tolerates arbitrary junk (including unhashable values a corrupted
        custom field might hold): anything that cannot be a node identity
        is simply not a neighbor.
        """
        try:
            return u in self.net.neighbor_set(self.node)
        except TypeError:
            return False

    def nbr_or_none(self, u):
        """A neighbor's register, or None when ``u`` is not a neighbor.

        Single membership probe — the non-raising counterpart of
        :meth:`nbr` for rules that must tolerate junk pointers in
        corrupted registers.
        """
        try:
            if u in self.net.neighbor_set(self.node):
                return self._config[u]
        except TypeError:
            pass
        return None

    def nbr_states(self) -> Sequence[tuple[int, Mapping[str, object]]]:
        """``(neighbor_id, register)`` pairs in ascending neighbor order."""
        rows = self._rows
        if rows is not None:
            return rows[self.node]
        config = self._config
        return [(u, config[u]) for u in self.net.neighbors(self.node)]

    # -- derived tree-local helpers --------------------------------------
    # These only use readable information (own register + neighbor
    # registers), they are conveniences shared by the tree protocols.

    def tree_children(self, parent_field: str = "par") -> tuple[int, ...]:
        """Neighbors currently pointing at this node via ``parent_field``."""
        me = self.node
        return tuple(
            u for u in self.net.neighbors(me)
            if self._config[u].get(parent_field) == me
        )

    def tree_parent(self, parent_field: str = "par"):
        """This node's parent pointer (may be NONE or a non-neighbor junk id)."""
        return self._config[self.node].get(parent_field)


class Protocol(ABC):
    """A distributed algorithm in the state model."""

    #: Short name used in reports.
    name: str = "protocol"

    #: Optional engine fast path.  A protocol may override this with a
    #: method ``fast_step(net, config, node, nbr_rows) -> delta | None``
    #: computing *exactly* what :meth:`step` computes; ``nbr_rows`` is the
    #: ascending ``(neighbor, register)`` pair sequence for ``node``.  The
    #: simulator's re-proposal loop calls it directly when present, skipping
    #: NodeView dispatch on the hottest path.  Correct protocols implement
    #: the rule once in ``fast_step`` and delegate ``step`` to it, so the
    #: two paths cannot drift (see :class:`repro.core.sst`).
    #: Superseded on the hottest path by :meth:`fast_step_slots`; kept as
    #: the name-keyed compatibility contract.
    fast_step: object = None

    def fast_step_slots(self, schema):
        """Compile the slot-indexed engine fast path, or return ``None``.

        ``schema`` is the :class:`~repro.runtime.schema.StateSchema` the
        simulator compiled for this ``(protocol, network)`` binding.  A
        protocol that opts in resolves its field names to slot indices
        *once* and returns a rule

        ``rule(net, config, node, own, nbr_rows) -> dict[int, object] | None``

        where ``config`` maps every node to its live
        :class:`~repro.runtime.schema.SlotState` view (random access for
        e.g. parent lookups; raw rows via ``config[u].row``), ``own`` is
        the node's raw slot row, and ``nbr_rows`` is the ascending
        ``(neighbor, raw_row)`` pair sequence.  The returned delta is
        keyed by **slot index** and must compute exactly what
        :meth:`step` computes (the incremental-vs-rescan suite
        cross-checks this at every scheduler selection).

        Inside a :class:`ComposedProtocol` the composition passes each
        layer a *patched* ``own`` row carrying the updates of the layers
        below it at this node — a compiled rule must therefore read its
        own register only through ``own``, never through
        ``config[node]`` (neighbors are always read unpatched, as the
        state model prescribes).

        Default: ``None`` — the engine falls back to :attr:`fast_step`
        or :meth:`step` over the Mapping-compatible views.
        """
        return None

    def vector_step(self, schema, cols):
        """Compile the columnar bulk-evaluation path, or return ``None``.

        ``cols`` is the :class:`~repro.runtime.columns.ColumnStore` the
        simulator built for this ``(protocol, network)`` binding: one
        typed ``int64`` column per field over all nodes, plus CSR
        adjacency.  A protocol that opts in resolves its slots once and
        returns a rule

        ``rule(store, active, patch=None) ->
        dict[int, dict[int, object]] | None``

        evaluating **every** node of the network in one call (the engine
        invokes it exactly on all-dirty refreshes — synchronous rounds
        and bulk-dirty batches; ``active`` is reserved for masked
        partial evaluation and is currently always ``None``).  The
        result maps each *enabled* node to its slot-keyed delta — the
        exact dict :meth:`fast_step_slots` would return for that node,
        with plain Python values (``int`` / ``NONE``, never numpy
        scalars: reprs feed golden hashes and certificate digests).

        Returning ``None`` — at compile time *or* from the compiled rule
        at call time — declines the refresh: the engine falls back to
        the bit-identical scalar slot path.  Rules must decline whenever
        a column they actually read failed to encode
        (``store.valid_slot``), and may decline on any value range their
        vectorized arithmetic cannot represent.

        Composition: inside a :class:`ComposedProtocol`, each layer's
        rule is called with ``patch`` mapping nodes to the slot updates
        of the layers below (``None`` when empty).  A rule that cannot
        honor per-node own-register patches must return ``None`` when
        ``patch`` is non-empty rather than compute wrong deltas.

        Default: ``None`` — no columnar path; the store is not built.
        """
        return None

    #: Whether the rule surface is sound under partitioned (sharded)
    #: execution: every entrypoint must be a pure function of the node's
    #: closed 1-hop neighborhood *and nothing else* — no oracle consults,
    #: no cross-instance memo state — because a shard evaluates it on a
    #: subgraph where anything beyond the halo simply does not exist.
    #: Protocols whose steps consult a global oracle (the PLS-guided
    #: constructions) set this False; see ROADMAP item 5 for the plan to
    #: make the detector fully local and win this flag back.
    shardable: bool = True

    def shard_step(self, schema):
        """Compile the shard-local rule, or return ``None``.

        The sharded runtime (``repro.runtime.sharding``) evaluates owned
        nodes on a shard-local subgraph — owned nodes plus their 1-hop
        halo, with halo registers refreshed from the owning shards at
        every synchronous round edge.  That is sound exactly when the
        rule surface reads nothing beyond the closed neighborhood, so
        the default returns the compiled slot rule
        (:meth:`fast_step_slots`, falling back to the
        :func:`adapt_step_to_slots` bridge) when :attr:`shardable` holds
        and :attr:`read_locality` is ``"neighborhood"``, and ``None`` —
        declining sharded execution — otherwise.

        A subclass overriding this with a hand-written shard rule must
        keep the 1-hop footprint; ``repro.statics`` analyzes the
        override (``shard_step`` is a :data:`RULE_ENTRYPOINTS` member
        and a slot-indexed path for the S-series) and proves that
        statically.
        """
        if not self.shardable or self.read_locality != "neighborhood":
            return None
        return self.fast_step_slots(schema) or adapt_step_to_slots(self, schema)

    #: Set to True when :meth:`step` (and :attr:`fast_step`) only ever
    #: return *effective* writes — every returned field differs from the
    #: register's current value.  The engine then skips its per-proposal
    #: no-op filter.  Leave False (the default) when in doubt: returning a
    #: restating field with True silently corrupts enabledness.
    exact_deltas: bool = False

    #: How far :meth:`step` reads: ``"neighborhood"`` (the state model's
    #: 1-hop closed neighborhood — the default) or ``"global"`` (the step
    #: consults an oracle over the whole configuration, as the PLS-guided
    #: layers do at their oracle boundary).  The simulator uses this to
    #: decide how far a write invalidates cached proposals: declaring
    #: ``"neighborhood"`` while reading farther yields stale enabledness.
    read_locality: str = "neighborhood"

    #: Set to True when a node that has just applied its *own* proposed
    #: delta is guaranteed disabled until some neighbor's register next
    #: changes — i.e. the rule, re-evaluated on the post-write register
    #: against the unchanged neighborhood it was proposed from, returns
    #: ``None``.  The engine then retires the mover from the enabled set
    #: at apply time instead of re-evaluating its transition (roughly one
    #: rule evaluation saved per move).  Most silent protocols whose rule
    #: writes a local fixpoint have this property; leave False when in
    #: doubt — the claim is cross-checked by the incremental-vs-rescan
    #: suite, not by the engine.
    settles_after_move: bool = False

    def fast_write_impact(self, schema):
        """Compile the write-impact filter, or return ``None``.

        An opted-in protocol returns

        ``impact(net, rows, v, delta, old, proposal)
        -> Sequence[int] | None``

        called by the engine right after applying a single-node write:
        ``rows`` is the live slot-row table (post-write), ``delta`` the
        slot-keyed writes just applied to ``v``, ``old`` the displaced
        values of exactly those slots, and ``proposal`` the engine's
        fresh proposal table (slot-keyed delta or ``None`` per node,
        valid as of the pre-write configuration — a node's row merged
        with its proposal is the register its own rule would produce).
        It returns the neighbors of ``v`` whose transition output may
        have changed — a *sound over-approximation* of the affected
        set — or ``None`` to decline (the engine then invalidates the
        whole neighborhood, the default discipline).  A correct filter
        reads only ``v``'s and its neighbors' rows and proposals (the
        same 1-hop surface as the rule).

        This is an engine-side invalidation hint, not a rule entrypoint:
        it produces no deltas and is exempt from the rule contract; its
        soundness is pinned by the incremental-vs-rescan and golden
        bit-identity suites, which run with and without it.

        Default: ``None`` — every write invalidates its neighborhood.
        """
        return None

    def interrupt_step(self, schema):
        """Compile the topology-interrupt rule, or return ``None``.

        Super-stabilization's *interrupt section* (the dynamics engine,
        :mod:`repro.runtime.dynamics`): when a topology event removes
        part of a node's neighborhood, the node may execute one
        prioritized corrective write before normal scheduling resumes.
        A protocol that opts in resolves its slots once and returns a
        rule

        ``rule(net, config, node, own, event) -> dict[int, object] | None``

        called once per *touched surviving* node right after the event's
        :class:`~repro.graphs.network.Network` revision is bound:
        ``net`` is the post-event network, ``own`` the node's raw slot
        row, and ``event`` the topology event
        (:mod:`repro.runtime.dynamics.events`).  The returned delta is
        slot-keyed, like :meth:`fast_step_slots`.  The rule must be a
        function of the node's own register and the event only — it is a
        :data:`RULE_ENTRYPOINTS` member, so ``repro.statics`` proves its
        read/write footprint like any other rule.

        Default: ``None`` — no interrupt section; touched nodes are
        simply re-proposed through the ordinary dirty-set machinery.
        """
        return None

    def on_topology_event(self, old_net: Network, new_net: Network,
                          event: object) -> bool:
        """Lifecycle hook: a topology event replaced ``old_net``.

        Invoked by the dynamics engine after it binds the revised
        network but before re-proposing.  Protocols holding per-network
        caches (oracle memos keyed under the old topology) flush them
        here.  Returns True when the flush invalidates *every* cached
        proposal (the engine then raises the all-dirty flag instead of
        dirtying only the event's write-neighborhood).  Like
        :meth:`fast_write_impact`, this is an engine-side hook, not a
        rule entrypoint: it produces no deltas.  Default: keep nothing,
        invalidate nothing extra.
        """
        return False

    @abstractmethod
    def register_spec(self, net: Network) -> RegisterSpec:
        """The register layout each node uses on network ``net``."""

    @abstractmethod
    def step(self, view: NodeView) -> dict[str, object] | None:
        """The transition function delta.

        Return ``None`` (or an empty/no-op dict) when the register already
        holds what delta computes; otherwise return the new values for the
        fields that change.
        """

    # -- observer surface (repro.obs probes; not part of the rule) --------

    def probe_potential(self, net: Network,
                        config: Mapping[int, Mapping[str, object]],
                        ) -> int | None:
        """The protocol's convergence potential on ``config``, or ``None``.

        An :data:`OBS_ENTRYPOINTS` member: a *global* measurement the
        telemetry layer samples at round edges to plot per-round potential
        descent (the quantity the paper's round-complexity arguments
        decrease).  Deliberately outside the rule surface — nodes never
        read it, rules never call it, and the engine only invokes it
        between atomic steps, so its whole-configuration read does not
        violate any layer's locality contract.  Implementations must be
        total on *arbitrary* (corrupted) configurations and side-effect
        free.  Default: no potential defined.
        """
        return None

    # -- contract metadata ------------------------------------------------

    def rule_contract(self) -> dict[str, object]:
        """Machine-readable summary of this protocol's rule surface.

        Reports the declared contracts (:attr:`read_locality`,
        :attr:`exact_deltas`) plus which of :data:`RULE_ENTRYPOINTS`
        this class actually implements (i.e. overrides away from the
        :class:`Protocol` defaults).  ``repro.statics`` drives its
        analysis off this — the analyzer never guesses at the surface —
        and compositions report their layers recursively.
        """
        cls = type(self)

        def _overridden(name: str) -> bool:
            defining = next(
                (c for c in cls.__mro__ if name in c.__dict__), None)
            return defining is not None and defining is not Protocol

        entrypoints = {name: _overridden(name) for name in RULE_ENTRYPOINTS}
        # the observer surface is reported separately so tooling can see
        # it exists without ever mistaking it for part of the rule
        observers = {name: _overridden(name) for name in OBS_ENTRYPOINTS}
        return {
            "protocol": self.name,
            "class": f"{cls.__module__}.{cls.__qualname__}",
            "read_locality": self.read_locality,
            "exact_deltas": self.exact_deltas,
            "shardable": self.shardable,
            "entrypoints": entrypoints,
            "observers": observers,
            "layers": None,
        }

    # -- optional hooks ---------------------------------------------------

    def is_legal(self, net: Network, config: Mapping[int, Mapping[str, object]]) -> bool:
        """Task-level legality predicate (used by tests, not by nodes)."""
        raise NotImplementedError(f"{self.name} defines no legality predicate")

    def initial_configuration(self, net: Network) -> dict[int, dict[str, object]]:
        """The all-defaults configuration (NOT assumed by self-stabilization)."""
        spec = self.register_spec(net)
        return {v: spec.default_state(net, v) for v in net.nodes}


class ComposedProtocol(Protocol):
    """Hierarchical (collateral) composition of protocol layers.

    Layers share one register; field names must not collide.  In one atomic
    step the layers are evaluated in order and each layer sees the updates
    proposed by the layers below it *at this node* (a node writes its whole
    register atomically, so this is faithful to the state model), while
    neighbor registers are read as they currently are.
    """

    def __init__(self, layers: list[Protocol], name: str = "composed") -> None:
        if not layers:
            raise ValueError("composition needs at least one layer")
        self.layers = list(layers)
        self.name = name
        # the composition reads as far as its farthest-reading layer
        self.read_locality = (
            "global" if any(l.read_locality == "global" for l in layers)
            else "neighborhood")
        # one unshardable layer makes the whole atomic step unshardable
        self.shardable = all(l.shardable for l in layers)

    def register_spec(self, net: Network) -> RegisterSpec:
        spec = self.layers[0].register_spec(net)
        for layer in self.layers[1:]:
            spec = spec.merged(layer.register_spec(net))
        return spec

    def step(self, view: NodeView) -> dict[str, object] | None:
        updates: dict[str, object] = {}
        current = view._config
        node = view.node
        for layer in self.layers:
            if updates:
                # overlay this node's pending writes for the next layer
                patched = dict(current[node])
                patched.update(updates)
                overlay = _Overlay(current, node, patched)
                layer_view = NodeView(view.net, node, overlay)
            else:
                layer_view = view
            delta = layer.step(layer_view)
            if delta:
                updates.update(delta)
        return updates or None

    def fast_step_slots(self, schema):
        """The composed slot-indexed fast path (see :class:`Protocol`).

        Delegates to each layer's own compiled ``fast_step_slots`` rule
        when the layer provides one; layers that do not are adapted
        through :func:`adapt_step_to_slots`, so a composition always has
        a slot path and hand-ported layers (the tree layer, the digest
        layer, the NCA labels) run index-first even when sibling layers
        still step through NodeView.  Semantics mirror :meth:`step`
        exactly: each layer sees this node's register patched with the
        updates of the layers below it, while neighbor registers are
        read as they currently are.
        """
        rules = [layer.fast_step_slots(schema) or
                 adapt_step_to_slots(layer, schema)
                 for layer in self.layers]

        def composed(net, config, node, own, nbr_rows, _rules=tuple(rules)):
            updates = None
            cur = own
            for rule in _rules:
                delta = rule(net, config, node, cur, nbr_rows)
                if delta:
                    if updates is None:
                        updates = {}
                        cur = own.copy()
                    updates.update(delta)
                    for i, val in delta.items():
                        cur[i] = val
            return updates

        return composed

    def vector_step(self, schema, cols):
        """The composed columnar path (see :class:`Protocol`).

        All-or-nothing: every layer must compile a ``vector_step`` rule,
        otherwise the composition has no columnar path (mixed
        column/scalar layers within one atomic step would re-introduce
        exactly the per-node dispatch the column plane removes).  At
        call time the accumulated per-node updates are handed to each
        subsequent layer as its ``patch``, mirroring the own-register
        overlay of :meth:`step` / :meth:`fast_step_slots`; any layer
        declining at call time declines the whole composed refresh.
        """
        rules = [layer.vector_step(schema, cols) for layer in self.layers]
        if any(rule is None for rule in rules):
            return None

        def composed(store, active, patch=None, _rules=tuple(rules)):
            if patch:
                # nested compositions never occur; decline if they do
                return None
            updates: dict[int, dict[int, object]] = {}
            for rule in _rules:
                result = rule(store, active, updates if updates else None)
                if result is None:
                    return None
                for v, delta in result.items():
                    cur = updates.get(v)
                    if cur is None:
                        updates[v] = dict(delta)
                    else:
                        cur.update(delta)
            return updates

        return composed

    def interrupt_step(self, schema):
        """The composed interrupt section (see :class:`Protocol`).

        Layers that opt in run in order; each sees this node's register
        patched with the corrective writes of the layers below it,
        mirroring :meth:`fast_step_slots`.  Compositions where no layer
        opts in have no interrupt section.
        """
        rules = [layer.interrupt_step(schema) for layer in self.layers]
        rules = [rule for rule in rules if rule is not None]
        if not rules:
            return None
        if len(rules) == 1:
            return rules[0]

        def composed(net, config, node, own, event, _rules=tuple(rules)):
            updates = None
            cur = own
            for rule in _rules:
                delta = rule(net, config, node, cur, event)
                if delta:
                    if updates is None:
                        updates = {}
                        cur = own.copy()
                    updates.update(delta)
                    for i, val in delta.items():
                        cur[i] = val
            return updates

        return composed

    def on_topology_event(self, old_net: Network, new_net: Network,
                          event: object) -> bool:
        invalidate = False
        for layer in self.layers:
            if layer.on_topology_event(old_net, new_net, event):
                invalidate = True
        return invalidate

    def is_legal(self, net: Network, config) -> bool:
        return all(_safe_legal(layer, net, config) for layer in self.layers)

    def probe_potential(self, net: Network, config) -> int | None:
        """Sum of the implementing layers' potentials (None if none do)."""
        values = [layer.probe_potential(net, config)
                  for layer in self.layers]
        values = [v for v in values if v is not None]
        return sum(values) if values else None

    def rule_contract(self) -> dict[str, object]:
        contract = super().rule_contract()
        contract["layers"] = [layer.rule_contract()
                              for layer in self.layers]
        return contract


def _safe_legal(layer: Protocol, net: Network, config) -> bool:
    try:
        return layer.is_legal(net, config)
    except NotImplementedError:
        return True


def adapt_step_to_slots(protocol: Protocol, schema):
    """Wrap a name-keyed :meth:`Protocol.step` as a slot-indexed rule.

    The bridge :class:`ComposedProtocol` uses for layers that have no
    hand-compiled ``fast_step_slots``: the layer's ``step`` runs over a
    NodeView whose own-register entry is the (possibly patched) slot row
    handed down by the composition, and the returned name-keyed delta is
    re-keyed to slot indices.  Exactly as fast as ``step`` — the adapter
    exists for semantic uniformity of the engine's slot plane, not for
    speed.

    Write-ownership audit (statics W-series): this bridge never mutates
    the rows it receives — the re-keyed delta is a fresh dict, the
    patched own register is wrapped read-only in a :class:`SlotState`
    view, and the composition above (:meth:`ComposedProtocol.step` /
    ``fast_step_slots``) copies before applying pending layer updates
    (``dict(current[node])`` / ``own.copy()``).  The in-place ``cur``
    writes in the composed slot rule land on that private copy only.
    """
    step = protocol.step
    index = schema.index

    def rule(net, config, node, own, nbr_rows):
        base = config[node]
        if base.row is own:
            view = NodeView(net, node, config)
        else:  # composition overlay: this node's register is patched
            view = NodeView(net, node,
                            _Overlay(config, node, SlotState(schema, own)))
        delta = step(view)
        if not delta:
            return None
        return {index[k]: v for k, v in delta.items()}

    return rule


class _Overlay:
    """A configuration view with one node's register patched."""

    __slots__ = ("_base", "_node", "_patched")

    def __init__(self, base, node: int, patched: dict[str, object]) -> None:
        self._base = base
        self._node = node
        self._patched = patched

    def __getitem__(self, node: int):
        if node == self._node:
            return self._patched
        return self._base[node]

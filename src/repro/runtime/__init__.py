"""The state-model runtime (Section II-A of the paper).

This subpackage implements the abstract machine the paper works in:

* :mod:`registers` — single-writer multiple-reader registers whose fields
  carry exact bit-size encoders (space complexity is *measured*, not assumed);
* :mod:`protocol` — guarded-rule protocols: an atomic step reads the node's
  own register and its neighbors' registers, applies the transition function,
  and writes back;
* :mod:`scheduler` — daemons, from the synchronous one to unfair adversaries;
* :mod:`simulator` — the execution engine with the paper's round accounting
  and silence detection;
* :mod:`faults` — transient fault injection (register corruption);
* :mod:`metrics` — measurement helpers shared by tests and benchmarks.
"""

from repro.runtime.registers import (
    Field,
    RegisterSpec,
    id_field,
    opt_id_field,
    counter_field,
    opt_counter_field,
    flag_field,
    enum_field,
    weight_field,
    edge_field,
    custom_field,
    NONE,
)
from repro.runtime.protocol import (
    NodeView,
    Protocol,
    ComposedProtocol,
    adapt_step_to_slots,
    effective_delta,
)
from repro.runtime.columns import ColumnStore, NONE_SENTINEL, numpy_or_none
from repro.runtime.schema import SlotState, StateSchema
from repro.runtime.scheduler import (
    EnabledSet,
    Scheduler,
    SynchronousScheduler,
    CentralRandomScheduler,
    CentralRoundRobinScheduler,
    CentralMaxIdScheduler,
    CentralMinIdScheduler,
    DistributedRandomScheduler,
    StarvingScheduler,
    ALL_SCHEDULER_FACTORIES,
)
from repro.runtime.simulator import Simulator, RunResult, random_configuration
from repro.runtime.faults import (
    corrupt_nodes,
    corrupt_random_nodes,
    inject_faults,
    inject_random_faults,
)
from repro.runtime.metrics import (
    node_register_bits,
    max_register_bits,
    total_register_bits,
)

__all__ = [
    "Field",
    "RegisterSpec",
    "id_field",
    "opt_id_field",
    "counter_field",
    "opt_counter_field",
    "flag_field",
    "enum_field",
    "weight_field",
    "edge_field",
    "custom_field",
    "NONE",
    "NodeView",
    "effective_delta",
    "adapt_step_to_slots",
    "Protocol",
    "ComposedProtocol",
    "SlotState",
    "StateSchema",
    "ColumnStore",
    "NONE_SENTINEL",
    "numpy_or_none",
    "EnabledSet",
    "Scheduler",
    "SynchronousScheduler",
    "CentralRandomScheduler",
    "CentralRoundRobinScheduler",
    "CentralMaxIdScheduler",
    "CentralMinIdScheduler",
    "DistributedRandomScheduler",
    "StarvingScheduler",
    "ALL_SCHEDULER_FACTORIES",
    "Simulator",
    "RunResult",
    "random_configuration",
    "corrupt_nodes",
    "corrupt_random_nodes",
    "inject_faults",
    "inject_random_faults",
    "node_register_bits",
    "max_register_bits",
    "total_register_bits",
]

"""Measurement helpers: register sizes and stabilization summaries.

The space numbers reported by the benchmarks come from these functions —
exact bit counts of live configurations under each protocol's declared
encoders — so the paper's O(log n) / O(log^2 n) claims are checked against
measurements, not against code comments.
"""

from __future__ import annotations

from repro.graphs.network import Network
from repro.runtime.registers import RegisterSpec
from repro.runtime.simulator import Config

__all__ = [
    "node_register_bits",
    "max_register_bits",
    "total_register_bits",
]


def node_register_bits(net: Network, spec: RegisterSpec, config: Config) -> dict[int, int]:
    """Exact register size, in bits, of every node."""
    return {v: spec.state_bits(net, config[v]) for v in net.nodes}


def max_register_bits(net: Network, spec: RegisterSpec, config: Config) -> int:
    """The space complexity of a configuration: max bits over the nodes."""
    return max(node_register_bits(net, spec, config).values())


def total_register_bits(net: Network, spec: RegisterSpec, config: Config) -> int:
    return sum(node_register_bits(net, spec, config).values())

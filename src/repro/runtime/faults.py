"""Transient fault injection.

A fault corrupts the register of one or more nodes (Section II-A).  Node
identities and edge weights are incorruptible constants; everything stored
in registers is fair game, but a corrupted variable still holds a value of
its field's domain (corruption "cannot result in storing a value with
arbitrary large size").

Faults speak the *boundary* shape: corrupted values are name-keyed dicts
(what the field samplers produce), written into a running simulator
through :meth:`Simulator.overwrite`, which encodes them through the
compiled :class:`~repro.runtime.schema.StateSchema` into the engine's
slot rows and feeds the dirty set.  :func:`corrupt_nodes` accepts either
plain-dict configurations or a simulator's live Mapping views and always
returns plain dicts.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graphs.network import Network
from repro.runtime.registers import RegisterSpec
from repro.runtime.simulator import Config, Simulator

__all__ = [
    "corrupt_nodes",
    "corrupt_random_nodes",
    "inject_faults",
    "inject_random_faults",
]


def _validated_fields(spec: RegisterSpec,
                      field_names: Sequence[str] | None) -> list[str] | None:
    """``field_names`` as a list, refused loudly when any is unknown.

    A typo'd field name used to sail straight into
    :meth:`RegisterSpec.corrupt_state` and blow up as a bare ``KeyError``
    deep in the sampler (or, worse, corrupt nothing the caller expected).
    Mirror :meth:`Simulator.overwrite`'s contract instead: name the bad
    fields and the known ones.
    """
    if not field_names:
        return None
    names = list(field_names)
    unknown = sorted(set(names) - set(spec.names))
    if unknown:
        raise KeyError(f"unknown fields: {unknown} "
                       f"(register has: {sorted(spec.names)})")
    return names


def corrupt_nodes(
    net: Network,
    spec: RegisterSpec,
    config: Config,
    nodes: Sequence[int],
    rng: random.Random,
    field_names: Sequence[str] | None = None,
) -> Config:
    """Return a copy of ``config`` with the given nodes' registers corrupted.

    ``field_names`` restricts corruption to specific fields (default:
    all); unknown names raise ``KeyError`` up front.
    """
    names = _validated_fields(spec, field_names)
    out = {v: dict(state) for v, state in config.items()}
    for v in nodes:
        out[v].update(spec.corrupt_state(net, v, rng, names))
    return out


def inject_faults(
    sim: Simulator,
    nodes: Sequence[int],
    rng: random.Random,
    field_names: Sequence[str] | None = None,
) -> None:
    """Corrupt the given nodes' registers of a *running* simulator, in place.

    Goes through :meth:`Simulator.overwrite`, so each corrupted node and its
    neighborhood land in the engine's dirty set and the incremental enabled
    set stays coherent — this is the supported way to model transient faults
    mid-execution (as opposed to :func:`corrupt_nodes`, which builds a fresh
    initial configuration for a fresh simulator).  Unknown ``field_names``
    raise ``KeyError`` before any register is touched.
    """
    names = _validated_fields(sim.spec, field_names)
    for v in nodes:
        sim.overwrite(v, sim.spec.corrupt_state(sim.net, v, rng, names))


def inject_random_faults(
    sim: Simulator,
    k: int,
    seed: int | None = 0,
    field_names: Sequence[str] | None = None,
    rng: random.Random | None = None,
) -> list[int]:
    """Corrupt ``k`` uniformly random nodes of a running simulator.

    Returns the victims.  See :func:`inject_faults`.  The adversary's
    entropy comes from, in order of precedence: an explicit ``rng``, an
    explicit ``seed``, or the simulator's own injected stream
    (``sim.rng``); global module-level RNG state is never read, so
    parallel campaign workers stay isolated.
    """
    if rng is None:
        rng = sim.rng if seed is None else random.Random(seed)
    k = min(k, sim.net.n)
    victims = rng.sample(list(sim.net.nodes), k)
    inject_faults(sim, victims, rng, field_names)
    return victims


def corrupt_random_nodes(
    net: Network,
    spec: RegisterSpec,
    config: Config,
    k: int,
    seed: int = 0,
    field_names: Sequence[str] | None = None,
    rng: random.Random | None = None,
) -> tuple[Config, list[int]]:
    """Corrupt ``k`` uniformly random nodes; returns (new config, victims).

    An explicit ``rng`` takes precedence over ``seed``.
    """
    if rng is None:
        rng = random.Random(seed)
    k = min(k, net.n)
    victims = rng.sample(list(net.nodes), k)
    return corrupt_nodes(net, spec, config, victims, rng, field_names), victims

"""Transient fault injection.

A fault corrupts the register of one or more nodes (Section II-A).  Node
identities and edge weights are incorruptible constants; everything stored
in registers is fair game, but a corrupted variable still holds a value of
its field's domain (corruption "cannot result in storing a value with
arbitrary large size").
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.graphs.network import Network
from repro.runtime.registers import RegisterSpec
from repro.runtime.simulator import Config

__all__ = ["corrupt_nodes", "corrupt_random_nodes"]


def corrupt_nodes(
    net: Network,
    spec: RegisterSpec,
    config: Config,
    nodes: Sequence[int],
    rng: random.Random,
    field_names: Sequence[str] | None = None,
) -> Config:
    """Return a copy of ``config`` with the given nodes' registers corrupted.

    ``field_names`` restricts corruption to specific fields (default: all).
    """
    out = {v: dict(state) for v, state in config.items()}
    for v in nodes:
        out[v].update(
            spec.corrupt_state(net, v, rng,
                               list(field_names) if field_names else None)
        )
    return out


def corrupt_random_nodes(
    net: Network,
    spec: RegisterSpec,
    config: Config,
    k: int,
    seed: int = 0,
    field_names: Sequence[str] | None = None,
) -> tuple[Config, list[int]]:
    """Corrupt ``k`` uniformly random nodes; returns (new config, victims)."""
    rng = random.Random(seed)
    k = min(k, net.n)
    victims = rng.sample(list(net.nodes), k)
    return corrupt_nodes(net, spec, config, victims, rng, field_names), victims

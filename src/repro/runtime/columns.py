"""Typed per-field columns + CSR adjacency: the array-native state plane.

PR 5 turned every register into a positionally-indexed *slot row*.  This
module turns the rows 90 degrees: a :class:`ColumnStore` holds one typed
``int64`` array per field over *all* nodes, plus the network's adjacency
flattened once into CSR arrays (``nbr_offsets`` / ``nbr_index``).  A
protocol that opts in through :meth:`~repro.runtime.protocol.Protocol.
vector_step` evaluates a whole all-dirty refresh (a synchronous round, a
mass fault) as bulk array operations instead of per-node Python calls.

Contract with the engine
------------------------

* **Rows stay primary.**  The slot rows remain the single source of
  truth; ``SlotState`` views, name-keyed ``overwrite``, faults and traces
  are untouched.  The column store is an *evaluation cache*: any engine
  write just drops :attr:`~ColumnStore.fresh`, and the next vector
  refresh re-encodes from the rows with ``sync()`` — lazily, so runs
  that never vectorize (central daemons) never pay for the columns.
* **Strict encoding.**  A cell encodes iff its value is exactly an
  ``int`` (``bool`` is rejected: ``repr(True) != repr(1)`` would corrupt
  golden hashes and digest content) strictly inside the signed-64 range,
  or the register null :data:`~repro.runtime.registers.NONE`, which maps
  to the reserved :data:`NONE_SENTINEL` (``-2**63``).  A field holding
  anything else is marked invalid for this sync; vector rules that need
  that column decline, and the engine falls back to the bit-identical
  scalar path.
* **Optional numpy.**  ``numpy`` is used when importable (and not
  disabled via the ``REPRO_NO_NUMPY`` environment variable — the CI
  fallback gate); otherwise the columns are stdlib ``array('q')`` buffers
  behind memoryviews.  Both backends must produce bit-identical runs —
  the test grid pins them to each other.
* **Enabled-mask column.**  The store carries the enabled-set membership
  as a typed mask over node positions; :meth:`commit_enabled` diffs a
  vector refresh's new enabled set against the engine's previous one and
  refreshes the mask, so the engine's bookkeeping after a vectorized
  refresh is one merge-diff instead of per-node bisection.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Mapping, Sequence

from repro.graphs.network import Network
from repro.runtime.registers import NONE
from repro.runtime.schema import StateSchema

__all__ = ["ColumnStore", "NONE_SENTINEL", "numpy_or_none"]

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: Encoded form of :data:`~repro.runtime.registers.NONE`.  ``-2**63`` is
#: excluded from the integer domain (strict ``>`` below), so the decode
#: direction is unambiguous.
NONE_SENTINEL = _INT64_MIN


def numpy_or_none():
    """The numpy module, or None (missing, or disabled for CI fallback)."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


class ColumnStore:
    """Per-field typed columns over all nodes of one network.

    Built once per ``(protocol, network)`` binding by the simulator when
    the protocol advertises a :meth:`~repro.runtime.protocol.Protocol.
    vector_step` rule.  Node identities are mapped to dense *positions*
    in ascending-id order (matching the engine's deterministic item
    order), and the adjacency is flattened into CSR form:

    ``nbr_offsets[i] : nbr_offsets[i+1]``
        the edge-slot range of the node at position ``i``;
    ``nbr_index[e]``
        the *position* of the neighbor on edge-slot ``e`` (ascending
        neighbor id within each range, inherited from
        ``Network.neighbors``);
    ``nbr_ids[e]`` / ``owner_index[e]``
        the neighbor's identity, and the owning node's position.
    """

    def __init__(self, schema: StateSchema, net: Network,
                 rows: Mapping[int, list], backend: str | None = None) -> None:
        if backend not in (None, "numpy", "array"):
            raise ValueError(f"unknown backend {backend!r}")
        np = numpy_or_none()
        if backend == "numpy" and np is None:
            raise RuntimeError("numpy backend requested but numpy is "
                               "unavailable (or REPRO_NO_NUMPY is set)")
        if backend == "array":
            np = None
        #: the numpy module when this store is numpy-backed, else None
        self.np = np
        self.backend = "numpy" if np is not None else "array"
        self.schema = schema
        self.width = schema.width
        #: node identities in ascending order; position i holds ids[i]
        self.ids: list[int] = sorted(net.nodes)
        self.pos: dict[int, int] = {v: i for i, v in enumerate(self.ids)}
        self.n = len(self.ids)
        #: aligned row references (rows are mutated in place, never
        #: replaced, so these stay valid for the simulator's lifetime)
        self.rows: list[list] = [rows[v] for v in self.ids]
        # incorruptible constants, mirrored so vector rules can read them
        # without holding the Network (repro.statics audits rule closures
        # against a small accessor allowlist)
        self.n_bound = net.n_bound
        self.id_space = net.id_space
        self.m = net.m

        # -- CSR adjacency, built once ---------------------------------
        pos = self.pos
        offsets = [0] * (self.n + 1)
        nbr_index: list[int] = []
        nbr_ids: list[int] = []
        owner_index: list[int] = []
        adjacency = net.adjacency
        min_deg = self.n  # sentinel > any degree only when n has no edges
        for i, v in enumerate(self.ids):
            nbrs = adjacency[v]
            if len(nbrs) < min_deg:
                min_deg = len(nbrs)
            for u in nbrs:  # ascending (Network stores sorted tuples)
                nbr_index.append(pos[u])
                nbr_ids.append(u)
                owner_index.append(i)
            offsets[i + 1] = len(nbr_index)
        self.min_degree = min_deg
        self.e = len(nbr_index)  # directed edge slots (2m)
        if np is not None:
            self.nbr_offsets = np.array(offsets, dtype=np.int64)
            self.nbr_index = np.array(nbr_index, dtype=np.int64)
            self.nbr_ids = np.array(nbr_ids, dtype=np.int64)
            self.owner_index = np.array(owner_index, dtype=np.int64)
            self.ids_arr = np.array(self.ids, dtype=np.int64)
            self.enabled = np.zeros(self.n, dtype=bool)
        else:
            self.nbr_offsets = memoryview(array("q", offsets))
            self.nbr_index = memoryview(array("q", nbr_index))
            self.nbr_ids = memoryview(array("q", nbr_ids))
            self.owner_index = memoryview(array("q", owner_index))
            self.ids_arr = memoryview(array("q", self.ids))
            self.enabled = bytearray(self.n)
        self._zeros = bytes(self.n)  # fallback mask reset buffer

        # -- columns ----------------------------------------------------
        self._cols: list = [None] * self.width
        #: per-slot encodability of the *last* sync; invalid columns hold
        #: stale bytes and vector rules must not read them
        self.valid: list[bool] = [False] * self.width
        #: True while the columns mirror the rows (for valid slots);
        #: cleared by name-keyed overwrites and unencodable writes so the
        #: next vector refresh re-syncs from first principles
        self.fresh = False

    # ------------------------------------------------------------------
    # row <-> column synchronization
    # ------------------------------------------------------------------

    def sync(self) -> "ColumnStore":
        """Re-encode every column from the (primary) slot rows."""
        np = self.np
        rows = self.rows
        valid = self.valid
        for s in range(self.width):
            vals = [r[s] for r in rows]
            ok = True
            for k, v in enumerate(vals):
                if type(v) is int:
                    if not (_INT64_MIN < v <= _INT64_MAX):
                        ok = False
                        break
                elif v is NONE:
                    vals[k] = NONE_SENTINEL
                else:
                    ok = False
                    break
            if not ok:
                valid[s] = False
                continue
            if np is not None:
                self._cols[s] = np.array(vals, dtype=np.int64)
            else:
                self._cols[s] = memoryview(array("q", vals))
            valid[s] = True
        self.fresh = True
        return self

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def col(self, slot: int):
        """The typed column of ``slot`` (ndarray or ``int64`` memoryview).

        Only meaningful while :attr:`fresh` and ``valid[slot]`` hold —
        vector rules check :meth:`valid_slot` and decline otherwise.
        """
        return self._cols[slot]

    def valid_slot(self, *slots: int) -> bool:
        """Whether every given column encoded cleanly at the last sync."""
        valid = self.valid
        return all(valid[s] for s in slots)

    def value(self, node: int, slot: int):
        """Decode one cell back to the register domain (int or NONE)."""
        raw = int(self._cols[slot][self.pos[node]])
        return NONE if raw == NONE_SENTINEL else raw

    def decode_row(self, node: int) -> list:
        """Decode a whole register from the columns (round-trip tests)."""
        if not self.valid_slot(*range(self.width)):
            raise ValueError("cannot decode through invalid columns")
        i = self.pos[node]
        out = []
        for s in range(self.width):
            raw = int(self._cols[s][i])
            out.append(NONE if raw == NONE_SENTINEL else raw)
        return out

    # ------------------------------------------------------------------
    # the enabled-mask column
    # ------------------------------------------------------------------

    def commit_enabled(self, new_ids: Sequence[int],
                       old_ids: Sequence[int]) -> tuple[list[int], list[int]]:
        """Diff + refresh the membership mask after a vector refresh.

        ``new_ids``/``old_ids`` are ascending; returns ``(added,
        removed)`` — each ascending, the shape ``Scheduler.notify``
        expects.  The typed mask column is rebuilt to match ``new_ids``.
        """
        added: list[int] = []
        removed: list[int] = []
        i = j = 0
        ni, no = len(new_ids), len(old_ids)
        while i < ni and j < no:
            a, b = new_ids[i], old_ids[j]
            if a == b:
                i += 1
                j += 1
            elif a < b:
                added.append(a)
                i += 1
            else:
                removed.append(b)
                j += 1
        if i < ni:
            added.extend(new_ids[i:])
        if j < no:
            removed.extend(old_ids[j:])
        pos = self.pos
        en = self.enabled
        if self.np is not None:
            en[:] = False
            if new_ids:
                en[[pos[v] for v in new_ids]] = True
        else:
            en[:] = self._zeros
            for v in new_ids:
                en[pos[v]] = 1
        return added, removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ColumnStore(n={self.n}, width={self.width}, "
                f"backend={self.backend!r}, fresh={self.fresh})")

"""The execution engine.

Implements the paper's execution and complexity model:

* **Atomic step**: a node reads its own register and its neighbors'
  registers, applies the transition function, writes its register.
* **Enabled node**: a node whose register differs from what the transition
  function would write (equivalently, :meth:`Protocol.step` returns a
  non-trivial update).
* **Scheduler step**: the daemon activates a non-empty subset of the enabled
  nodes; the activated nodes' writes are applied simultaneously, each based
  on the pre-step configuration (single-writer registers make this sound).
* **Round** (Section II-A): starting from a configuration, the round is the
  shortest execution prefix in which every node enabled at the start has
  either executed a step or become non-enabled because of a neighbor's step.
* **Silence**: a configuration with no enabled node.  A silent
  self-stabilizing algorithm must reach a *legal* silent configuration from
  every initial configuration.

The engine caches per-node step proposals and invalidates them only in the
write-neighborhood of each applied step, so a step costs O(deg) proposal
recomputations rather than O(n).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.graphs.network import Network
from repro.runtime.protocol import NodeView, Protocol
from repro.runtime.scheduler import Scheduler, SynchronousScheduler

__all__ = ["Simulator", "RunResult", "random_configuration"]

Config = dict[int, dict[str, object]]


@dataclass
class RunResult:
    """Outcome of a (partial) execution."""

    rounds: int
    moves: int
    silent: bool
    stopped_by_predicate: bool = False
    invariant_violations: int = 0
    #: populated only when the simulator was created with ``record_trace``
    trace: list[Config] = field(default_factory=list)

    @property
    def stabilized(self) -> bool:
        """Whether the run ended in a silent configuration."""
        return self.silent


def random_configuration(net: Network, protocol: Protocol,
                         seed: int = 0) -> Config:
    """An *arbitrary* configuration: every field of every register corrupted.

    This is the canonical starting point for self-stabilization tests: the
    adversary has written arbitrary (domain-valid) values everywhere.
    """
    rng = random.Random(seed)
    spec = protocol.register_spec(net)
    return {v: spec.corrupt_state(net, v, rng) for v in net.nodes}


class Simulator:
    """Runs one protocol on one network under one scheduler."""

    def __init__(
        self,
        net: Network,
        protocol: Protocol,
        scheduler: Scheduler | None = None,
        config: Config | None = None,
        invariant: Callable[[Network, Config], bool] | None = None,
        record_trace: bool = False,
    ) -> None:
        self.net = net
        self.protocol = protocol
        self.scheduler = scheduler or SynchronousScheduler()
        self.spec = protocol.register_spec(net)
        if config is None:
            self.config: Config = protocol.initial_configuration(net)
        else:
            self.config = {v: dict(state) for v, state in config.items()}
        self._check_config_shape()
        self.invariant = invariant
        self.record_trace = record_trace
        self.moves = 0
        self.rounds = 0
        self._invariant_violations = 0
        self._trace: list[Config] = []
        # proposal cache: node -> (dict of changed fields) or None
        self._proposal: dict[int, dict[str, object] | None] = {}
        if record_trace:
            self._snapshot()

    # ------------------------------------------------------------------
    # proposals and enabledness
    # ------------------------------------------------------------------

    def _propose(self, v: int) -> dict[str, object] | None:
        """The pending write of node v, or None if v is not enabled."""
        if v not in self._proposal:
            view = NodeView(self.net, v, self.config)
            delta = self.protocol.step(view)
            if delta:
                own = self.config[v]
                delta = {k: val for k, val in delta.items() if own[k] != val}
            self._proposal[v] = delta if delta else None
        return self._proposal[v]

    def enabled_nodes(self) -> list[int]:
        """All currently enabled nodes."""
        return [v for v in self.net.nodes if self._propose(v) is not None]

    def is_silent(self) -> bool:
        return not self.enabled_nodes()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _apply_batch(self, nodes: list[int]) -> None:
        """Apply the cached proposals of ``nodes`` simultaneously."""
        # gather first: every write must be based on the pre-step state
        writes = []
        for v in nodes:
            delta = self._propose(v)
            if delta is not None:
                writes.append((v, delta))
        for v, delta in writes:
            self.config[v].update(delta)
            self.moves += 1
        # invalidate proposals in the write neighborhoods
        for v, _ in writes:
            self._proposal.pop(v, None)
            for u in self.net.neighbors(v):
                self._proposal.pop(u, None)
        if writes:
            if self.invariant is not None and not self.invariant(self.net, self.config):
                self._invariant_violations += 1
            if self.record_trace:
                self._snapshot()

    def run_round(self, max_moves: int | None = None) -> bool:
        """Execute one full round.  Returns False if already silent.

        A round completes when every node that was enabled at the start has
        stepped or been neutralized by a neighbor's step.  A generous
        default move budget turns scheduler-starvation livelocks into
        diagnosable errors instead of hangs.
        """
        pending = set(self.enabled_nodes())
        if not pending:
            return False
        if max_moves is None:
            max_moves = 200 * self.net.n * self.net.n_bound + 10_000
        budget = max_moves
        while pending:
            current = self.enabled_nodes()
            pending &= set(current)
            if not pending:
                break
            chosen = self.scheduler.select(current)
            if not chosen:
                raise RuntimeError(f"{self.scheduler.name} selected no node")
            self._apply_batch(chosen)
            pending -= set(chosen)
            budget -= len(chosen)
            if budget <= 0:
                raise RuntimeError(
                    f"round exceeded {max_moves} moves "
                    f"(protocol={self.protocol.name}, n={self.net.n})"
                )
        self.rounds += 1
        return True

    def run(
        self,
        max_rounds: int,
        stop_when: Callable[[Network, Config], bool] | None = None,
        max_moves_per_round: int | None = None,
    ) -> RunResult:
        """Run until silence, the predicate, or the round budget.

        Raises RuntimeError if ``max_rounds`` is exhausted before silence
        (or before ``stop_when`` holds, when provided): a self-stabilizing
        run that does not converge within its budget is a failure, not a
        result.
        """
        stopped = False
        for _ in range(max_rounds):
            if stop_when is not None and stop_when(self.net, self.config):
                stopped = True
                break
            progressed = self.run_round(max_moves=max_moves_per_round)
            if not progressed:
                break
        else:
            if stop_when is None or not stop_when(self.net, self.config):
                raise RuntimeError(
                    f"no convergence within {max_rounds} rounds "
                    f"(protocol={self.protocol.name}, n={self.net.n}, "
                    f"scheduler={self.scheduler.name}, "
                    f"enabled={len(self.enabled_nodes())})"
                )
            stopped = True
        return RunResult(
            rounds=self.rounds,
            moves=self.moves,
            silent=self.is_silent(),
            stopped_by_predicate=stopped,
            invariant_violations=self._invariant_violations,
            trace=self._trace,
        )

    def run_to_silence(self, max_rounds: int) -> RunResult:
        return self.run(max_rounds=max_rounds)

    def confirm_silent(self, extra_rounds: int = 3) -> bool:
        """Certify silence: no node is enabled, now and after prodding.

        Because enabledness is a pure function of the configuration, one
        check suffices; the extra rounds assert that running the engine
        does not manufacture moves.
        """
        if not self.is_silent():
            return False
        before = self.moves
        for _ in range(extra_rounds):
            if self.run_round():
                return False
        return self.moves == before

    # ------------------------------------------------------------------
    # fault injection entry point
    # ------------------------------------------------------------------

    def overwrite(self, node: int, updates: dict[str, object]) -> None:
        """Adversarially overwrite parts of one node's register."""
        unknown = set(updates) - set(self.spec.names)
        if unknown:
            raise KeyError(f"unknown fields: {sorted(unknown)}")
        self.config[node].update(updates)
        self._proposal.pop(node, None)
        for u in self.net.neighbors(node):
            self._proposal.pop(u, None)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _snapshot(self) -> None:
        self._trace.append({v: dict(s) for v, s in self.config.items()})

    def _check_config_shape(self) -> None:
        names = set(self.spec.names)
        for v in self.net.nodes:
            if v not in self.config:
                raise ValueError(f"configuration missing node {v}")
            missing = names - set(self.config[v])
            if missing:
                raise ValueError(f"node {v} register missing fields {sorted(missing)}")

"""The execution engine.

Implements the paper's execution and complexity model:

* **Atomic step**: a node reads its own register and its neighbors'
  registers, applies the transition function, writes its register.
* **Enabled node**: a node whose register differs from what the transition
  function would write (equivalently, :meth:`Protocol.step` returns a
  non-trivial update).
* **Scheduler step**: the daemon activates a non-empty subset of the enabled
  nodes; the activated nodes' writes are applied simultaneously, each based
  on the pre-step configuration (single-writer registers make this sound).
* **Round** (Section II-A): starting from a configuration, the round is the
  shortest execution prefix in which every node enabled at the start has
  either executed a step or become non-enabled because of a neighbor's step.
* **Silence**: a configuration with no enabled node.  A silent
  self-stabilizing algorithm must reach a *legal* silent configuration from
  every initial configuration.

Incremental enabled-set engine
------------------------------

The engine maintains a live :class:`~repro.runtime.scheduler.EnabledSet`
plus a *dirty set* of nodes whose cached proposals a write (or a fault)
invalidated.  Applying a batch of writes only dirties the write
neighborhoods; the next scheduler step re-proposes exactly the dirty nodes
and feeds the resulting adds/removes to the daemon through
:meth:`Scheduler.notify`.  A scheduler step therefore costs O(deg) proposal
recomputations per applied write instead of the O(n) full rescan the
previous engine performed before every ``select`` — the difference between
O(n·M) and O(Δ·M) Python work for an M-move central-daemon execution.
Large batches (synchronous rounds, global readers) skip the per-write
bookkeeping entirely and raise a single *all-dirty* flag instead: one
refresh pass over the whole network replaces thousands of set inserts.
:meth:`Simulator.rescan_enabled` recomputes enabledness from scratch with
no caches, for cross-checking the incremental state in tests.

Slot-indexed state
------------------

Node registers are stored as **slot rows** — plain lists indexed by the
:class:`~repro.runtime.schema.StateSchema` compiled once per
``(protocol, network)`` from the protocol's
:class:`~repro.runtime.registers.RegisterSpec`.  ``Simulator.config``
exposes the same storage as zero-copy
:class:`~repro.runtime.schema.SlotState` Mapping views, so name-keyed
callers (legality predicates, verifiers, metrics, tests) are unaffected.
Protocols with a compiled :meth:`Protocol.fast_step_slots` rule run
index-first on the raw rows; everything else falls back to the
name-keyed ``fast_step``/``step`` contracts over the views.
Configurations cross the boundary as plain dicts in both directions
(``config=`` input, traces, :func:`random_configuration`).
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.graphs.network import Network
from repro.runtime.columns import ColumnStore
from repro.runtime.protocol import NodeView, Protocol, effective_delta
from repro.runtime.scheduler import EnabledSet, Scheduler, SynchronousScheduler

__all__ = ["Simulator", "RunResult", "random_configuration"]

Config = dict[int, Mapping[str, object]]


@dataclass(slots=True)
class RunResult:
    """Outcome of a (partial) execution."""

    rounds: int
    moves: int
    silent: bool
    stopped_by_predicate: bool = False
    invariant_violations: int = 0
    #: populated only when the simulator was created with ``record_trace``;
    #: the result owns this list (it is a deep copy of the simulator's
    #: recording, so later runs or caller mutations cannot corrupt it).
    #: Snapshots are plain name-keyed dicts — the boundary serialization
    #: shape — decoded through the schema, never aliases of live rows.
    trace: list[Config] = field(default_factory=list)

    @property
    def stabilized(self) -> bool:
        """Whether the run ended in a silent configuration."""
        return self.silent

    def to_record(self) -> dict[str, object]:
        """A JSON-serializable summary of this run (no trace).

        This is the shape the experiment campaign store persists; keep the
        keys stable — result files written by old campaigns must remain
        readable by new reports.
        """
        return {
            "rounds": self.rounds,
            "moves": self.moves,
            "silent": self.silent,
            "stopped_by_predicate": self.stopped_by_predicate,
            "invariant_violations": self.invariant_violations,
        }


def random_configuration(net: Network, protocol: Protocol,
                         seed: int = 0,
                         rng: random.Random | None = None) -> Config:
    """An *arbitrary* configuration: every field of every register corrupted.

    This is the canonical starting point for self-stabilization tests: the
    adversary has written arbitrary (domain-valid) values everywhere.
    An explicit ``rng`` takes precedence over ``seed``; module-level global
    RNG state is never touched either way, so parallel campaign workers can
    corrupt configurations without sharing streams.
    """
    if rng is None:
        rng = random.Random(seed)
    spec = protocol.register_spec(net)
    return {v: spec.corrupt_state(net, v, rng) for v in net.nodes}


class Simulator:
    """Runs one protocol on one network under one scheduler."""

    def __init__(
        self,
        net: Network,
        protocol: Protocol,
        scheduler: Scheduler | None = None,
        config: Config | None = None,
        invariant: Callable[[Network, Config], bool] | None = None,
        record_trace: bool = False,
        rng: random.Random | None = None,
        use_slot_rules: bool = True,
        use_vector_rules: bool = True,
        recorder: object | None = None,
    ) -> None:
        self.net = net
        self.protocol = protocol
        self.scheduler = scheduler or SynchronousScheduler()
        #: the simulator's own entropy source, injectable so campaign
        #: workers run on isolated streams.  The engine itself is
        #: deterministic and never draws from it; it is the default stream
        #: for adversarial helpers acting on this simulator (e.g.
        #: :func:`repro.runtime.faults.inject_random_faults`).
        self.rng = rng if rng is not None else random.Random(0)
        self.spec = protocol.register_spec(net)
        #: the compiled slot layout of this (protocol, network) binding
        self.schema = self.spec.schema()
        if config is None:
            config = protocol.initial_configuration(net)
        # encode the boundary configuration into slot rows (this also
        # validates its shape); ``self.config`` shares the storage as
        # zero-copy Mapping views, so name-keyed reads stay supported
        names = self.schema.names
        rows: dict[int, list] = {}
        for v in net.nodes:
            if v not in config:
                raise ValueError(f"configuration missing node {v}")
            state = config[v]
            try:
                rows[v] = [state[name] for name in names]
            except KeyError:
                missing = [n for n in names if n not in state]
                raise ValueError(
                    f"node {v} register missing fields {sorted(missing)}"
                ) from None
        self._state = rows
        view = self.schema.view
        self.config: dict[int, object] = {v: view(rows[v]) for v in net.nodes}
        self.invariant = invariant
        self.record_trace = record_trace
        self.moves = 0
        self.rounds = 0
        # cold-path engagement counters (never touched by the fused loop):
        # settle-retirements taken through _apply_batch and successful
        # columnar refreshes.  The telemetry layer diffs them per round.
        self.stat_settle_retired = 0
        self.stat_vector_refreshes = 0
        self._invariant_violations = 0
        self._trace: list[Config] = []
        # incremental enabledness machinery: valid proposals for every
        # non-dirty node (slot-keyed deltas), the live enabled set, and the
        # dirty set / all-dirty flag for nodes whose proposals the last
        # writes or faults invalidated.
        self._proposal: dict[int, dict[int, object] | None] = {}
        self._enabled = EnabledSet()
        self._dirty: set[int] = set()
        self._dirty_all = True
        self._all_nodes: list[int] = sorted(net.nodes)
        # batch-aware bookkeeping: a write batch at least this large
        # (a synchronous round, a mass fault) raises the all-dirty flag
        # instead of performing per-write neighborhood set inserts — one
        # refresh pass per round replaces the per-batch bookkeeping.
        # Purely an accounting choice: refresh re-proposes a superset,
        # and re-proposing a clean node reproduces its cached proposal.
        self._bulk_dirty = max(4, net.n // 4)
        self._pending: set[int] | None = None  # the active round's pending set
        self._sched_synced = False
        # resolve the engine path once: a compiled slot rule when the
        # protocol provides one (``use_slot_rules=False`` is the testing
        # escape that forces the name-keyed path, so the dual-view suite
        # can prove both planes bit-identical), else the name-keyed
        # fast_step, else step over NodeView.
        self._slot_rule = (protocol.fast_step_slots(self.schema)
                           if use_slot_rules else None)
        # prebuilt per-node neighbor row table for the resolved path.  Slot
        # rows are mutated in place (never replaced) by _apply_batch and
        # overwrite, so these references stay valid for the simulator's
        # lifetime: raw (neighbor, row) pairs for a compiled slot rule,
        # (neighbor, SlotState) pairs for the name-keyed fallback — only
        # the table the path actually reads is built.
        self._nbr_rows: dict[int, tuple[tuple[int, list], ...]] | None = None
        self._view_rows: dict[int, tuple] | None = None
        if self._slot_rule is not None:
            self._nbr_rows = {
                v: tuple((u, rows[u]) for u in net.neighbors(v))
                for v in net.nodes}
        else:
            config_views = self.config
            self._view_rows = {
                v: tuple((u, config_views[u]) for u in net.neighbors(v))
                for v in net.nodes}
        self._fast_step = protocol.fast_step if callable(
            getattr(protocol, "fast_step", None)) else None
        # protocols declaring exact deltas skip the engine's no-op filter
        self._exact_deltas = bool(getattr(protocol, "exact_deltas", False))
        self._index = self.schema.index
        # the base-class Scheduler.notify is a no-op; skip the call frame
        # entirely unless the daemon actually overrides it
        self._notify = (self.scheduler.notify
                        if type(self.scheduler).notify is not Scheduler.notify
                        else None)
        # oracle-consulting protocols read the whole configuration, so any
        # write invalidates every cached proposal (see Protocol.read_locality)
        self._global_reads = protocol.read_locality == "global"
        # write-path contracts (Protocol.settles_after_move /
        # fast_write_impact): movers that provably land disabled retire
        # from the enabled set at apply time, and a compiled impact filter
        # narrows which neighbors a write re-dirties.  Both are soundness
        # claims about the rule itself, so they hold on every engine path;
        # global readers go through the all-dirty flag instead.
        self._settles = (not self._global_reads
                         and bool(getattr(protocol,
                                          "settles_after_move", False)))
        self._write_impact = (None if self._global_reads
                              else protocol.fast_write_impact(self.schema))
        # columnar bulk-evaluation plane: built only when the protocol
        # compiles a vector rule for this binding (Protocol.vector_step)
        # and the slot plane is active; _refresh engages it on all-dirty
        # passes, everything else stays on the scalar paths.
        # ``use_vector_rules=False`` is the testing escape hatch that
        # forces those scalar paths, mirroring ``use_slot_rules``.
        self._columns: ColumnStore | None = None
        self._vector_rule = None
        if (use_vector_rules and self._slot_rule is not None
                and type(protocol).vector_step is not Protocol.vector_step):
            store = ColumnStore(self.schema, net, rows)
            vrule = protocol.vector_step(self.schema, store)
            if vrule is not None:
                self._columns = store
                self._vector_rule = vrule
        if record_trace:
            self._snapshot()
        # telemetry seam: hook selection happens HERE, once, at setup.
        # With no recorder the engine runs the exact pre-telemetry byte
        # path — no per-move branch anywhere below; with one, the
        # observed round loop shadows ``run_round`` on this instance
        # only and emits one trace row per round.
        self._obs = recorder
        if recorder is not None:
            self.run_round = self._run_round_observed  # type: ignore[method-assign]
            recorder.attach(self)

    # ------------------------------------------------------------------
    # proposals and enabledness
    # ------------------------------------------------------------------

    def _refresh(self) -> None:
        """Re-propose every dirty node, settling the incremental state.

        Cost is O(|dirty|) transition evaluations — O(deg) per write applied
        since the last refresh, or one O(n) pass when a bulk batch raised
        the all-dirty flag.  Feeds the resulting enabled-set deltas to the
        scheduler's incremental hooks and prunes the active round's pending
        set, replacing the old per-step ``pending &= rescan``.

        All-dirty passes of vectorized protocols go through the columnar
        plane (:meth:`_vector_refresh`) instead of the per-node loop; a
        declined vector evaluation falls through to the scalar pass.
        """
        if self._dirty_all and self._vector_rule is not None:
            if self._vector_refresh():
                if not self._sched_synced:
                    self.scheduler.reset(self._enabled)
                    self._sched_synced = True
                return
        if self._dirty_all:
            items = self._all_nodes
            self._dirty_all = False
            self._dirty.clear()
        elif self._dirty:
            items = sorted(self._dirty)
            self._dirty.clear()
        else:
            items = None
        if items:
            added: list[int] = []
            removed: list[int] = []
            net, config = self.net, self.config
            rows = self._state
            slot_rule = self._slot_rule
            step = self.protocol.step
            fast_step = self._fast_step
            exact = self._exact_deltas
            index = self._index
            nbr_rows = self._nbr_rows
            view_rows = self._view_rows
            proposal = self._proposal
            # engine-owned EnabledSet internals, updated in place (the
            # method-call indirection is measurable at this call rate)
            eset = self._enabled._set
            elist = self._enabled._list
            # one view object reused across the fallback loop: step() must
            # not retain it (it is only valid for the duration of the
            # atomic step); the slot path never needs it
            view = (NodeView(net, 0, config, view_rows)
                    if slot_rule is None else None)
            i = 0
            try:
                for i, v in enumerate(items):
                    # inlined effective_delta (this loop dominates stepping
                    # cost).  Deltas are canonicalized to slot keys here, so
                    # everything downstream (_apply_batch) is index-only.
                    own = rows[v]
                    if slot_rule is not None:
                        delta = slot_rule(net, config, v, own, nbr_rows[v])
                        if not delta:
                            delta = None
                        elif not exact:
                            # count effective writes; allocate a filtered
                            # dict only when the proposal mixes no-op and
                            # effective slots
                            eff = 0
                            for k, val in delta.items():
                                if own[k] != val:
                                    eff += 1
                            if eff == 0:
                                delta = None
                            elif eff != len(delta):
                                delta = {k: val for k, val in delta.items()
                                         if own[k] != val}
                    else:
                        if fast_step is not None:
                            delta = fast_step(net, config, v, view_rows[v])
                        else:
                            view.node = v
                            delta = step(view)
                        if not delta:
                            delta = None
                        elif exact:
                            delta = {index[k]: val
                                     for k, val in delta.items()}
                        else:
                            eff = {}
                            for k, val in delta.items():
                                s = index[k]
                                if own[s] != val:
                                    eff[s] = val
                            delta = eff or None
                    proposal[v] = delta
                    if delta is not None:
                        if v not in eset:
                            eset.add(v)
                            insort(elist, v)
                            added.append(v)
                    elif v in eset:
                        eset.remove(v)
                        del elist[bisect_left(elist, v)]
                        removed.append(v)
            except BaseException:
                # a raising step() must not desynchronize the engine: the
                # node that failed and everything unprocessed stay dirty,
                # while the transitions already applied are delivered to the
                # scheduler below so mirror-keeping daemons stay coherent
                self._dirty.update(items[i:])
                raise
            finally:
                if self._pending is not None:
                    self._pending.difference_update(removed)
                if (self._sched_synced and (added or removed)
                        and self._notify is not None):
                    self._notify(added, removed)
        if not self._sched_synced:
            self.scheduler.reset(self._enabled)
            self._sched_synced = True

    def _vector_refresh(self) -> bool:
        """One all-dirty re-proposal through the columnar plane.

        Returns False when the compiled rule declines (stale or
        unencodable columns, value ranges its arithmetic cannot pack) —
        the caller then runs the scalar per-node pass, which handles
        everything.  On success the engine state (proposal table, enabled
        set, pending round set, scheduler notify) ends exactly as the
        scalar all-dirty pass would leave it.
        """
        store = self._columns
        if not store.fresh:
            store.sync()
        delta_map = self._vector_rule(store, None)
        if delta_map is None:
            return False
        # the rule evaluated every node: the dirty flags are consumed
        # (only after success — a decline must leave them raised)
        self._dirty_all = False
        self._dirty.clear()
        if not self._exact_deltas and delta_map:
            # same no-op filter as the scalar pass: enabledness is
            # defined on effective writes
            rows = self._state
            for v in list(delta_map):
                delta = delta_map[v]
                own = rows[v]
                eff = 0
                for s, val in delta.items():
                    if own[s] != val:
                        eff += 1
                if eff == 0:
                    del delta_map[v]
                elif eff != len(delta):
                    delta_map[v] = {s: val for s, val in delta.items()
                                    if own[s] != val}
        proposal = self._proposal
        proposal.update(dict.fromkeys(self._all_nodes))
        proposal.update(delta_map)
        new_ids = sorted(delta_map)
        enabled = self._enabled
        added, removed = store.commit_enabled(new_ids, enabled._list)
        # run_round and the select fast path hold aliases to these
        # internals: update them in place, never rebind
        enabled._set.clear()
        enabled._set.update(new_ids)
        enabled._list[:] = new_ids
        if self._pending is not None and removed:
            self._pending.difference_update(removed)
        if (self._sched_synced and (added or removed)
                and self._notify is not None):
            self._notify(added, removed)
        self.stat_vector_refreshes += 1
        return True

    def _propose(self, v: int) -> dict[int, object] | None:
        """The pending write of node v (slot-keyed), or None if not enabled."""
        if self._dirty_all or v in self._dirty:
            self._refresh()
        return self._proposal[v]

    def enabled_nodes(self) -> list[int]:
        """All currently enabled nodes, ascending."""
        self._refresh()
        return list(self._enabled)

    def enabled_set(self) -> EnabledSet:
        """The live enabled set (engine-owned; treat as read-only)."""
        self._refresh()
        return self._enabled

    def rescan_enabled(self) -> list[int]:
        """Enabled nodes recomputed from scratch, bypassing every cache.

        O(n) transition evaluations through the name-keyed ``step``
        contract over the Mapping views; exists so tests can cross-check
        the incrementally maintained enabled set — and the compiled slot
        rules feeding it — against first principles.
        """
        net, config, proto = self.net, self.config, self.protocol
        return [v for v in net.nodes
                if effective_delta(proto, NodeView(net, v, config)) is not None]

    def is_silent(self) -> bool:
        self._refresh()
        return not self._enabled

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _validate_selection(self, chosen: Sequence[int]) -> None:
        """Enforce the daemon contract: non-empty, duplicate-free, enabled."""
        if not chosen:
            raise RuntimeError(
                f"scheduler {self.scheduler.name!r} selected no node from a "
                f"non-empty enabled set")
        if len(chosen) == 1:  # the common central-daemon case
            if chosen[0] not in self._enabled:
                raise RuntimeError(
                    f"scheduler {self.scheduler.name!r} selected non-enabled "
                    f"nodes [{chosen[0]}] (enabled: {list(self._enabled)})")
            return
        name = self.scheduler.name
        chosen_set = set(chosen)
        if len(chosen_set) != len(chosen):
            dups = sorted(v for v in chosen_set if chosen.count(v) > 1)
            raise RuntimeError(
                f"scheduler {name!r} selected duplicate nodes {dups}; a node "
                f"takes at most one atomic step per daemon step")
        stray = [v for v in chosen_set if v not in self._enabled]
        if stray:
            raise RuntimeError(
                f"scheduler {name!r} selected non-enabled nodes "
                f"{sorted(stray)} (enabled: {list(self._enabled)})")

    def _apply_batch(self, nodes: Sequence[int]) -> None:
        """Apply the cached proposals of ``nodes`` simultaneously."""
        # gather first: every write must be based on the pre-step state.
        # Settle the incremental state once up front (a no-op on the
        # run_round/run_steps paths, which refresh before selecting), so
        # the gather below is a plain proposal-table read per node.
        if self._dirty_all or self._dirty:
            self._refresh()
        proposal = self._proposal
        dirty = self._dirty
        if len(nodes) == 1:  # central-daemon fast path
            v = nodes[0]
            delta = proposal[v]
            writes = [(v, delta)] if delta is not None else []
        else:
            writes = []
            for v in nodes:
                delta = proposal[v]
                if delta is not None:
                    writes.append((v, delta))
        rows = self._state
        bulk = self._global_reads or len(writes) >= self._bulk_dirty
        impact = None if bulk else self._write_impact
        olds = [] if impact is not None else None
        for v, delta in writes:
            row = rows[v]
            if olds is not None:
                # the impact filter compares against pre-write values
                olds.append({s: row[s] for s in delta})
            for s, val in delta.items():
                row[s] = val
        store = self._columns
        if store is not None and writes:
            # the columns go stale here; _vector_refresh resyncs on demand
            # (write-through would cost about what the resync does, and is
            # pure waste on central-daemon runs that never vectorize)
            store.fresh = False
        if bulk:
            # bulk batch (synchronous round / global reader): one flag
            # instead of per-write neighborhood set maintenance
            if writes:
                self._dirty_all = True
        else:
            net = self.net
            adjacency = net.adjacency
            # settles_after_move: a mover provably lands disabled, so it
            # skips re-evaluation and retires from the enabled set below —
            # unless another mover in its neighborhood may re-enable it
            # this very batch.  (Movers are pairwise non-adjacent to any
            # settled node, so no same-batch write can dirty one.)
            if not self._settles:
                settled = ()
            elif len(writes) == 1:
                settled = (writes[0][0],)
            else:
                movers = {v for v, _ in writes}
                nbr_set = net.neighbor_set
                settled = tuple(v for v in movers
                                if movers.isdisjoint(nbr_set(v)))
            settled_set = set(settled)
            if impact is not None:
                for (v, delta), old in zip(writes, olds):
                    if v not in settled_set:
                        dirty.add(v)
                    nbrs = impact(net, rows, v, delta, old, proposal)
                    # None = the filter declines: full neighborhood
                    dirty.update(adjacency[v] if nbrs is None else nbrs)
            else:
                for v, _ in writes:
                    # invalidate proposals in the write neighborhood
                    if v not in settled_set:
                        dirty.add(v)
                    dirty.update(adjacency[v])
            if settled:
                proposal_table = proposal
                eset = self._enabled._set
                elist = self._enabled._list
                retired: list[int] = []
                for v in settled:
                    proposal_table[v] = None
                    if v in eset:
                        eset.remove(v)
                        del elist[bisect_left(elist, v)]
                        retired.append(v)
                if retired:
                    self.stat_settle_retired += len(retired)
                    if self._pending is not None:
                        self._pending.difference_update(retired)
                    if self._sched_synced and self._notify is not None:
                        self._notify((), retired)
        self.moves += len(writes)
        if writes:
            # read the observer attributes live: callers may legitimately
            # attach an invariant or enable tracing after construction
            if self.invariant is not None and not self.invariant(self.net, self.config):
                self._invariant_violations += 1
            if self.record_trace:
                self._snapshot()

    def run_round(self, max_moves: int | None = None) -> bool:
        """Execute one full round.  Returns False if already silent.

        A round completes when every node that was enabled at the start has
        stepped or been neutralized by a neighbor's step.  A generous
        default move budget turns scheduler-starvation livelocks into
        diagnosable errors instead of hangs.
        """
        self._refresh()
        if not self._enabled:
            return False
        if max_moves is None:
            max_moves = 200 * self.net.n * self.net.n_bound + 10_000
        budget = max_moves
        pending = set(self._enabled)
        self._pending = pending  # _refresh prunes nodes that become disabled
        refresh = self._refresh
        select = self.scheduler.select
        validate = self._validate_selection
        apply_batch = self._apply_batch
        enabled = self._enabled
        eset = enabled._set
        elist = enabled._list
        # fused single-mover stepping: the central-daemon common case
        # (one write, a handful of neighborhood re-proposals) is applied
        # and re-proposed inline, skipping the _apply_batch/_refresh
        # frames and the dirty-set round trip entirely.  Disabled for
        # global readers (all-dirty semantics), the name-keyed fallback
        # path, and mirror-keeping daemons (their notify contract is the
        # general path's).  State evolution is identical: same writes,
        # same proposals, same enabled-set contents at every select.
        fused = (self._slot_rule is not None and not self._global_reads
                 and self._notify is None)
        pick = None
        if fused:
            net = self.net
            config = self.config
            rows = self._state
            slot_rule = self._slot_rule
            nbr_rows = self._nbr_rows
            proposal = self._proposal
            adjacency = net.adjacency
            impact = self._write_impact
            settles = self._settles
            exact = self._exact_deltas
            store = self._columns
            dirty = self._dirty
            # latched for the round (reassigning them mid-round from an
            # invariant callback is not a supported pattern)
            invariant = self.invariant
            record = self.record_trace
            # single-selection daemons expose ``pick`` (same distribution,
            # same RNG stream as select); it returns a member of the
            # enabled set by construction, so the fused path skips the
            # list-of-one round trip and the membership re-check
            pick = getattr(self.scheduler, "pick", None)
        try:
            while pending:
                if self._dirty_all or self._dirty:
                    refresh()
                    if not pending:
                        break
                if pick is not None:
                    v = pick(enabled)
                else:
                    chosen = select(enabled)
                    if len(chosen) != 1:
                        validate(chosen)
                        apply_batch(chosen)
                        pending.difference_update(chosen)
                        budget -= len(chosen)
                        if budget <= 0:
                            raise RuntimeError(
                                f"round exceeded {max_moves} moves "
                                f"(protocol={self.protocol.name}, "
                                f"n={self.net.n})"
                            )
                        continue
                    v = chosen[0]
                    if v not in eset:
                        validate(chosen)  # raises with the full diagnosis
                if fused:
                    delta = proposal[v]
                    row = rows[v]
                    old = None
                    if impact is not None:
                        # capture + write in one pass (the filter
                        # compares against the displaced values)
                        old = {}
                        for s, val in delta.items():
                            old[s] = row[s]
                            row[s] = val
                    else:
                        for s, val in delta.items():
                            row[s] = val
                    self.moves += 1
                    if store is not None:
                        store.fresh = False
                        store = None  # stale once is stale enough
                    if settles:
                        # the mover provably landed disabled: retire
                        proposal[v] = None
                        eset.remove(v)
                        del elist[bisect_left(elist, v)]
                    targets = (impact(net, rows, v, delta, old, proposal)
                               if impact is not None else None)
                    if targets is None:
                        targets = adjacency[v]
                    if not settles:
                        targets = [*targets, v]
                    i = 0
                    try:
                        for i, u in enumerate(targets):
                            own = rows[u]
                            d_u = slot_rule(net, config, u, own,
                                            nbr_rows[u])
                            if not d_u:
                                d_u = None
                            elif not exact:
                                eff = 0
                                for k, val in d_u.items():
                                    if own[k] != val:
                                        eff += 1
                                if eff == 0:
                                    d_u = None
                                elif eff != len(d_u):
                                    d_u = {k: val
                                           for k, val in d_u.items()
                                           if own[k] != val}
                            proposal[u] = d_u
                            if d_u is not None:
                                if u not in eset:
                                    eset.add(u)
                                    insort(elist, u)
                            elif u in eset:
                                eset.remove(u)
                                del elist[bisect_left(elist, u)]
                                pending.discard(u)
                    except BaseException:
                        # same coherence contract as _refresh: the
                        # failing node and everything unprocessed
                        # stay dirty for the next settle
                        dirty.update(targets[i:])
                        raise
                    pending.discard(v)
                    if invariant is not None and not invariant(net, config):
                        self._invariant_violations += 1
                    if record:
                        self._snapshot()
                    budget -= 1
                    if budget <= 0:
                        raise RuntimeError(
                            f"round exceeded {max_moves} moves "
                            f"(protocol={self.protocol.name}, "
                            f"n={self.net.n})"
                        )
                    continue
                apply_batch(chosen)
                pending.discard(v)
                budget -= 1
                if budget <= 0:
                    raise RuntimeError(
                        f"round exceeded {max_moves} moves "
                        f"(protocol={self.protocol.name}, n={self.net.n})"
                    )
        finally:
            self._pending = None
        self.rounds += 1
        return True

    def _run_round_observed(self, max_moves: int | None = None) -> bool:
        """``run_round`` with per-round telemetry — the recorder's loop.

        Installed as this instance's ``run_round`` at construction when
        a recorder is attached (see ``__init__``); the plain class
        method above is never patched, so unobserved simulators keep
        the exact pre-telemetry byte path.

        Mirrors the *general* (``select``-based, unfused) path of
        :meth:`run_round` exactly.  State evolution is bit-identical to
        the fused path by construction: single-selection daemons'
        ``pick`` draws from the same RNG stream as ``select`` (that
        equivalence is what the dual-path engine tests pin), so an
        observed run replays the same moves in the same order and a
        trace is a faithful record of the unobserved execution.
        """
        self._refresh()
        enabled_start = len(self._enabled)
        if not self._enabled:
            return False
        if max_moves is None:
            max_moves = 200 * self.net.n * self.net.n_bound + 10_000
        budget = max_moves
        pending = set(self._enabled)
        self._pending = pending
        refresh = self._refresh
        select = self.scheduler.select
        validate = self._validate_selection
        apply_batch = self._apply_batch
        enabled = self._enabled
        eset = enabled._set
        n = self.net.n
        moves_before = self.moves
        vector_before = self.stat_vector_refreshes
        settled_before = self.stat_settle_retired
        selections = 0
        dirty_peak = 0
        try:
            while pending:
                if self._dirty_all or self._dirty:
                    d = n if self._dirty_all else len(self._dirty)
                    if d > dirty_peak:
                        dirty_peak = d
                    refresh()
                    if not pending:
                        break
                chosen = select(enabled)
                selections += 1
                if len(chosen) != 1:
                    validate(chosen)
                    apply_batch(chosen)
                    pending.difference_update(chosen)
                    budget -= len(chosen)
                else:
                    v = chosen[0]
                    if v not in eset:
                        validate(chosen)  # raises with the full diagnosis
                    apply_batch(chosen)
                    pending.discard(v)
                    budget -= 1
                if budget <= 0:
                    raise RuntimeError(
                        f"round exceeded {max_moves} moves "
                        f"(protocol={self.protocol.name}, n={self.net.n})"
                    )
        finally:
            self._pending = None
        self.rounds += 1
        # settle the incremental state so the row reports the round-edge
        # enabled count (idempotent; the next round's opening refresh
        # becomes a no-op, and the potential probe reads a consistent
        # configuration)
        self._refresh()
        self._obs.on_round(
            self,
            moves=self.moves - moves_before,
            enabled_start=enabled_start,
            enabled_end=len(self._enabled),
            selections=selections,
            dirty_peak=dirty_peak,
            vector=self.stat_vector_refreshes - vector_before,
            settled=self.stat_settle_retired - settled_before,
        )
        return True

    def run_steps(self, max_moves: int) -> int:
        """Execute daemon steps until silence or ``max_moves`` moves.

        Sub-round granularity for callers that need a *move* budget on
        protocols whose rounds are huge (the perf harness budgets the
        slow-stepping baselines this way).  Does not advance the round
        counter — rounds are a property of complete-round executions.
        The budget is checked between daemon steps, so a multi-node
        selection may overshoot it by at most one batch.

        Returns the number of moves applied.
        """
        if max_moves < 1:
            raise ValueError(f"max_moves must be >= 1, got {max_moves}")
        start = self.moves
        while self.moves - start < max_moves:
            self._refresh()
            if not self._enabled:
                break
            chosen = self.scheduler.select(self._enabled)
            if len(chosen) != 1 or chosen[0] not in self._enabled._set:
                self._validate_selection(chosen)
            self._apply_batch(chosen)
        return self.moves - start

    def run(
        self,
        max_rounds: int,
        stop_when: Callable[[Network, Config], bool] | None = None,
        max_moves_per_round: int | None = None,
    ) -> RunResult:
        """Run until silence, the predicate, or the round budget.

        Raises RuntimeError if ``max_rounds`` is exhausted before silence
        (or before ``stop_when`` holds, when provided): a self-stabilizing
        run that does not converge within its budget is a failure, not a
        result.
        """
        stopped = False
        for _ in range(max_rounds):
            if stop_when is not None and stop_when(self.net, self.config):
                stopped = True
                break
            progressed = self.run_round(max_moves=max_moves_per_round)
            if not progressed:
                break
        else:
            if stop_when is None or not stop_when(self.net, self.config):
                raise RuntimeError(
                    f"no convergence within {max_rounds} rounds "
                    f"(protocol={self.protocol.name}, n={self.net.n}, "
                    f"scheduler={self.scheduler.name}, "
                    f"enabled={len(self.enabled_nodes())})"
                )
            stopped = True
        return RunResult(
            rounds=self.rounds,
            moves=self.moves,
            silent=self.is_silent(),
            stopped_by_predicate=stopped,
            invariant_violations=self._invariant_violations,
            # deep-copy: the result must stay valid across later run() calls
            # and caller mutations (the old aliasing silently corrupted
            # previously returned results).
            trace=[{v: dict(s) for v, s in snap.items()}
                   for snap in self._trace],
        )

    def run_to_silence(self, max_rounds: int) -> RunResult:
        return self.run(max_rounds=max_rounds)

    def confirm_silent(self, extra_rounds: int = 3) -> bool:
        """Certify silence: no node is enabled, now and after prodding.

        Because enabledness is a pure function of the configuration, one
        check suffices; the extra rounds assert that running the engine
        does not manufacture moves.
        """
        if not self.is_silent():
            return False
        before = self.moves
        for _ in range(extra_rounds):
            if self.run_round():
                return False
        return self.moves == before

    # ------------------------------------------------------------------
    # fault injection entry point
    # ------------------------------------------------------------------

    def overwrite(self, node: int, updates: Mapping[str, object]) -> None:
        """Adversarially overwrite parts of one node's register.

        Updates are name-keyed (the boundary shape) and written through
        the schema into the node's slot row.  Feeds the dirty set, so the
        incremental enabled set stays coherent across injected faults.
        """
        row = self._state.get(node)
        if row is None:
            raise KeyError(
                f"unknown node {node!r}: not a node of this network "
                f"(n={self.net.n})")
        index = self._index
        unknown = set(updates) - set(index)
        if unknown:
            raise KeyError(f"unknown fields: {sorted(unknown)}")
        for name, val in updates.items():
            row[index[name]] = val
        if self._columns is not None:
            # adversarial writes bypass the write-through; resync the
            # columns from the rows on the next vector refresh
            self._columns.fresh = False
        if self._global_reads:
            self._dirty_all = True
        else:
            self._dirty.add(node)
            self._dirty.update(self.net.neighbors(node))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _snapshot(self) -> None:
        names = self.schema.names
        rows = self._state
        self._trace.append(
            {v: dict(zip(names, rows[v])) for v in self.net.nodes})

"""Network partitioning for shard-parallel execution.

A :class:`ShardPlan` assigns every node to exactly one *owning* shard.
Ownership is what the round driver distributes: a shard evaluates and
writes only its owned nodes, reads its 1-hop halo, and ships the rows of
its owned *frontier* (owned nodes with a neighbor owned elsewhere) to the
shards holding them as halo at every round edge.  The plan therefore
determines both the per-round compute balance (shard sizes) and the
per-round communication volume (cut size / boundary widths) — which is
why ``python -m repro shard plan`` prints all three and why campaign
specs pin plans by fingerprint.

Two partitioners, both deterministic:

``bfs``
    BFS order from the minimum identity, cut into k contiguous chunks.
    BFS discovery order keeps chunks spatially coherent, so structured
    topologies (grids, rings, trees) get cuts close to the geometric
    optimum without a heavyweight partitioning library.
``stripes``
    Ascending-identity ranges.  The trivial baseline: O(1) reasoning,
    good cuts only when identity order happens to follow the geometry
    (implicit topologies number ``1..n`` in construction order, so
    stripes on a row-major grid are literal row bands).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

__all__ = ["ShardPlan", "plan_partition", "PARTITION_METHODS"]

PARTITION_METHODS: tuple[str, ...] = ("bfs", "stripes")


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """One immutable node -> shard assignment with its quality metrics."""

    method: str
    k: int
    #: per-shard owned nodes, each tuple sorted ascending
    shards: tuple[tuple[int, ...], ...]
    #: edges whose endpoints live on different shards
    cut_edges: int
    #: per-shard count of owned frontier nodes (rows shipped per round
    #: in the worst case)
    boundary: tuple[int, ...]

    @property
    def n(self) -> int:
        return sum(len(s) for s in self.shards)

    @property
    def balance(self) -> float:
        """max shard size / mean shard size (1.0 = perfectly balanced)."""
        sizes = [len(s) for s in self.shards]
        return max(sizes) / (sum(sizes) / len(sizes))

    def owner_of(self) -> dict[int, int]:
        """The node -> owning-shard lookup table."""
        owner: dict[int, int] = {}
        for i, nodes in enumerate(self.shards):
            for v in nodes:
                owner[v] = i
        return owner

    @property
    def fingerprint(self) -> str:
        """Digest of the full assignment — campaigns pin plans by this."""
        h = hashlib.sha256()
        h.update(f"{self.method}|{self.k}|".encode())
        for nodes in self.shards:
            h.update(",".join(map(str, nodes)).encode())
            h.update(b";")
        return h.hexdigest()[:16]

    def describe(self) -> dict[str, object]:
        """The JSON-ready summary the ``shard plan`` CLI prints/persists."""
        sizes = [len(s) for s in self.shards]
        return {
            "method": self.method,
            "k": self.k,
            "n": self.n,
            "sizes": sizes,
            "balance": round(self.balance, 4),
            "cut_edges": self.cut_edges,
            "boundary": list(self.boundary),
            "max_boundary": max(self.boundary),
            "fingerprint": self.fingerprint,
        }

    def to_json(self) -> str:
        payload = dict(self.describe())
        payload["shards"] = [list(s) for s in self.shards]
        return json.dumps(payload, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ShardPlan":
        payload = json.loads(text)
        return ShardPlan(
            method=payload["method"],
            k=payload["k"],
            shards=tuple(tuple(s) for s in payload["shards"]),
            cut_edges=payload["cut_edges"],
            boundary=tuple(payload["boundary"]),
        )


def _bfs_order(topo) -> list[int]:
    """Deterministic BFS discovery order from the minimum identity.

    Sorted-neighbor iteration (both :class:`Network` and implicit
    topologies return sorted tuples) makes the order a pure function of
    the graph.  Components beyond the first — shard-locality never
    requires global connectivity — are appended in ascending-id order,
    each swept from its own minimum.
    """
    order: list[int] = []
    seen: set[int] = set()
    for start in topo.nodes:
        if start in seen:
            continue
        seen.add(start)
        frontier = [start]
        order.append(start)
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in topo.neighbors(u):
                    if v not in seen:
                        seen.add(v)
                        order.append(v)
                        nxt.append(v)
            frontier = nxt
    return order


def _chunk(order: list[int], k: int) -> tuple[tuple[int, ...], ...]:
    """Cut ``order`` into k contiguous chunks, sizes differing by <= 1."""
    n = len(order)
    base, extra = divmod(n, k)
    shards: list[tuple[int, ...]] = []
    at = 0
    for i in range(k):
        size = base + (1 if i < extra else 0)
        shards.append(tuple(sorted(order[at:at + size])))
        at += size
    return tuple(shards)


def plan_partition(topo, k: int, method: str = "bfs") -> ShardPlan:
    """Partition ``topo`` (a Network or an implicit topology) k ways."""
    if k < 1:
        raise ValueError(f"shard count must be >= 1, got {k}")
    if k > topo.n:
        raise ValueError(f"cannot cut {topo.n} nodes into {k} shards")
    if method == "bfs":
        order = _bfs_order(topo)
    elif method == "stripes":
        order = list(topo.nodes)
    else:
        raise ValueError(
            f"unknown partition method {method!r}; "
            f"known: {list(PARTITION_METHODS)}")
    shards = _chunk(order, k)

    owner: dict[int, int] = {}
    for i, nodes in enumerate(shards):
        for v in nodes:
            owner[v] = i
    cut = 0
    boundary = [0] * k
    for i, nodes in enumerate(shards):
        for v in nodes:
            external = False
            for u in topo.neighbors(v):
                if owner[u] != i:
                    external = True
                    if v < u:
                        cut += 1
            if external:
                boundary[i] += 1

    return ShardPlan(method=method, k=k, shards=shards,
                     cut_edges=cut, boundary=tuple(boundary))

"""Partitioned shard-parallel execution of the synchronous daemon.

See :mod:`repro.runtime.sharding.engine` for the round protocol and the
equivalence argument, :mod:`repro.runtime.sharding.partition` for the
partitioners, and ``python -m repro shard --help`` for the CLI.
"""

from repro.runtime.sharding.engine import (
    ShardCrashError,
    ShardedSimulator,
    ShardRunResult,
    ShardWorker,
    config_fingerprint,
    per_node_configuration,
    simulator_fingerprint,
    single_process_reference,
)
from repro.runtime.sharding.partition import (
    PARTITION_METHODS,
    ShardPlan,
    plan_partition,
)

__all__ = [
    "PARTITION_METHODS",
    "ShardCrashError",
    "ShardPlan",
    "ShardRunResult",
    "ShardWorker",
    "ShardedSimulator",
    "config_fingerprint",
    "per_node_configuration",
    "plan_partition",
    "simulator_fingerprint",
    "single_process_reference",
]

"""``python -m repro shard`` — partition planning and sharded runs.

::

    python -m repro shard plan implicit-grid:rows=1000,cols=1000 8
    python -m repro shard plan random:n=512,seed=42 4 --out plan.json
    python -m repro shard run --topology implicit-grid:rows=250,cols=400 \
        --protocol sst --shards 4 --rounds 8 --processes
    python -m repro shard verify --shards 1,2,4,8

``plan`` prints (and optionally persists) a partition with its quality
metrics — cut size, per-shard boundary width, balance — plus the
fingerprint campaign specs pin partitions by.  ``run`` executes one
sharded workload.  ``verify`` is the equivalence gate CI runs: the
sharded execution must reproduce the single-process moves, rounds,
silence, and final-configuration digest exactly, at every requested
shard count.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

from repro.graphs.implicit import IMPLICIT_TOPOLOGIES, build_topology
from repro.runtime.sharding.engine import (
    ShardedSimulator,
    single_process_reference,
)
from repro.runtime.sharding.partition import (
    PARTITION_METHODS,
    ShardPlan,
    plan_partition,
)

__all__ = ["register_shard", "build_topology_spec", "parse_topology_spec"]

#: the pinned verify workload: the acceptance topology (the 512-node
#: random graph every perf PR quotes) under the synchronous daemon with
#: per-node arbitrary initialization
_PINNED_TOPOLOGY = "random:n=512,seed=42"
_PINNED_INIT_SEED = 7


def parse_topology_spec(spec: str) -> tuple[str, dict[str, int]]:
    """Parse ``name:key=val,key=val`` into (name, params)."""
    name, _, rest = spec.partition(":")
    params: dict[str, int] = {}
    if rest:
        for part in rest.split(","):
            key, sep, val = part.partition("=")
            if not sep:
                raise ValueError(
                    f"bad topology parameter {part!r} (expected key=value)")
            try:
                params[key.strip()] = int(val)
            except ValueError:
                raise ValueError(
                    f"topology parameter {key!r} must be an integer, "
                    f"got {val!r}") from None
    return name, params


def build_topology_spec(spec: str):
    """Build a topology from a spec string.

    ``implicit-*`` names resolve through the lazy family
    (:mod:`repro.graphs.implicit`); everything else materializes through
    the experiments registry with a fixed rng (a ``seed`` parameter in
    the spec pins the draw).  Also the seam the ``sharded-scale``
    campaign analysis addresses topologies through.
    """
    name, params = parse_topology_spec(spec)
    if name in IMPLICIT_TOPOLOGIES:
        return build_topology(name, params)
    from repro.experiments.registry import TOPOLOGIES, build_network
    if name not in TOPOLOGIES:
        known = sorted(TOPOLOGIES) + sorted(IMPLICIT_TOPOLOGIES)
        raise ValueError(f"unknown topology {name!r}; "
                         f"known: {', '.join(known)}")
    return build_network(name, params, random.Random(0))


def _build_topo(spec: str):
    try:
        return build_topology_spec(spec)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None


def _protocol_factory(name: str):
    from repro.experiments.registry import PROTOCOLS
    if name not in PROTOCOLS:
        raise SystemExit(f"error: unknown protocol {name!r}; "
                         f"known: {', '.join(sorted(PROTOCOLS))}")

    def factory():
        from repro.experiments.registry import build_protocol
        return build_protocol(name)[0]

    return factory


def _cmd_plan(args: argparse.Namespace) -> int:
    topo = _build_topo(args.topology)
    plan = plan_partition(topo, args.k, method=args.method)
    info = plan.describe()
    print(f"partition of {args.topology} into {plan.k} shards "
          f"({plan.method}):")
    for key in ("n", "sizes", "balance", "cut_edges", "boundary",
                "max_boundary", "fingerprint"):
        print(f"  {key:13} {info[key]}")
    if args.out:
        Path(args.out).write_text(plan.to_json())
        print(f"plan written to {args.out}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    topo = _build_topo(args.topology)
    if args.plan:
        plan = ShardPlan.from_json(Path(args.plan).read_text())
        if plan.n != topo.n:
            raise SystemExit(f"error: plan covers {plan.n} nodes, "
                             f"topology has {topo.n}")
    else:
        plan = plan_partition(topo, args.shards, method=args.method)
    factory = _protocol_factory(args.protocol)

    recorder = None
    if args.trace:
        from repro.obs.probes import TraceRecorder
        recorder = TraceRecorder(
            args.trace, header_extra={"topology": args.topology})

    # live progress: rounds-to-silence ticking on a terminal (rewriting
    # one status line), plain per-round lines when piped
    tty = sys.stderr.isatty()

    def hook(round_no, moves, per_shard):
        line = f"round {round_no}: {moves} moves ({len(per_shard)} shards)"
        if tty:
            print(f"\r  {line}\x1b[K", end="", file=sys.stderr, flush=True)
        elif not args.quiet:
            print(f"  {line}", file=sys.stderr, flush=True)

    sharded = ShardedSimulator(topo, factory, plan,
                               init_seed=args.init_seed,
                               processes=args.processes)
    try:
        result = sharded.run(
            max_rounds=args.rounds,
            require_silence=not args.no_silence,
            round_hook=hook,
            recorder=recorder)
    finally:
        sharded.close()
        if tty:
            print("\r\x1b[K", end="", file=sys.stderr, flush=True)
    print(f"{args.protocol} on {args.topology}, k={plan.k} "
          f"({plan.method}, fingerprint {plan.fingerprint}):")
    print(f"  rounds        {result.rounds}")
    print(f"  moves         {result.moves}")
    print(f"  silent        {result.silent}")
    print(f"  config digest {result.fingerprint}")
    print(f"  shard moves   {result.shard_moves}")
    print(f"  peak RSS KiB  {result.peak_rss_kb}")
    if args.trace:
        print(f"  convergence trace written to {args.trace} "
              f"(render: python -m repro obs report {args.trace})")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    topo = _build_topo(args.topology)
    counts = [int(x) for x in args.shards.split(",")]
    failures = 0
    for proto_name in args.protocol or ["sst"]:
        factory = _protocol_factory(proto_name)
        ref = single_process_reference(topo, factory,
                                       init_seed=args.init_seed,
                                       max_rounds=args.max_rounds)
        print(f"{proto_name}: single-process reference "
              f"rounds={ref[0]} moves={ref[1]} silent={ref[2]} "
              f"digest={ref[3]}")
        for k in counts:
            sharded = ShardedSimulator(
                topo, factory, plan_partition(topo, k, method=args.method),
                init_seed=args.init_seed, processes=args.processes)
            try:
                res = sharded.run(max_rounds=args.max_rounds)
            finally:
                sharded.close()
            got = (res.rounds, res.moves, res.silent, res.fingerprint)
            if got == ref:
                print(f"  k={k}: OK (bit-identical)")
            else:
                failures += 1
                print(f"  k={k}: MISMATCH sharded rounds={res.rounds} "
                      f"moves={res.moves} silent={res.silent} "
                      f"digest={res.fingerprint}", file=sys.stderr)
    if failures:
        print(f"shard verify: {failures} mismatch(es)", file=sys.stderr)
        return 1
    print("shard verify: all sharded runs bit-identical to single-process")
    return 0


def register_shard(subparsers) -> None:
    """Attach the ``shard`` subcommand to ``python -m repro``."""
    shard = subparsers.add_parser(
        "shard", help="partitioned shard-parallel execution")
    ssub = shard.add_subparsers(dest="subcommand", required=True)

    p_plan = ssub.add_parser(
        "plan", help="partition a topology and print/persist the plan")
    p_plan.add_argument("topology",
                        help="topology spec, e.g. "
                             "implicit-grid:rows=1000,cols=1000 or "
                             "random:n=512,seed=42")
    p_plan.add_argument("k", type=int, help="shard count")
    p_plan.add_argument("--method", choices=PARTITION_METHODS,
                        default="bfs")
    p_plan.add_argument("--out", metavar="PATH",
                        help="persist the full plan as JSON")
    p_plan.set_defaults(fn=_cmd_plan)

    p_run = ssub.add_parser("run", help="run one sharded workload")
    p_run.add_argument("--topology", required=True)
    p_run.add_argument("--protocol", required=True)
    p_run.add_argument("--shards", type=int, default=4)
    p_run.add_argument("--method", choices=PARTITION_METHODS,
                       default="bfs")
    p_run.add_argument("--plan", metavar="PATH",
                       help="load a persisted plan instead of --shards")
    p_run.add_argument("--init-seed", type=int, default=_PINNED_INIT_SEED)
    p_run.add_argument("--rounds", type=int, default=10_000,
                       help="round budget")
    p_run.add_argument("--no-silence", action="store_true",
                       help="treat the budget as a target, not a failure "
                            "(bounded-round scale runs)")
    p_run.add_argument("--processes", action="store_true",
                       help="one worker process per shard (default: "
                            "in-process workers)")
    p_run.add_argument("--trace", metavar="PATH",
                       help="stream the unified convergence trace here "
                            "(repro.obs JSONL schema; replaces the old "
                            "bespoke --stream format)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress per-round progress on stderr")
    p_run.set_defaults(fn=_cmd_run)

    p_verify = ssub.add_parser(
        "verify",
        help="equivalence gate: sharded must be bit-identical to "
             "single-process")
    p_verify.add_argument("--topology", default=_PINNED_TOPOLOGY)
    p_verify.add_argument("--protocol", action="append",
                          help="protocol(s) to verify (repeatable; "
                               "default sst)")
    p_verify.add_argument("--shards", default="1,2,4,8",
                          help="comma-separated shard counts")
    p_verify.add_argument("--method", choices=PARTITION_METHODS,
                          default="bfs")
    p_verify.add_argument("--init-seed", type=int,
                          default=_PINNED_INIT_SEED)
    p_verify.add_argument("--max-rounds", type=int, default=10_000)
    p_verify.add_argument("--in-process", dest="processes",
                          action="store_false",
                          help="in-process workers instead of one "
                               "process per shard")
    p_verify.set_defaults(fn=_cmd_verify, processes=True)

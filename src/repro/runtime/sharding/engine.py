"""Shard-parallel synchronous-daemon execution.

One :class:`ShardWorker` per shard runs an ordinary :class:`Simulator`
(columnar plane and all) on the shard-local subgraph — its owned nodes
plus their 1-hop halo — and the :class:`ShardedSimulator` drives them
through lock-step synchronous rounds:

1. **halo ingest** — rows shipped by neighbor shards at the previous
   round edge are written over the local halo registers;
2. **refresh** — the all-dirty flag is raised (halo writes plus last
   round's own writes invalidate everything near a frontier, and the
   all-dirty pass is exactly the one the columnar plane accelerates) and
   the incremental engine re-proposes;
3. **enabled-mask reconciliation** — the shard keeps only the enabled
   nodes it *owns*.  Halo nodes evaluate over incomplete neighborhoods,
   so their proposals are structurally garbage; ownership filtering is
   what makes the union of per-shard masks equal the global enabled set;
4. **apply** — the owned selection steps simultaneously off the
   pre-round configuration (:meth:`Simulator._apply_batch`'s
   gather-then-write), which is precisely the synchronous daemon;
5. **boundary exchange** — rows of owned frontier nodes that moved are
   routed to every shard holding them as halo.

A round with zero enabled owned nodes on *every* shard is global
silence.  Because each owned node sees exactly its global 1-hop
neighborhood (complete adjacency + halo rows synchronized to the
pre-round configuration), the per-round move sets — and therefore moves,
rounds, silence, and the final configuration — are bit-identical to a
single-process run on the same seed.  ``tests/test_sharding.py`` pins
that equivalence at every round boundary, across shard counts and both
column backends; it is the incremental≡rescan suite lifted to processes.

Process mode forks one worker per shard (fork start method: contexts
are inherited, never pickled) with a private pipe each.  A worker that
dies mid-round surfaces as :class:`ShardCrashError` naming the shard and
the round — partial results are never silently merged.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import random
import resource
import sys
import traceback
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.graphs.implicit import shard_network
from repro.graphs.network import Network
from repro.runtime.scheduler import SynchronousScheduler
from repro.runtime.sharding.partition import ShardPlan, plan_partition
from repro.runtime.simulator import Simulator

__all__ = ["ShardCrashError", "ShardRunResult", "ShardWorker",
           "ShardedSimulator", "config_fingerprint", "simulator_fingerprint",
           "per_node_configuration", "single_process_reference"]

#: modulus for the order-independent configuration digest (Mersenne
#: prime: summing per-node digests mod a prime keeps the combiner
#: commutative — shards contribute partial sums in any order)
_FP_MOD = (1 << 127) - 1


class ShardCrashError(RuntimeError):
    """A shard worker died or errored mid-execution.

    Carries the shard id and the (1-based) global round in flight so the
    failure is diagnosable from the message alone; the run's partial
    results are discarded, never merged.  When the parent has seen the
    dead worker complete at least one round, ``frame`` carries that
    worker's last telemetry frame (round, moves, enabled count) — the
    last thing the shard was known to be doing.
    """

    def __init__(self, shard_id: int, round_no: int, detail: str,
                 frame: Mapping[str, int] | None = None) -> None:
        self.shard_id = shard_id
        self.round_no = round_no
        self.frame = dict(frame) if frame is not None else None
        msg = f"shard {shard_id} failed during round {round_no}: {detail}"
        if frame is not None:
            msg += (f"; last telemetry frame: round {frame['round']}, "
                    f"{frame['moves']} moves, {frame['enabled']} enabled")
        super().__init__(msg)


# ----------------------------------------------------------------------
# deterministic building blocks shared by both execution paths
# ----------------------------------------------------------------------

def config_fingerprint(schema, rows: Mapping[int, object], nodes) -> int:
    """Order-independent digest of ``nodes``' registers.

    Hashes each node's ``(id, name=value...)`` line independently and
    sums the digests mod a prime, so per-shard partial sums over disjoint
    owned sets combine to exactly the single-process whole-network value.
    Values are folded through ``repr`` — the same canonical form the
    golden-hash suites rely on (``NONE`` reprs stably, registers hold
    plain ints/tuples/strings).
    """
    names = schema.names
    total = 0
    for v in nodes:
        row = rows[v]
        line = f"{v}:" + "|".join(
            f"{name}={row[i]!r}" for i, name in enumerate(names))
        digest = hashlib.sha256(line.encode()).digest()
        total = (total + int.from_bytes(digest[:16], "big")) % _FP_MOD
    return total


def simulator_fingerprint(sim: Simulator) -> int:
    """The whole-network fingerprint of a live single-process simulator."""
    return config_fingerprint(sim.schema, sim._state, sim.net.nodes)


def _node_rng(seed: int, node: int) -> random.Random:
    """The per-node RNG stream for shard-safe arbitrary initialization."""
    digest = hashlib.sha256(f"shard-init:{seed}:{node}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def per_node_configuration(net, spec, seed: int, nodes=None):
    """An arbitrary configuration drawn from per-node RNG streams.

    :func:`repro.runtime.simulator.random_configuration` consumes one
    sequential stream over all nodes — inherently unshardable, since no
    worker may depend on corruption order.  Here every node's corruption
    is a pure function of ``(seed, node)``, so a shard can initialize
    exactly its owned nodes (whose 1-hop neighborhoods are complete on
    the shard-local subgraph) and provably match what a single process
    computes for the same nodes on the whole network.
    """
    if nodes is None:
        nodes = net.nodes
    return {v: spec.corrupt_state(net, v, _node_rng(seed, v))
            for v in nodes}


def _peak_rss_kb() -> int:
    """This process's peak resident set, in KiB (ru_maxrss is bytes on
    macOS, KiB on Linux; normalized the same way the perf harness does)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


# ----------------------------------------------------------------------
# the per-shard worker
# ----------------------------------------------------------------------

@dataclass(slots=True)
class ShardContext:
    """Everything one worker needs; inherited over fork, never pickled."""

    shard_id: int
    owned: tuple[int, ...]
    topo: object
    protocol_factory: Callable[[], object]
    #: owned frontier node -> destination shard ids for its row
    routes: dict[int, tuple[int, ...]]
    #: full global name-keyed configuration (equivalence mode), or None
    #: for per-node deterministic initialization from ``init_seed``
    config: Mapping[int, Mapping[str, object]] | None
    init_seed: int
    use_vector_rules: bool


class ShardWorker:
    """One shard: a Simulator over the shard-local subgraph."""

    def __init__(self, ctx: ShardContext) -> None:
        self.shard_id = ctx.shard_id
        self.owned = ctx.owned
        self._owned_set = frozenset(ctx.owned)
        self.routes = ctx.routes
        net, halo = shard_network(ctx.topo, ctx.owned)
        self.halo = halo
        protocol = ctx.protocol_factory()
        spec = protocol.register_spec(net)
        if ctx.config is not None:
            config = {v: dict(ctx.config[v]) for v in net.nodes}
        else:
            config = per_node_configuration(net, spec, ctx.init_seed,
                                            ctx.owned)
            for v in halo:
                # placeholder rows only: every halo node is some owning
                # shard's frontier, so the initial boundary exchange
                # overwrites all of these before the first refresh
                config[v] = spec.default_state(net, v)
        self.sim = Simulator(net, protocol, SynchronousScheduler(),
                             config=config,
                             use_vector_rules=ctx.use_vector_rules)
        if protocol.shard_step(self.sim.schema) is None:
            raise ValueError(
                f"protocol {protocol.name!r} declines sharded execution "
                f"(shardable={getattr(protocol, 'shardable', True)}, "
                f"read_locality={protocol.read_locality!r})")

    def initial_frontier(self) -> dict[int, dict[int, list]]:
        """Owned frontier rows for every destination shard (pre-round 0)."""
        rows = self.sim._state
        out: dict[int, dict[int, list]] = {}
        for v, dests in self.routes.items():
            row = list(rows[v])
            for d in dests:
                out.setdefault(d, {})[v] = row
        return out

    def round(self, halo_updates: Mapping[int, list]
              ) -> tuple[int, dict[int, dict[int, list]]]:
        """One synchronous round edge; returns (moves, outgoing rows)."""
        sim = self.sim
        rows = sim._state
        if halo_updates:
            for v, row in halo_updates.items():
                rows[v][:] = row
            if sim._columns is not None:
                sim._columns.fresh = False
        # everything near a frontier may have changed; the all-dirty pass
        # is also the one the columnar plane vectorizes
        sim._dirty_all = True
        sim._refresh()
        owned = self._owned_set
        enabled_owned = [v for v in sim._enabled._list if v in owned]
        if not enabled_owned:
            return 0, {}
        sim._apply_batch(enabled_owned)
        sim._dirty_all = True
        out: dict[int, dict[int, list]] = {}
        routes = self.routes
        for v in enabled_owned:
            dests = routes.get(v)
            if dests:
                row = list(rows[v])
                for d in dests:
                    out.setdefault(d, {})[v] = row
        return len(enabled_owned), out

    def fingerprint(self) -> int:
        """This shard's partial configuration digest (owned nodes only)."""
        return config_fingerprint(self.sim.schema, self.sim._state,
                                  self.owned)

    def collect(self) -> dict[int, dict[str, object]]:
        """The owned slice of the configuration, name-keyed (small n)."""
        names = self.sim.schema.names
        rows = self.sim._state
        return {v: dict(zip(names, rows[v])) for v in self.owned}


def _worker_main(ctx: ShardContext, conn) -> None:
    """Process-mode command loop; one worker per shard over a pipe."""
    try:
        worker = ShardWorker(ctx)
        conn.send(("ready", worker.initial_frontier()))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "round":
                conn.send(("ok",) + worker.round(msg[1]))
            elif cmd == "fingerprint":
                conn.send(("ok", worker.fingerprint()))
            elif cmd == "collect":
                conn.send(("ok", worker.collect()))
            elif cmd == "rss":
                conn.send(("ok", _peak_rss_kb()))
            elif cmd == "stop":
                conn.send(("ok",))
                return
            else:  # pragma: no cover - parent never sends unknown commands
                raise RuntimeError(f"unknown shard command {cmd!r}")
    except EOFError:  # pragma: no cover - parent vanished
        return
    except BaseException as exc:
        try:
            conn.send(("error", repr(exc), traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        raise
    finally:
        conn.close()


# ----------------------------------------------------------------------
# the parent-side round driver
# ----------------------------------------------------------------------

@dataclass(slots=True)
class ShardRunResult:
    """Outcome of a sharded execution."""

    rounds: int
    moves: int
    silent: bool
    #: the combined configuration digest at the end of the run (hex)
    fingerprint: str
    #: total moves contributed by each shard
    shard_moves: list[int]
    #: per-shard peak RSS in KiB (process mode; parent-only otherwise)
    peak_rss_kb: list[int]


class ShardedSimulator:
    """Drives one worker per shard through lock-step synchronous rounds.

    ``topo`` is a :class:`Network` or an implicit topology; workers cut
    their shard-local subgraphs out of it themselves, so with an implicit
    topology the whole-network adjacency never materializes in any
    process.  ``protocol_factory`` builds a fresh protocol instance per
    worker (instances are not shared across shards).  Exactly one of
    ``config`` (a full name-keyed configuration — the bit-identical
    equivalence mode) or ``init_seed`` (per-node deterministic arbitrary
    initialization, see :func:`per_node_configuration`) provides the
    initial state.

    Only the synchronous daemon is supported: the round edge *is* the
    exchange point.  Central and distributed-subset daemons make global
    choices that no shard can reproduce locally.
    """

    def __init__(self, topo, protocol_factory: Callable[[], object],
                 plan: ShardPlan | int, *,
                 config: Mapping[int, Mapping[str, object]] | None = None,
                 init_seed: int = 0,
                 processes: bool = False,
                 use_vector_rules: bool = True) -> None:
        if isinstance(plan, int):
            plan = plan_partition(topo, plan)
        if plan.n != topo.n:
            raise ValueError(
                f"plan covers {plan.n} nodes, topology has {topo.n}")
        probe = protocol_factory()
        if (not getattr(probe, "shardable", True)
                or probe.read_locality != "neighborhood"):
            raise ValueError(
                f"protocol {probe.name!r} declines sharded execution "
                f"(shardable={getattr(probe, 'shardable', True)}, "
                f"read_locality={probe.read_locality!r})")
        self.plan = plan
        self.k = plan.k
        self.protocol_name = probe.name
        self.rounds = 0
        self.moves = 0
        self.shard_moves = [0] * plan.k
        #: per-shard last telemetry frame ({"round", "moves", "enabled"})
        #: — updated every executed round, attached to ShardCrashError so
        #: a dead worker's last known state survives into the diagnosis
        self.last_frames: list[dict[str, int] | None] = [None] * plan.k
        self._silent = False
        self._processes = processes
        self._procs: list = []
        self._conns: list = []
        self._workers: list[ShardWorker] = []

        owner = plan.owner_of()
        contexts = []
        for i, owned in enumerate(plan.shards):
            routes: dict[int, tuple[int, ...]] = {}
            for v in owned:
                dests = sorted({owner[u] for u in topo.neighbors(v)} - {i})
                if dests:
                    routes[v] = tuple(dests)
            contexts.append(ShardContext(
                shard_id=i, owned=owned, topo=topo,
                protocol_factory=protocol_factory, routes=routes,
                config=config, init_seed=init_seed,
                use_vector_rules=use_vector_rules))

        if processes:
            mp = multiprocessing.get_context("fork")
            for ctx in contexts:
                parent_conn, child_conn = mp.Pipe()
                proc = mp.Process(target=_worker_main,
                                  args=(ctx, child_conn), daemon=True)
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            frontiers = [self._recv(i)[0] for i in range(self.k)]
        else:
            self._workers = [ShardWorker(ctx) for ctx in contexts]
            frontiers = [w.initial_frontier() for w in self._workers]

        # the initial boundary exchange: every halo row everywhere is
        # overwritten with its owner's true initial value before round 1
        self._halo_in: list[dict[int, list]] = [{} for _ in range(self.k)]
        self._route(frontiers)

    # -- plumbing -------------------------------------------------------

    def _recv(self, i: int):
        conn = self._conns[i]
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            code = self._procs[i].exitcode
            raise ShardCrashError(
                i, self.rounds + 1,
                f"worker process died (exitcode {code})",
                frame=self.last_frames[i]) from None
        if msg[0] == "error":
            raise ShardCrashError(i, self.rounds + 1,
                                  f"{msg[1]}\n{msg[2]}",
                                  frame=self.last_frames[i])
        return msg[1:]

    def _send(self, i: int, msg) -> None:
        try:
            self._conns[i].send(msg)
        except (BrokenPipeError, OSError):
            code = self._procs[i].exitcode
            raise ShardCrashError(
                i, self.rounds + 1,
                f"worker process died (exitcode {code})",
                frame=self.last_frames[i]) from None

    def _route(self, outs) -> None:
        for out in outs:
            for dest, updates in out.items():
                self._halo_in[dest].update(updates)

    def _command(self, cmd: str):
        """Round-trip one command to every shard; returns the replies."""
        if self._processes:
            for i in range(self.k):
                self._send(i, (cmd,))
            return [self._recv(i)[0] for i in range(self.k)]
        return [getattr(w, cmd)() for w in self._workers]

    # -- execution ------------------------------------------------------

    def run_round(self) -> int:
        """One global synchronous round; returns its move count (0 =
        silent, and the round is not counted, matching ``run_round``)."""
        halo = self._halo_in
        self._halo_in = [{} for _ in range(self.k)]
        if self._processes:
            for i in range(self.k):
                self._send(i, ("round", halo[i]))
            results = [self._recv(i) for i in range(self.k)]
        else:
            results = [w.round(halo[i])
                       for i, w in enumerate(self._workers)]
        total = 0
        outs = []
        attempted = self.rounds + 1
        for i, (count, out) in enumerate(results):
            total += count
            self.shard_moves[i] += count
            # under the synchronous daemon every enabled owned node
            # steps, so the shard's move count is its enabled count
            self.last_frames[i] = {"round": attempted, "moves": count,
                                   "enabled": count}
            outs.append(out)
        if total == 0:
            self._silent = True
            return 0
        self.rounds += 1
        self.moves += total
        self._route(outs)
        return total

    def run(self, max_rounds: int, *, require_silence: bool = True,
            round_hook: Callable[[int, int, list[int]], None] | None = None,
            recorder=None) -> ShardRunResult:
        """Run to silence or the round budget.

        ``round_hook(round_no, round_moves, per_shard_moves)`` fires
        after every executed round — the live progress seam (the shard
        CLI ticks rounds-to-silence through it; nothing is materialized).

        ``recorder`` (a :class:`repro.obs.probes.TraceRecorder`) streams
        the run as a unified convergence trace: workers' telemetry
        frames are merged per round into one row carrying the shard
        breakdown.  Rows are emitted with a one-round lag because a
        round's ``enabled_end`` is the *next* round's enabled count
        under the synchronous daemon (the silence check flushes the
        final row with 0); on a budget stop the last row's
        ``enabled_end`` is ``null`` — unmeasured, not zero.
        """
        if recorder is not None:
            recorder.attach_sharded(self)
        pending_row: tuple[int, list[int]] | None = None
        try:
            while not self._silent and self.rounds < max_rounds:
                before = list(self.shard_moves)
                total = self.run_round()
                per_shard = [a - b for a, b
                             in zip(self.shard_moves, before)]
                if recorder is not None:
                    if pending_row is not None:
                        recorder.round_row(
                            moves=pending_row[0],
                            enabled_start=pending_row[0],
                            enabled_end=total,
                            per_shard=pending_row[1])
                    pending_row = (total, per_shard) if total else None
                if total and round_hook is not None:
                    round_hook(self.rounds, total, per_shard)
            if recorder is not None:
                if pending_row is not None:  # budget stop mid-convergence
                    recorder.round_row(
                        moves=pending_row[0], enabled_start=pending_row[0],
                        enabled_end=None, per_shard=pending_row[1])
                recorder.finalize(silent=self._silent)
            if require_silence and not self._silent:
                raise RuntimeError(
                    f"no convergence within {max_rounds} rounds "
                    f"(sharded run, k={self.k})")
            return ShardRunResult(
                rounds=self.rounds, moves=self.moves, silent=self._silent,
                fingerprint=self.fingerprint(),
                shard_moves=list(self.shard_moves),
                peak_rss_kb=self.peak_rss_kb())
        except BaseException:
            if recorder is not None:
                recorder.abort()
            self.terminate()
            raise

    def is_silent(self) -> bool:
        return self._silent

    def fingerprint(self) -> str:
        """The combined (order-independent) configuration digest, hex."""
        total = sum(self._command("fingerprint")) % _FP_MOD
        return f"{total:032x}"

    def collect_config(self) -> dict[int, dict[str, object]]:
        """The merged name-keyed configuration (small-n verification)."""
        merged: dict[int, dict[str, object]] = {}
        for part in self._command("collect"):
            merged.update(part)
        return merged

    def peak_rss_kb(self) -> list[int]:
        """Per-shard peak RSS (KiB); the parent's own in in-process mode."""
        if self._processes:
            return list(self._command("rss"))
        return [_peak_rss_kb()]

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Orderly shutdown of the worker processes."""
        if not self._processes:
            self._workers = []
            return
        for i in range(self.k):
            try:
                self._conns[i].send(("stop",))
                self._conns[i].recv()
            except (BrokenPipeError, OSError, EOFError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
        self.terminate()

    def terminate(self) -> None:
        """Hard shutdown (error paths); safe to call repeatedly."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ShardedSimulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# the single-process reference (what sharded runs are proven against)
# ----------------------------------------------------------------------

def single_process_reference(topo, protocol_factory, *,
                             config=None, init_seed: int = 0,
                             max_rounds: int = 10_000,
                             require_silence: bool = True,
                             use_vector_rules: bool = True):
    """Run the same workload on one ordinary Simulator.

    Returns ``(rounds, moves, silent, fingerprint_hex)`` — the exact
    tuple a :class:`ShardRunResult` carries, computed by the unsharded
    engine on the materialized network.  The equivalence suite and the
    ``shard verify`` CLI compare against this.
    """
    net = topo if isinstance(topo, Network) else topo.materialize()
    protocol = protocol_factory()
    if config is None:
        spec = protocol.register_spec(net)
        config = per_node_configuration(net, spec, init_seed)
    sim = Simulator(net, protocol, SynchronousScheduler(), config=config,
                    use_vector_rules=use_vector_rules)
    rounds = 0
    while rounds < max_rounds:
        if not sim.run_round():
            break
        rounds += 1
    else:
        if require_silence and not sim.is_silent():
            raise RuntimeError(
                f"no convergence within {max_rounds} rounds "
                f"(single-process reference)")
    fp = f"{simulator_fingerprint(sim) % _FP_MOD:032x}"
    return sim.rounds, sim.moves, sim.is_silent(), fp

"""Dynamic-network & churn scenario engine (ROADMAP item 3).

Self-stabilization is *the* tool for networks that change under you;
this package makes the change happen.  It has four pieces:

* :mod:`~repro.runtime.dynamics.events` — the topology-event model
  (edge add/remove, node join/crash/recover) with a canonical-JSON
  trace round-trip;
* :mod:`~repro.runtime.dynamics.schedules` — deterministic seeded event
  generators: single events, batched churn, mobility-style waves;
* :mod:`~repro.runtime.dynamics.apply` — the application layer: each
  event produces a new immutable :class:`~repro.graphs.network.Network`
  revision and rebinds a *running* simulator to it coherently through
  the dirty set, with a rescan proof obligation at the event boundary;
* :mod:`~repro.runtime.dynamics.run` — the super-stabilization
  measurement loop: re-silence rounds/moves per churn wave plus the
  certification-flicker locality histogram, feeding the ``churn``
  campaign family and the ``python -m repro churn`` CLI.
"""

from repro.runtime.dynamics.apply import EventError, EventReport, apply_event, revise
from repro.runtime.dynamics.events import (
    EVENT_KINDS,
    EdgeAdd,
    EdgeRemove,
    NodeCrash,
    NodeJoin,
    NodeRecover,
    TopologyEvent,
    dump_events,
    event_from_dict,
    load_events,
)
from repro.runtime.dynamics.run import run_churn
from repro.runtime.dynamics.schedules import ChurnSchedule, materialize_schedule

__all__ = [
    "TopologyEvent",
    "EdgeAdd",
    "EdgeRemove",
    "NodeJoin",
    "NodeCrash",
    "NodeRecover",
    "EVENT_KINDS",
    "event_from_dict",
    "dump_events",
    "load_events",
    "EventError",
    "EventReport",
    "apply_event",
    "revise",
    "run_churn",
    "ChurnSchedule",
    "materialize_schedule",
]

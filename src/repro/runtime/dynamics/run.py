"""The super-stabilization measurement loop.

Super-stabilization (Dolev & Herman) asks two questions of a silent
self-stabilizing construction facing a *single* topology change and, by
extension, ongoing churn:

* **how fast does it re-silence** — rounds and moves from the event to
  the next silent configuration (the passage predicate cost); and
* **how confined is the disruption** — here measured through the local
  verifier: after an event, which nodes' certificates flicker to
  rejecting, and how far (BFS hops) do those rejections sit from the
  nodes the event touched?

:func:`run_churn` drives a live simulator through a seeded schedule of
events, waits out re-silence after each wave, samples the verifier every
round, and aggregates both answers: per-wave re-silence costs plus a
rejection-distance histogram whose mass within :data:`NEAR_RADIUS` hops
is the *certification-flicker locality* metric reported by the churn
campaigns.
"""

from __future__ import annotations

import random
from typing import Any

from repro.graphs.network import Network
from repro.runtime.dynamics.apply import apply_event
from repro.runtime.dynamics.schedules import ChurnSchedule

__all__ = ["NEAR_RADIUS", "bfs_distances", "run_churn"]

#: verifier rejections within this many hops of the event's touched
#: nodes count as *near* (confined disruption)
NEAR_RADIUS = 2


def bfs_distances(net: Network, sources: tuple[int, ...]) -> dict[int, int]:
    """Multi-source BFS hop distance from ``sources`` to every node."""
    dist = {v: 0 for v in sources}
    frontier = sorted(dist)
    d = 0
    while frontier:
        d += 1
        nxt = []
        for u in frontier:
            for w in net.neighbors(u):
                if w not in dist:
                    dist[w] = d
                    nxt.append(w)
        frontier = nxt
    return dist


def run_churn(sim: Any, *, kind: str, waves: int, seed: int,
              certifier_key: str | None = None,
              recorder: Any = None, check: bool = False,
              max_rounds_per_wave: int | None = None) -> dict[str, Any]:
    """Drive a simulator through seeded churn, measuring re-silence.

    Each wave draws one feasible event from a :class:`ChurnSchedule`,
    applies it (``check=True`` adds the event-boundary rescan proof
    obligation), then runs rounds until the configuration is silent
    again, sampling the ``certifier_key`` verifier every round to build
    the rejection-locality histogram.  ``recorder`` (a
    :class:`~repro.obs.probes.TraceRecorder` already attached to
    ``sim``) gets one v2 ``event`` row per wave.

    The schedule and the joiner-register sampler get independent
    deterministic streams split from ``seed``, so the event sequence is
    invariant under protocol/daemon choice — the grid compares like
    against like.
    """
    base = random.Random(seed)
    sched = ChurnSchedule(kind, base.getrandbits(63))
    init_rng = random.Random(base.getrandbits(63))
    cert = None
    if certifier_key is not None:
        from repro.certify.schemes import get_certifier
        cert = get_certifier(certifier_key)

    wave_rows: list[dict[str, Any]] = []
    event_kinds: dict[str, int] = {}
    rejection_hist: dict[int, int] = {}
    rejections_total = 0
    rejections_near = 0
    interrupt_writes_total = 0

    for _ in range(waves):
        event = sched.next_event(sim.net)
        if event is None:
            break  # schedule exhausted (e.g. n_bound headroom spent)
        report = apply_event(sim, event, rng=init_rng, check=check)
        if recorder is not None:
            recorder.event_row(event=event.to_dict(), n=report.n,
                               enabled=report.enabled_after)
        event_kinds[event.kind] = event_kinds.get(event.kind, 0) + 1
        interrupt_writes_total += report.interrupt_writes
        dist = bfs_distances(sim.net, report.touched)

        cap = max_rounds_per_wave or 20_000 * sim.net.n
        rounds = 0
        moves_before = sim.moves
        while not sim.is_silent():
            if rounds >= cap:
                raise RuntimeError(
                    f"no re-silence within {cap} rounds after {event} "
                    f"(kind={kind}, wave {len(wave_rows) + 1})")
            sim.run_round()
            rounds += 1
            if cert is not None:
                outcome = cert.verify(sim.net, sim.config)
                for v in outcome.rejecting:
                    d = dist.get(v, -1)  # -1: unreachable from the event
                    rejection_hist[d] = rejection_hist.get(d, 0) + 1
                    rejections_total += 1
                    if 0 <= d <= NEAR_RADIUS:
                        rejections_near += 1

        wave_rows.append({
            "event": event.to_dict(),
            "touched": len(report.touched),
            "interrupt_writes": report.interrupt_writes,
            "enabled_after": report.enabled_after,
            "rounds": rounds,
            "moves": sim.moves - moves_before,
            "n": report.n,
            "m": report.m,
        })

    rounds_all = [w["rounds"] for w in wave_rows]
    moves_all = [w["moves"] for w in wave_rows]
    return {
        "kind": kind,
        "seed": seed,
        "events": len(wave_rows),
        "event_kinds": dict(sorted(event_kinds.items())),
        "waves": wave_rows,
        "resilience_rounds_total": sum(rounds_all),
        "resilience_rounds_max": max(rounds_all, default=0),
        "resilience_moves_total": sum(moves_all),
        "resilience_moves_max": max(moves_all, default=0),
        "interrupt_writes": interrupt_writes_total,
        "rejections": rejections_total,
        "rejections_near": rejections_near,
        "rejection_hist": {str(d): c
                           for d, c in sorted(rejection_hist.items())},
        "locality": (rejections_near / rejections_total
                     if rejections_total else None),
        "silent": bool(sim.is_silent()),
    }

"""Deterministic seeded churn schedules.

A :class:`ChurnSchedule` turns a seed into a stream of topology events
against an *evolving* network: every draw is made from sorted candidate
lists under one private :class:`random.Random`, so the same seed over
the same starting network yields a byte-identical event stream — the
determinism the trace round-trip tests diff.

Schedule kinds (the schedule grammar):

``edge-add`` / ``edge-remove`` / ``crash`` / ``join``
    single-kind streams (each event drawn from the kind's feasible
    candidates; ``None`` when exhausted);
``edge-flip``
    alternating remove/add — mobility-style link churn at constant
    density;
``crash-join``
    alternating crash/join — population churn with fresh identities;
``crash-recover``
    alternating crash/recover — the recovering node returns onto the
    surviving part of its remembered edges;
``mixed``
    a uniform draw among the feasible kinds each step.

Feasibility is validity under :func:`~repro.runtime.dynamics.apply.revise`:
removals and crashes are drawn only from edges/nodes whose removal keeps
the network connected, joins only while ``n_bound`` leaves headroom.
"""

from __future__ import annotations

import random

from repro.graphs.network import Network
from repro.runtime.dynamics.apply import revise
from repro.runtime.dynamics.events import (
    EdgeAdd,
    EdgeRemove,
    NodeCrash,
    NodeJoin,
    NodeRecover,
    TopologyEvent,
)

__all__ = ["SCHEDULE_KINDS", "ChurnSchedule", "materialize_schedule"]

SCHEDULE_KINDS: tuple[str, ...] = (
    "edge-add", "edge-remove", "crash", "join",
    "edge-flip", "crash-join", "crash-recover", "mixed",
)

#: attachment degree cap for joiners/recoverers without remembered edges
_MAX_ATTACH = 3


def _removable_edges(net: Network) -> list[tuple[int, int]]:
    """Edges whose removal keeps the network connected (sorted)."""
    out = []
    for u, v in net.edges:
        if net.degree(u) < 2 or net.degree(v) < 2:
            continue
        # BFS from u avoiding {u, v}: reconnection proves the edge sits
        # on a cycle
        seen = {u}
        frontier = [u]
        found = False
        while frontier and not found:
            nxt = []
            for x in frontier:
                for w in net.neighbors(x):
                    if x == u and w == v:
                        continue
                    if w == v:
                        found = True
                        break
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
                if found:
                    break
            frontier = nxt
        if found:
            out.append((u, v))
    return out


def _crashable_nodes(net: Network) -> list[int]:
    """Non-cut vertices (sorted); their crash keeps the rest connected."""
    if net.n < 2:
        return []
    return [v for v in net.nodes
            if net.is_connected_subset(set(net.nodes) - {v})]


class ChurnSchedule:
    """A seeded generator of feasible events against an evolving network.

    :meth:`next_event` draws one event valid on the network it is shown
    (callers apply it before asking for the next); alternating kinds
    keep their own phase latch, and ``crash-recover`` remembers each
    crashed node's edges so recovery restores the surviving part.
    """

    def __init__(self, kind: str, seed: int) -> None:
        if kind not in SCHEDULE_KINDS:
            raise ValueError(f"unknown schedule kind {kind!r} "
                             f"(known: {', '.join(SCHEDULE_KINDS)})")
        self.kind = kind
        self.seed = seed
        self._rng = random.Random(seed)
        self._phase = 0  # alternating-kind latch
        #: crashed node -> its edge endpoints at crash time
        self._crashed: dict[int, tuple[int, ...]] = {}

    # -- single-kind draws ---------------------------------------------

    def _draw_edge_add(self, net: Network) -> EdgeAdd | None:
        candidates = sorted(net.non_edges())
        if not candidates:
            return None
        u, v = self._rng.choice(candidates)
        return EdgeAdd(u, v)

    def _draw_edge_remove(self, net: Network) -> EdgeRemove | None:
        candidates = _removable_edges(net)
        if not candidates:
            return None
        u, v = self._rng.choice(candidates)
        return EdgeRemove(u, v)

    def _draw_crash(self, net: Network) -> NodeCrash | None:
        candidates = _crashable_nodes(net)
        if not candidates:
            return None
        v = self._rng.choice(candidates)
        self._crashed[v] = net.neighbors(v)
        return NodeCrash(v)

    def _free_id(self, net: Network) -> int | None:
        used = set(net.nodes) | set(self._crashed)
        for i in range(1, net.id_space + 1):
            if i not in used:
                return i
        return None

    def _draw_join(self, net: Network) -> NodeJoin | None:
        if net.n + 1 > net.n_bound:
            return None
        node = self._free_id(net)
        if node is None:
            return None
        k = self._rng.randint(1, min(_MAX_ATTACH, net.n))
        anchors = sorted(self._rng.sample(sorted(net.nodes), k))
        return NodeJoin(node, tuple(anchors), init="sampled")

    def _draw_recover(self, net: Network) -> NodeRecover | None:
        if net.n + 1 > net.n_bound:
            return None
        live = set(net.nodes)
        ready = sorted(v for v, edges in self._crashed.items()
                       if any(a in live for a in edges))
        if not ready:
            return None
        v = ready[0]  # oldest-id-first: deterministic
        edges = tuple(a for a in self._crashed.pop(v) if a in live)
        return NodeRecover(v, edges, init="bottom")

    # -- the stream ------------------------------------------------------

    def next_event(self, net: Network) -> TopologyEvent | None:
        """One feasible event against ``net``, or None when exhausted."""
        kind = self.kind
        if kind == "edge-add":
            return self._draw_edge_add(net)
        if kind == "edge-remove":
            return self._draw_edge_remove(net)
        if kind == "crash":
            return self._draw_crash(net)
        if kind == "join":
            return self._draw_join(net)
        if kind in ("edge-flip", "crash-join", "crash-recover"):
            first, second = {
                "edge-flip": (self._draw_edge_remove, self._draw_edge_add),
                "crash-join": (self._draw_crash, self._draw_join),
                "crash-recover": (self._draw_crash, self._draw_recover),
            }[kind]
            draw = first if self._phase == 0 else second
            ev = draw(net)
            if ev is None:  # this phase exhausted: try the other one
                other = second if self._phase == 0 else first
                ev = other(net)
                if ev is not None:
                    self._phase ^= 1
            self._phase ^= 1
            return ev
        # mixed: uniform over the feasible kinds, in a fixed draw order
        draws = [("edge-add", self._draw_edge_add),
                 ("edge-remove", self._draw_edge_remove),
                 ("crash", self._draw_crash),
                 ("join", self._draw_join)]
        order = list(range(len(draws)))
        self._rng.shuffle(order)
        for i in order:
            ev = draws[i][1](net)
            if ev is not None:
                return ev
        return None


def materialize_schedule(net: Network, *, kind: str, count: int,
                         seed: int) -> list[TopologyEvent]:
    """The first ``count`` events of a schedule, evolved through
    :func:`~repro.runtime.dynamics.apply.revise` only (no simulator) —
    the pure form the determinism tests serialize and diff."""
    sched = ChurnSchedule(kind, seed)
    events: list[TopologyEvent] = []
    current = net
    for _ in range(count):
        ev = sched.next_event(current)
        if ev is None:
            break
        current = revise(current, ev)
        events.append(ev)
    return events

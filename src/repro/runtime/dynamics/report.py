"""Rendering churn campaign results: the super-stabilization tables.

Pure functions of stored campaign records (the ``metrics["churn"]``
payload :func:`~repro.runtime.dynamics.run.run_churn` produces) — a
report is reproducible from the JSONL store alone, like every other
table in the repository.

Two tables:

* **re-silence** — moves and rounds back to silence per churn wave,
  grouped by (protocol, schedule kind, waves) and aggregated across the
  daemon axis: the super-stabilization cost of a single event vs
  batched churn;
* **rejection locality** — how the verifier's rejections distribute
  over BFS distance from each event's touched nodes, and the fraction
  within :data:`~repro.runtime.dynamics.run.NEAR_RADIUS` hops (the
  certification-flicker locality metric).
"""

from __future__ import annotations

from typing import Any

from repro.analysis import format_table
from repro.runtime.dynamics.run import NEAR_RADIUS

__all__ = ["churn_records", "render_resilience", "render_locality",
           "render_churn_report"]


def churn_records(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """The records that actually ran a churn phase."""
    return [r for r in records if r.get("metrics", {}).get("churn")]


def _group(records: list[dict[str, Any]]
           ) -> dict[tuple[str, str, int], list[dict[str, Any]]]:
    groups: dict[tuple[str, str, int], list[dict[str, Any]]] = {}
    for r in records:
        spec = r.get("spec", {})
        churn = r["metrics"]["churn"]
        key = (spec.get("protocol", "?"), churn.get("kind", "?"),
               int(spec.get("events", {}).get("waves", 0)))
        groups.setdefault(key, []).append(r)
    return groups


def render_resilience(records: list[dict[str, Any]], *,
                      markdown: bool = False) -> str:
    """The re-silence table: single vs batched churn, across daemons."""
    rows = []
    for (proto, kind, waves), group in sorted(_group(records).items()):
        churns = [r["metrics"]["churn"] for r in group]
        events = sum(c["events"] for c in churns)
        rounds_tot = sum(c["resilience_rounds_total"] for c in churns)
        moves_tot = sum(c["resilience_moves_total"] for c in churns)
        rows.append((
            proto, kind, waves, len(group), events,
            f"{rounds_tot / max(events, 1):.1f}",
            max(c["resilience_rounds_max"] for c in churns),
            f"{moves_tot / max(events, 1):.1f}",
            max(c["resilience_moves_max"] for c in churns),
            sum(c["interrupt_writes"] for c in churns),
            "yes" if all(c["silent"] for c in churns) else "NO",
        ))
    return format_table(
        "re-silence after topology events (mean/max per wave, "
        "aggregated across daemons)",
        ["protocol", "kind", "waves", "runs", "events", "rounds/ev",
         "rounds max", "moves/ev", "moves max", "interrupt", "re-silent"],
        rows, markdown=markdown)


def render_locality(records: list[dict[str, Any]], *,
                    markdown: bool = False) -> str:
    """The certification-flicker locality table."""
    rows = []
    groups: dict[tuple[str, str], dict[str, int]] = {}
    for r in records:
        spec = r.get("spec", {})
        churn = r["metrics"]["churn"]
        key = (spec.get("protocol", "?"), churn.get("kind", "?"))
        agg = groups.setdefault(key, {"total": 0, "near": 0, "hist": {}})
        agg["total"] += churn.get("rejections", 0)
        agg["near"] += churn.get("rejections_near", 0)
        for d, c in churn.get("rejection_hist", {}).items():
            agg["hist"][d] = agg["hist"].get(d, 0) + c
    for (proto, kind), agg in sorted(groups.items()):
        total, near = agg["total"], agg["near"]
        hist = " ".join(f"{d}:{c}" for d, c in
                        sorted(agg["hist"].items(),
                               key=lambda kv: int(kv[0])))
        rows.append((
            proto, kind, total, near,
            f"{near / total:.3f}" if total else "-",
            hist or "-"))
    return format_table(
        f"verifier-rejection locality (near = within {NEAR_RADIUS} hops "
        f"of the event)",
        ["protocol", "kind", "rejections", "near", "locality",
         "hist dist:count"],
        rows, markdown=markdown)


def render_churn_report(records: list[dict[str, Any]], *,
                        markdown: bool = False) -> str:
    """Both churn tables, from raw store records."""
    churned = churn_records(records)
    if not churned:
        return "no churn records in the store\n"
    return (render_resilience(churned, markdown=markdown) + "\n\n"
            + render_locality(churned, markdown=markdown))

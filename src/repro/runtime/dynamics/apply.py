"""Applying topology events to networks and to *running* simulators.

Two layers:

* :func:`revise` — pure: ``(Network, event) -> Network``.  The network
  stays immutable (PR-3's ``__slots__``/eager-adjacency design); every
  event builds a fresh revision carrying the original ``id_space`` and
  ``n_bound`` forward (they are the paper's incorruptible public bounds
  — rule semantics must not drift as the population fluctuates).  All
  validity lives here: unknown nodes, duplicate/missing edges,
  disconnecting removals (the constructions assume a connected network;
  partition tolerance is future work), and ``n_bound`` exhaustion are
  refused with a clear :class:`EventError`.

* :func:`apply_event` — the engine rebinding: mutates a live
  :class:`~repro.runtime.simulator.Simulator` onto the revision.
  Surviving nodes keep their register rows *by identity* (the engine's
  rows-mutated-in-place contract), joiners get bottom or spec-sampled
  states, the schema/column planes are recompiled, the protocol's
  interrupt section runs at the touched nodes, and exactly the event's
  write-neighborhood is marked dirty — so the incremental
  :class:`~repro.runtime.scheduler.EnabledSet` stays coherent, provable
  on demand against :meth:`Simulator.rescan_enabled` (``check=True``,
  the event-boundary proof obligation the dynamics tests run
  everywhere).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any

from repro.graphs.network import Network
from repro.runtime.columns import ColumnStore
from repro.runtime.dynamics.events import (
    EdgeAdd,
    EdgeRemove,
    NodeCrash,
    NodeJoin,
    NodeRecover,
    TopologyEvent,
)
from repro.runtime.simulator import Simulator

__all__ = ["EventError", "EventReport", "revise", "apply_event"]


class EventError(ValueError):
    """A topology event is invalid against the network it targets."""


@dataclass(frozen=True)
class EventReport:
    """What one applied event did to the running simulator."""

    event: TopologyEvent
    #: surviving nodes whose neighborhood the event changed (ascending)
    touched: tuple[int, ...]
    #: effective register writes performed by the interrupt section
    interrupt_writes: int
    n: int
    m: int
    #: enabled-set size once the post-event refresh settled
    enabled_after: int

    def to_dict(self) -> dict[str, Any]:
        return {"event": self.event.to_dict(),
                "touched": list(self.touched),
                "interrupt_writes": self.interrupt_writes,
                "n": self.n, "m": self.m,
                "enabled_after": self.enabled_after}


def _next_weight(weights: dict[tuple[int, int], int]) -> int:
    return max(weights.values(), default=0) + 1


def revise(net: Network, event: TopologyEvent) -> Network:
    """The post-event network revision (pure; ``net`` is untouched)."""
    nodes = list(net.nodes)
    node_set = set(nodes)
    edges = list(net.edges)
    weights = net.weights if net.weighted else None

    if isinstance(event, EdgeAdd):
        for x in (event.u, event.v):
            if x not in node_set:
                raise EventError(f"{event}: node {x} does not exist")
        if net.has_edge(event.u, event.v):
            raise EventError(f"{event}: edge already exists")
        e = (event.u, event.v)
        edges.append(e)
        if weights is not None:
            w = event.weight if event.weight is not None \
                else _next_weight(weights)
            if w in weights.values():
                raise EventError(
                    f"{event}: weight {w} already used (weights are "
                    f"pairwise distinct constants)")
            weights[e] = w
    elif isinstance(event, EdgeRemove):
        e = (event.u, event.v)
        if e not in set(edges):
            raise EventError(f"{event}: no such edge")
        edges.remove(e)
        if weights is not None:
            del weights[e]
        if not _still_connected(nodes, edges):
            raise EventError(
                f"{event}: removal disconnects the network (the "
                f"constructions assume a connected topology; partition "
                f"tolerance is future work)")
    elif isinstance(event, NodeCrash):
        if event.node not in node_set:
            raise EventError(f"{event}: node {event.node} does not exist")
        if net.n < 2:
            raise EventError(f"{event}: cannot crash the last node")
        nodes.remove(event.node)
        edges = [d for d in edges if event.node not in d]
        if weights is not None:
            weights = {d: w for d, w in weights.items()
                       if event.node not in d}
        if not _still_connected(nodes, edges):
            raise EventError(
                f"{event}: crash disconnects the network (node "
                f"{event.node} is a cut vertex; partition tolerance is "
                f"future work)")
    elif isinstance(event, (NodeJoin, NodeRecover)):
        if event.node in node_set:
            raise EventError(f"{event}: id {event.node} already in use")
        if not 1 <= event.node <= net.id_space:
            raise EventError(
                f"{event}: id {event.node} outside the identity space "
                f"{{1, ..., {net.id_space}}}")
        if net.n + 1 > net.n_bound:
            raise EventError(
                f"{event}: joining would exceed n_bound={net.n_bound} "
                f"(give the topology headroom — n_bound is the "
                f"incorruptible public bound the rules read)")
        missing = [a for a in event.edges if a not in node_set]
        if missing:
            raise EventError(
                f"{event}: attachment endpoints {missing} do not exist")
        nodes.append(event.node)
        for a in event.edges:
            e = (min(event.node, a), max(event.node, a))
            edges.append(e)
            if weights is not None:
                weights[e] = _next_weight(weights)
    else:
        raise EventError(f"unknown topology event {event!r}")

    return Network(nodes, edges, weights=weights,
                   id_space=net.id_space, n_bound=net.n_bound)


def _still_connected(nodes: list[int], edges: list[tuple[int, int]]) -> bool:
    if not nodes:
        return False
    adj: dict[int, list[int]] = {v: [] for v in nodes}
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    seen = {nodes[0]}
    frontier = [nodes[0]]
    while frontier:
        nxt = []
        for u in frontier:
            for w in adj[u]:
                if w not in seen:
                    seen.add(w)
                    nxt.append(w)
        frontier = nxt
    return len(seen) == len(nodes)


def _touched(event: TopologyEvent, old_net: Network) -> tuple[int, ...]:
    """Surviving nodes whose neighborhood the event changed."""
    if isinstance(event, (EdgeAdd, EdgeRemove)):
        return tuple(sorted((event.u, event.v)))
    if isinstance(event, NodeCrash):
        return tuple(sorted(old_net.neighbors(event.node)))
    # join/recover: the joiner and its attachment points
    return tuple(sorted((event.node, *event.edges)))


def _refuse_non_simulator(sim: object) -> None:
    cls = type(sim).__name__
    if cls == "ShardedSimulator" or "sharding" in type(sim).__module__:
        raise ValueError(
            "topology events on a sharded run are not supported: the "
            "sharded engine exchanges halo registers keyed by a static "
            "partition, and a live topology change would corrupt "
            "shard-local halos (cross-shard events are future work).  "
            "Re-run single-process to apply churn.")
    raise TypeError(
        f"apply_event needs a repro.runtime.simulator.Simulator, "
        f"got {cls}")


def apply_event(sim: Simulator, event: TopologyEvent, *,
                rng: random.Random | None = None,
                check: bool = False) -> EventReport:
    """Rebind a running simulator to the event's network revision.

    ``rng`` feeds ``init="sampled"`` joiner registers (default: the
    simulator's own injected stream, like fault injection).  With
    ``check=True`` the incremental enabled set is cross-checked against
    a from-scratch rescan once the revision is bound — the event-boundary
    proof obligation — and a mismatch raises RuntimeError.

    Refuses sharded simulators (ValueError) and mid-round application
    (RuntimeError): an event lands between rounds, never inside one.
    """
    if not isinstance(sim, Simulator):
        _refuse_non_simulator(sim)
    if sim._pending is not None:
        raise RuntimeError(
            "cannot apply a topology event mid-round: the active round's "
            "pending set was computed against the old topology.  Apply "
            "events between run_round() calls.")

    old_net = sim.net
    protocol = sim.protocol
    new_net = revise(old_net, event)
    touched = _touched(event, old_net)

    rows = sim._state
    config = sim.config
    proposal = sim._proposal
    enabled = sim._enabled

    # ---- state carry-forward -----------------------------------------
    if isinstance(event, NodeCrash):
        v = event.node
        del rows[v]
        del config[v]
        proposal.pop(v, None)
        sim._dirty.discard(v)
        if v in enabled._set:
            enabled._set.remove(v)
            del enabled._list[bisect_left(enabled._list, v)]

    # ---- schema / plane rebinding ------------------------------------
    new_spec = protocol.register_spec(new_net)
    new_schema = new_spec.schema()
    if tuple(new_schema.names) != tuple(sim.schema.names):
        raise EventError(
            f"{event}: register layout changed across the revision "
            f"({list(sim.schema.names)} -> {list(new_schema.names)}); "
            f"the dynamics engine carries rows forward positionally")
    sim.net = new_net
    sim.spec = new_spec
    sim.schema = new_schema
    sim._index = new_schema.index

    if isinstance(event, (NodeJoin, NodeRecover)):
        v = event.node
        if event.init == "sampled":
            sampler = rng if rng is not None else sim.rng
            state = new_spec.corrupt_state(new_net, v, sampler)
        else:
            state = new_spec.default_state(new_net, v)
        rows[v] = [state[name] for name in new_schema.names]
        config[v] = new_schema.view(rows[v])

    sim._all_nodes = sorted(new_net.nodes)
    sim._bulk_dirty = max(4, new_net.n // 4)

    # recompile the engine path for the new binding.  Survivor rows are
    # the same list objects, so rebuilt neighbor tables alias live state
    # exactly as construction did.
    if sim._slot_rule is not None:
        sim._slot_rule = protocol.fast_step_slots(new_schema)
        sim._nbr_rows = {
            v: tuple((u, rows[u]) for u in new_net.neighbors(v))
            for v in new_net.nodes}
        sim._view_rows = None
    else:
        sim._nbr_rows = None
        sim._view_rows = {
            v: tuple((u, config[u]) for u in new_net.neighbors(v))
            for v in new_net.nodes}
    if not sim._global_reads:
        sim._write_impact = protocol.fast_write_impact(new_schema)
    if sim._vector_rule is not None:
        store = ColumnStore(new_schema, new_net, rows,
                            backend=sim._columns.backend)
        vrule = protocol.vector_step(new_schema, store)
        sim._columns = store if vrule is not None else None
        sim._vector_rule = vrule

    # ---- protocol lifecycle hook -------------------------------------
    invalidate_all = bool(protocol.on_topology_event(old_net, new_net,
                                                     event))

    # ---- interrupt section (super-stabilization) ---------------------
    interrupt_writes = 0
    dirty = set(touched)
    irule = protocol.interrupt_step(new_schema)
    if irule is not None:
        for v in touched:
            delta = irule(new_net, config, v, rows[v], event)
            if not delta:
                continue
            row = rows[v]
            wrote = False
            for s, val in delta.items():
                if row[s] != val:
                    row[s] = val
                    wrote = True
            if wrote:
                interrupt_writes += 1
                dirty.update(new_net.neighbors(v))

    # ---- dirty-set accounting + proof obligation ---------------------
    # (the rebuilt ColumnStore starts fresh=False; the next vector
    # refresh re-encodes from the post-interrupt rows on demand)
    if sim._global_reads or invalidate_all:
        sim._dirty_all = True
        sim._dirty.clear()
    else:
        sim._dirty.update(dirty)
    # stale cached proposals of vanished nodes can never be selected
    # (the enabled set no longer contains them); drop crashed entries
    # above, keep survivors — refresh re-proposes exactly the dirty ones.
    sim._sched_synced = False  # the daemon re-reads the enabled set

    enabled_after = len(sim.enabled_set())  # settles via _refresh
    if check:
        incremental = list(sim._enabled)
        rescan = sim.rescan_enabled()
        if incremental != rescan:
            raise RuntimeError(
                f"incremental enabled set diverged from rescan after "
                f"{event}: {incremental} != {rescan}")

    if sim.record_trace:
        sim._snapshot()

    return EventReport(event=event, touched=touched,
                       interrupt_writes=interrupt_writes,
                       n=new_net.n, m=new_net.m,
                       enabled_after=enabled_after)

"""The topology-event model.

An event is plain frozen data naming one atomic change to the network:
an edge appearing or vanishing, a node joining with its attachment
edges, crashing, or recovering onto (the surviving part of) its former
edges.  Events serialize to canonical single-line JSON — sorted keys,
fixed separators, the same discipline as the convergence-trace format
(:mod:`repro.obs.trace`) — so an event stream is byte-identical across
repeats and round-trips losslessly through trace files.

Events carry *intent*, not validity: whether an edge exists, whether a
removal disconnects the network, whether an id is free — all of that is
checked by :func:`repro.runtime.dynamics.apply.revise` against the
network the event is applied to.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar

__all__ = [
    "TopologyEvent",
    "EdgeAdd",
    "EdgeRemove",
    "NodeJoin",
    "NodeCrash",
    "NodeRecover",
    "EVENT_KINDS",
    "event_from_dict",
    "dump_events",
    "load_events",
]


@dataclass(frozen=True)
class TopologyEvent:
    """Base class: one atomic topology change, as data."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-plain payload; round-trips through :func:`event_from_dict`."""
        raise NotImplementedError

    def to_json(self) -> str:
        """Canonical single-line JSON (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def lost_neighbors(self, node: int) -> frozenset[int]:
        """Neighbors this event may have severed from ``node``.

        What a protocol's interrupt rule keys on (the parent-vanished
        correction): non-empty only for edge removals and crashes, and
        computed from the event alone — the engine only invokes
        interrupt rules at nodes actually touched by the event.
        """
        return frozenset()

    def __str__(self) -> str:
        return self.to_json()


@dataclass(frozen=True)
class EdgeAdd(TopologyEvent):
    """Edge {u, v} appears; ``weight`` only matters on weighted networks
    (``None`` lets the revision pick the next free weight)."""

    u: int
    v: int
    weight: int | None = None

    kind: ClassVar[str] = "edge-add"

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"edge-add: self-loop at {self.u}")
        if self.u > self.v:  # canonical order, like Network's UWEdge
            u, v = self.u, self.v
            object.__setattr__(self, "u", v)
            object.__setattr__(self, "v", u)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "u": self.u, "v": self.v}
        if self.weight is not None:
            out["weight"] = self.weight
        return out


@dataclass(frozen=True)
class EdgeRemove(TopologyEvent):
    """Edge {u, v} vanishes."""

    u: int
    v: int

    kind: ClassVar[str] = "edge-remove"

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"edge-remove: self-loop at {self.u}")
        if self.u > self.v:
            u, v = self.u, self.v
            object.__setattr__(self, "u", v)
            object.__setattr__(self, "v", u)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "u": self.u, "v": self.v}

    def lost_neighbors(self, node: int) -> frozenset[int]:
        if node == self.u:
            return frozenset((self.v,))
        if node == self.v:
            return frozenset((self.u,))
        return frozenset()


@dataclass(frozen=True)
class NodeJoin(TopologyEvent):
    """Node ``node`` joins, attached by edges to ``edges`` (existing
    nodes).  ``init`` picks the joiner's register: ``"bottom"`` (the
    spec's default state) or ``"sampled"`` (adversarially corrupted —
    the joiner arrives with arbitrary domain-valid register contents)."""

    node: int
    edges: tuple[int, ...]
    init: str = "bottom"

    kind: ClassVar[str] = "node-join"

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", tuple(sorted(set(self.edges))))
        if not self.edges:
            raise ValueError(f"node-join {self.node}: no attachment edges")
        if self.node in self.edges:
            raise ValueError(f"node-join {self.node}: self-loop attachment")
        if self.init not in ("bottom", "sampled"):
            raise ValueError(f"node-join {self.node}: unknown init "
                             f"{self.init!r} (bottom | sampled)")

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "node": self.node,
                "edges": list(self.edges), "init": self.init}


@dataclass(frozen=True)
class NodeCrash(TopologyEvent):
    """Node ``node`` crashes: it and its incident edges vanish."""

    node: int

    kind: ClassVar[str] = "node-crash"

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "node": self.node}

    def lost_neighbors(self, node: int) -> frozenset[int]:
        return frozenset() if node == self.node else frozenset((self.node,))


@dataclass(frozen=True)
class NodeRecover(TopologyEvent):
    """A previously crashed node returns.  Structurally a join (fresh
    register — a crash loses the register; ``init`` as in
    :class:`NodeJoin`), kept distinct so traces and schedules can tell
    crash-recover churn from population growth."""

    node: int
    edges: tuple[int, ...]
    init: str = "bottom"

    kind: ClassVar[str] = "node-recover"

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", tuple(sorted(set(self.edges))))
        if not self.edges:
            raise ValueError(f"node-recover {self.node}: no surviving edges")
        if self.node in self.edges:
            raise ValueError(f"node-recover {self.node}: self-loop edge")
        if self.init not in ("bottom", "sampled"):
            raise ValueError(f"node-recover {self.node}: unknown init "
                             f"{self.init!r} (bottom | sampled)")

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "node": self.node,
                "edges": list(self.edges), "init": self.init}


EVENT_KINDS: dict[str, type[TopologyEvent]] = {
    cls.kind: cls
    for cls in (EdgeAdd, EdgeRemove, NodeJoin, NodeCrash, NodeRecover)
}


def event_from_dict(data: dict[str, Any]) -> TopologyEvent:
    """Rebuild an event from its :meth:`TopologyEvent.to_dict` payload."""
    kind = data.get("kind")
    cls = EVENT_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r} "
                         f"(known: {', '.join(sorted(EVENT_KINDS))})")
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    if "edges" in kwargs:
        kwargs["edges"] = tuple(kwargs["edges"])
    return cls(**kwargs)


def dump_events(path: str | Path, events: list[TopologyEvent]) -> None:
    """Write an event stream as canonical JSONL (one event per line)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w") as fh:
        for ev in events:
            fh.write(ev.to_json() + "\n")


def load_events(path: str | Path) -> list[TopologyEvent]:
    """Read an event stream written by :func:`dump_events`."""
    out = []
    for i, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            raise ValueError(f"{path}: blank line {i} inside event stream")
        out.append(event_from_dict(json.loads(line)))
    return out

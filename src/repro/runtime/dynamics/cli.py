"""``python -m repro churn`` — the dynamic-network campaign front end.

::

    python -m repro churn run --smoke --workers 4
    python -m repro churn run --store results/churn.jsonl
    python -m repro churn report
    python -m repro churn report --smoke --format markdown

``run`` executes the ``churn`` campaign family (``--smoke`` picks the
CI-sized ``churn-smoke`` grid) through the ordinary resumable campaign
executor — same stores, same fingerprints, same determinism guarantees
as ``campaign run``.  ``report`` renders the super-stabilization tables
(re-silence per wave, verifier-rejection locality) from the store alone.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.store import ResultStore

__all__ = ["register_churn"]


def _campaign(args: argparse.Namespace):
    from repro.experiments.campaigns import get_campaign
    name = "churn-smoke" if args.smoke else "churn"
    return get_campaign(name, root_seed=args.root_seed)


def _store(args: argparse.Namespace, campaign) -> ResultStore:
    path = args.store or Path("campaigns") / f"{campaign.name}.jsonl"
    return ResultStore(path)


def _trace_dir(store: ResultStore) -> str | None:
    if store.path is None:
        return None
    p = Path(store.path)
    return str(p.with_name(p.stem + ".traces"))


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.executor import run_campaign
    campaign = _campaign(args)
    store = _store(args, campaign)
    cached = len(store.fingerprints() & set(campaign.fingerprints()))

    def progress(done: int, total: int, record: dict) -> None:
        if args.quiet:
            return
        metrics = record.get("metrics", {})
        spec = record.get("spec", {})
        churn = metrics.get("churn", {})
        note = (f"events={churn.get('events')} "
                f"resilience_rounds={churn.get('resilience_rounds_total')} "
                f"locality={churn.get('locality')}"
                if churn else "done")
        print(f"[{done}/{total}] {spec.get('protocol')} "
              f"{spec.get('scheduler')} "
              f"{spec.get('events', {}).get('kind')}: {note}", flush=True)

    records = run_campaign(campaign, store=store, workers=args.workers,
                           max_runs=args.max_runs, progress=progress,
                           trace_dir=_trace_dir(store))
    executed = len(records) - cached
    print(f"campaign {campaign.name!r}: {executed} executed, "
          f"{cached} cached, {len(campaign) - len(records)} pending "
          f"(store: {store.path})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.runtime.dynamics.report import render_churn_report
    campaign = _campaign(args)
    store = _store(args, campaign)
    wanted = set(campaign.fingerprints())
    records = [r for r in store.records()
               if r.get("fingerprint") in wanted]
    if not records:
        print("no records in the store for this campaign; "
              "run `churn run` first", file=sys.stderr)
        return 1
    print(render_churn_report(records, markdown=args.format == "markdown"))
    return 0


def register_churn(subparsers) -> None:
    """Attach the ``churn`` command group to the root CLI."""
    churn = subparsers.add_parser(
        "churn", help="dynamic-network campaigns (super-stabilization)")
    sub = churn.add_subparsers(dest="subcommand", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--smoke", action="store_true",
                       help="the CI-sized churn-smoke grid")
        p.add_argument("--root-seed", type=int, default=0,
                       help="campaign root seed (default 0)")
        p.add_argument("--store", metavar="PATH",
                       help="JSONL result store "
                            "(default campaigns/<name>.jsonl)")

    p_run = sub.add_parser("run", help="execute the churn grid (resumable)")
    common(p_run)
    p_run.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes (default 1)")
    p_run.add_argument("--max-runs", type=int, default=None,
                       help="stop after N new runs")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress per-run progress lines")
    p_run.set_defaults(fn=_cmd_run)

    p_rep = sub.add_parser("report",
                           help="super-stabilization tables from the store")
    common(p_rep)
    p_rep.add_argument("--format", choices=("ascii", "markdown"),
                       default="ascii")
    p_rep.set_defaults(fn=_cmd_report)

"""Compiled state schemas: slot-indexed registers behind Mapping views.

The paper's registers are *fixed* field layouts — a
:class:`~repro.runtime.registers.RegisterSpec` names every field a node
may ever hold, and that layout never changes during a run.  Until this
module existed the runtime nevertheless stored every node state as a
``dict[str, object]``, so each field access on the engine's hot path
paid a string hash.  A :class:`StateSchema` compiles the spec once per
``(protocol, network)`` binding into a name → slot-index table, and the
simulator then backs every node register with a positionally-indexed
*slot row* (a plain list, one entry per field, in spec order).

Two access planes share that storage:

* **slot plane** (hot): the engine and compiled transition rules (see
  :meth:`repro.runtime.protocol.Protocol.fast_step_slots`) read and
  write ``row[i]`` directly — no hashing, no wrappers;
* **dict plane** (compatible): a :class:`SlotState` is a zero-copy
  ``MutableMapping`` view over the same row, so every existing
  ``step`` / ``is_legal`` / certifier / metrics call site that indexes
  states by field name keeps working unchanged, and mutations through
  either plane are visible to both.

Compatibility-view status: the Mapping plane is the *supported boundary
API* — configurations enter and leave the runtime as plain dicts
(:func:`random_configuration`, ``initial_configuration``, traces,
``RunResult.to_record``, the experiment store), and read-mostly callers
(legality predicates, verifiers, space accounting) should keep using
field names.  It is deprecated only as an *engine-internal* hot-path
representation: new per-move code (protocol fast paths, engine loops)
must use slot indices via ``fast_step_slots``; dict-shaped deltas on the
hot path survive as a fallback for protocols that have not been ported,
not as a design point.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, MutableMapping, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # registers imports this module; keep the cycle lazy
    from repro.graphs.network import Network
    from repro.runtime.registers import Field, RegisterSpec

__all__ = ["StateSchema", "SlotState"]


class StateSchema:
    """The compiled slot layout of one register spec.

    Built once per ``(protocol, network)`` binding (the simulator caches
    it on the spec, see :meth:`repro.runtime.registers.RegisterSpec.schema`);
    a schema is pure layout — field names, slot indices, and conversions
    between the two state planes — and holds no per-run data.
    """

    __slots__ = ("spec", "names", "index", "fields", "width")

    def __init__(self, spec: RegisterSpec) -> None:
        #: the originating :class:`RegisterSpec` (field encoders live there)
        self.spec: RegisterSpec = spec
        #: field names in slot order
        self.names: tuple[str, ...] = tuple(spec.names)
        #: field name -> slot index
        self.index: dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.fields: tuple[Field, ...] = tuple(spec.fields)
        #: number of slots in a row
        self.width: int = len(self.names)

    def slot(self, name: str) -> int:
        """The slot index of ``name`` (KeyError on unknown fields)."""
        return self.index[name]

    def slots(self, *names: str) -> tuple[int, ...]:
        """Slot indices for several fields at once (rule compile-time)."""
        index = self.index
        return tuple(index[n] for n in names)

    def row_of(self, state: Mapping[str, object]) -> list[object]:
        """Encode a name-keyed state into a fresh slot row.

        Raises KeyError when ``state`` misses a field of the layout;
        fields outside the layout are ignored (boundary configurations
        may carry assigner-only decoration the runtime does not store).
        """
        return [state[name] for name in self.names]

    def to_dict(self, row: Sequence[object]) -> dict[str, object]:
        """Decode a slot row into a plain name-keyed dict (a copy)."""
        return dict(zip(self.names, row))

    def default_row(self, net: Network, node: int) -> list[object]:
        """The reset register of ``node`` as a slot row."""
        return [f.default(net, node) for f in self.fields]

    def view(self, row: list[object]) -> "SlotState":
        """A zero-copy Mapping view over ``row``."""
        return SlotState(self, row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSchema({', '.join(self.names)})"


class SlotState(MutableMapping[str, object]):
    """A dict-compatible, zero-copy view over one slot row.

    Reads and writes go straight through to the backing list, so the
    engine (which mutates rows positionally) and name-keyed callers
    (legality predicates, verifiers, tests) always observe the same
    register.  The layout is fixed: assigning an unknown field raises
    ``KeyError`` and deleting a field raises ``TypeError``.

    Equality follows dict semantics — a view compares equal to any
    Mapping with the same (name, value) items — so assertions written
    against the old dict states keep holding verbatim.
    """

    __slots__ = ("_names", "_index", "row")

    def __init__(self, schema: StateSchema, row: list[object]) -> None:
        self._names: tuple[str, ...] = schema.names
        self._index: dict[str, int] = schema.index
        #: the backing slot row (shared, mutable)
        self.row: list[object] = row

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, name: str) -> object:
        return self.row[self._index[name]]

    def __setitem__(self, name: str, value: object) -> None:
        self.row[self._index[name]] = value

    def __delitem__(self, name: str) -> None:
        raise TypeError("register layouts are fixed: cannot delete "
                        f"field {name!r}")

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def get(self, name: str, default: object = None) -> object:
        i = self._index.get(name)
        return default if i is None else self.row[i]

    def keys(self):  # type: ignore[override]  # tuple is a cheap KeysView here
        return self._names

    def items(self):  # type: ignore[override]
        return list(zip(self._names, self.row))

    def values(self):  # type: ignore[override]
        return list(self.row)

    def to_dict(self) -> dict[str, object]:
        """A plain-dict copy (the boundary serialization shape)."""
        return dict(zip(self._names, self.row))

    copy = to_dict

    # -- equality ---------------------------------------------------------

    __hash__ = None  # type: ignore[assignment]  # mutable, like dict

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SlotState):
            if other._names is self._names or other._names == self._names:
                return other.row == self.row
            other = other.to_dict()
        if isinstance(other, Mapping):
            if len(other) != len(self._names):
                return False
            row = self.row
            index = self._index
            for k, v in other.items():
                i = index.get(k)
                if i is None or row[i] != v:
                    return False
            return True
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotState({self.to_dict()!r})"

"""Schedulers (daemons).

The paper assumes the *unfair scheduler*: at each step the adversary picks a
non-empty subset of the enabled nodes, with no fairness obligation — a node
may be starved for as long as any other node is enabled.  Self-stabilization
must hold for every such adversary.

We provide:

* the synchronous daemon (all enabled nodes step together),
* central daemons (exactly one node steps): uniform random, round-robin,
  deterministic max-id / min-id (simple adversaries),
* a distributed random daemon (every enabled node steps with probability p,
  re-drawn until at least one steps),
* a starvation adversary that delays a designated victim set as long as the
  unfairness constraint allows.

All schedulers are driven through :meth:`Scheduler.select`, which must
return a non-empty subset of the enabled set.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

__all__ = [
    "Scheduler",
    "SynchronousScheduler",
    "CentralRandomScheduler",
    "CentralRoundRobinScheduler",
    "CentralMaxIdScheduler",
    "CentralMinIdScheduler",
    "DistributedRandomScheduler",
    "StarvingScheduler",
    "ALL_SCHEDULER_FACTORIES",
]


class Scheduler(ABC):
    """Chooses which enabled nodes take the next atomic step."""

    name: str = "scheduler"

    @abstractmethod
    def select(self, enabled: Sequence[int]) -> list[int]:
        """Return a non-empty subset of ``enabled`` (which is non-empty)."""


class SynchronousScheduler(Scheduler):
    """Every enabled node steps simultaneously."""

    name = "synchronous"

    def select(self, enabled: Sequence[int]) -> list[int]:
        return list(enabled)


class CentralRandomScheduler(Scheduler):
    """Exactly one uniformly random enabled node steps."""

    name = "central-random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, enabled: Sequence[int]) -> list[int]:
        return [self._rng.choice(list(enabled))]


class CentralRoundRobinScheduler(Scheduler):
    """One node steps; preference rotates cyclically through identities."""

    name = "central-round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, enabled: Sequence[int]) -> list[int]:
        ordered = sorted(enabled)
        pick = next((u for u in ordered if u > self._cursor), ordered[0])
        self._cursor = pick
        return [pick]


class CentralMaxIdScheduler(Scheduler):
    """Deterministically favors the largest enabled identity."""

    name = "central-max-id"

    def select(self, enabled: Sequence[int]) -> list[int]:
        return [max(enabled)]


class CentralMinIdScheduler(Scheduler):
    """Deterministically favors the smallest enabled identity."""

    name = "central-min-id"

    def select(self, enabled: Sequence[int]) -> list[int]:
        return [min(enabled)]


class DistributedRandomScheduler(Scheduler):
    """Every enabled node steps independently with probability ``p``.

    Redrawn until the selection is non-empty (the daemon must activate at
    least one node).
    """

    name = "distributed-random"

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        self.p = p
        self._rng = random.Random(seed)

    def select(self, enabled: Sequence[int]) -> list[int]:
        pool = list(enabled)
        while True:
            chosen = [u for u in pool if self._rng.random() < self.p]
            if chosen:
                return chosen


class StarvingScheduler(Scheduler):
    """An unfair adversary that starves a victim set whenever it can.

    While any non-victim node is enabled, only non-victims step (one at a
    time, rotating); victims step only when they are the sole enabled nodes.
    With ``victims=None`` the adversary starves whichever node has stepped
    most recently (a LIFO-flavored unfairness).
    """

    name = "starving"

    def __init__(self, victims: set[int] | None = None, seed: int = 0) -> None:
        self.victims = set(victims) if victims is not None else None
        self._rng = random.Random(seed)
        self._last_stepped: int | None = None

    def select(self, enabled: Sequence[int]) -> list[int]:
        pool = list(enabled)
        if self.victims is not None:
            preferred = [u for u in pool if u not in self.victims]
        else:
            preferred = [u for u in pool if u != self._last_stepped]
        choice = self._rng.choice(preferred or pool)
        self._last_stepped = choice
        return [choice]


#: Factories for "run it under every daemon" tests: name -> seed -> Scheduler.
ALL_SCHEDULER_FACTORIES: dict[str, Callable[[int], Scheduler]] = {
    "synchronous": lambda seed: SynchronousScheduler(),
    "central-random": lambda seed: CentralRandomScheduler(seed),
    "central-round-robin": lambda seed: CentralRoundRobinScheduler(),
    "central-max-id": lambda seed: CentralMaxIdScheduler(),
    "central-min-id": lambda seed: CentralMinIdScheduler(),
    "distributed-random": lambda seed: DistributedRandomScheduler(0.5, seed),
    "starving": lambda seed: StarvingScheduler(None, seed),
}

"""Schedulers (daemons).

The paper assumes the *unfair scheduler*: at each step the adversary picks a
non-empty subset of the enabled nodes, with no fairness obligation — a node
may be starved for as long as any other node is enabled.  Self-stabilization
must hold for every such adversary.

We provide:

* the synchronous daemon (all enabled nodes step together),
* central daemons (exactly one node steps): uniform random, round-robin,
  deterministic max-id / min-id (simple adversaries),
* a distributed random daemon (every enabled node steps with probability p,
  redrawn a bounded number of times until at least one steps),
* a starvation adversary that delays a designated victim set as long as the
  unfairness constraint allows.

All schedulers are driven through :meth:`Scheduler.select`, which must
return a non-empty, duplicate-free subset of the enabled set (the simulator
validates this and raises on contract violations).

Incremental protocol
--------------------

The engine maintains the enabled set incrementally (O(deg) updates per
applied move instead of an O(n) rescan per scheduler step) and exposes it as
an :class:`EnabledSet` — a hybrid sorted-sequence / hash-set view.  Daemons
that keep per-step state over the enabled set (round-robin cursors, victim
filters) can consume the engine's deltas through two optional hooks:

* :meth:`Scheduler.reset` — the engine (re)attached with a full enabled set;
* :meth:`Scheduler.notify` — nodes were added to / removed from that set.

``select(enabled)`` remains the single required method and the
compatibility path: it must also accept a plain sequence from callers that
do not drive the incremental hooks.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right, insort
from collections.abc import Callable, Iterable, Sequence

__all__ = [
    "EnabledSet",
    "Scheduler",
    "SynchronousScheduler",
    "CentralRandomScheduler",
    "CentralRoundRobinScheduler",
    "CentralMaxIdScheduler",
    "CentralMinIdScheduler",
    "DistributedRandomScheduler",
    "StarvingScheduler",
    "ALL_SCHEDULER_FACTORIES",
]


class EnabledSet:
    """A set of node identities that is also a sorted sequence.

    Membership tests are O(1); indexing is O(1); adds and removes keep the
    sorted order via bisection (O(log n) comparisons plus a C-level
    memmove).  The simulator maintains one of these incrementally and hands
    it to schedulers, so no per-step rescan or re-sort of the enabled nodes
    is ever needed.
    """

    __slots__ = ("_set", "_list")

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._set = set(items)
        self._list = sorted(self._set)

    # -- mutation (engine-only) -----------------------------------------

    def add(self, v: int) -> bool:
        """Insert ``v``; returns True if it was not already present."""
        if v in self._set:
            return False
        self._set.add(v)
        insort(self._list, v)
        return True

    def discard(self, v: int) -> bool:
        """Remove ``v``; returns True if it was present."""
        if v not in self._set:
            return False
        self._set.remove(v)
        del self._list[bisect_left(self._list, v)]
        return True

    def clear(self) -> None:
        self._set.clear()
        self._list.clear()

    # -- sequence / set protocol ----------------------------------------

    def __contains__(self, v: object) -> bool:
        return v in self._set

    def __len__(self) -> int:
        return len(self._list)

    def __bool__(self) -> bool:
        return bool(self._list)

    def __iter__(self):
        """Iterate in ascending identity order."""
        return iter(self._list)

    def __getitem__(self, i):
        return self._list[i]

    def index(self, v: int) -> int:
        """Position of ``v`` in the sorted order; raises if absent."""
        if v not in self._set:
            raise ValueError(f"{v} not in enabled set")
        return bisect_left(self._list, v)

    def as_set(self) -> frozenset[int]:
        return frozenset(self._set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnabledSet({self._list!r})"


def _sorted_view(enabled: Sequence[int]) -> Sequence[int]:
    """``enabled`` as an ascending sequence without copying when possible."""
    if isinstance(enabled, EnabledSet):
        return enabled
    return sorted(enabled)


class Scheduler(ABC):
    """Chooses which enabled nodes take the next atomic step."""

    name: str = "scheduler"

    @abstractmethod
    def select(self, enabled: Sequence[int]) -> list[int]:
        """Return a non-empty subset of ``enabled`` (which is non-empty).

        The simulator passes an :class:`EnabledSet` (sorted, O(1)
        membership); other callers may pass any sequence.
        """

    # -- optional incremental hooks -------------------------------------

    def reset(self, enabled: "EnabledSet") -> None:
        """The engine attached (or re-attached) with a full enabled set.

        Called once before the first :meth:`select` of a run; schedulers
        with internal mirrors of the enabled set rebuild them here.
        """

    def notify(self, added: Sequence[int], removed: Sequence[int]) -> None:
        """Incremental delta: nodes entered / left the enabled set.

        Called by the engine after each batch of proposal refreshes, in
        between :meth:`select` calls.  Default: no-op.
        """

    # central daemons may additionally provide
    #
    #     pick(enabled: EnabledSet) -> int
    #
    # the single-selection equivalent of ``select`` — same distribution,
    # same RNG stream, always a member of ``enabled`` — which the
    # engine's fused stepping loop calls without the list-of-one
    # round-trip.  Absence simply keeps a scheduler on the general path.


class SynchronousScheduler(Scheduler):
    """Every enabled node steps simultaneously."""

    name = "synchronous"

    def select(self, enabled: Sequence[int]) -> list[int]:
        return list(enabled)


class CentralRandomScheduler(Scheduler):
    """Exactly one uniformly random enabled node steps."""

    name = "central-random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        # Random.choice(seq) is exactly seq[rng._randbelow(len(seq))]
        # on CPython; binding the bound method keeps the RNG stream
        # identical while skipping the choice() frame on the fused path.
        self._below = getattr(self._rng, "_randbelow", None)

    def select(self, enabled: Sequence[int]) -> list[int]:
        if isinstance(enabled, EnabledSet):
            # choose on the backing list: C-level indexing, no O(n) copy
            return [self._rng.choice(enabled._list)]
        return [self._rng.choice(enabled)]

    def pick(self, enabled: EnabledSet) -> int:
        lst = enabled._list
        below = self._below
        if below is not None:
            return lst[below(len(lst))]
        return self._rng.choice(lst)


class CentralRoundRobinScheduler(Scheduler):
    """One node steps; preference rotates cyclically through identities."""

    name = "central-round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, enabled: Sequence[int]) -> list[int]:
        ordered = _sorted_view(enabled)
        i = bisect_right(ordered, self._cursor)
        pick = ordered[i] if i < len(ordered) else ordered[0]
        self._cursor = pick
        return [pick]

    def pick(self, enabled: EnabledSet) -> int:
        lst = enabled._list
        i = bisect_right(lst, self._cursor)
        v = lst[i] if i < len(lst) else lst[0]
        self._cursor = v
        return v


class CentralMaxIdScheduler(Scheduler):
    """Deterministically favors the largest enabled identity."""

    name = "central-max-id"

    def select(self, enabled: Sequence[int]) -> list[int]:
        if isinstance(enabled, EnabledSet):
            return [enabled[-1]]
        return [max(enabled)]

    def pick(self, enabled: EnabledSet) -> int:
        return enabled._list[-1]


class CentralMinIdScheduler(Scheduler):
    """Deterministically favors the smallest enabled identity."""

    name = "central-min-id"

    def select(self, enabled: Sequence[int]) -> list[int]:
        if isinstance(enabled, EnabledSet):
            return [enabled[0]]
        return [min(enabled)]

    def pick(self, enabled: EnabledSet) -> int:
        return enabled._list[0]


class DistributedRandomScheduler(Scheduler):
    """Every enabled node steps independently with probability ``p``.

    The draw is repeated while the selection comes out empty, but only up
    to ``max_redraws`` times: with small ``p`` and a small enabled set an
    unbounded redraw loop is a latent hang (expected (1/p)^|enabled| tries
    when p·|enabled| is tiny).  After the bound is exhausted the daemon
    falls back to activating one uniformly random enabled node — still a
    legal unfair-daemon choice.
    """

    name = "distributed-random"

    def __init__(self, p: float = 0.5, seed: int = 0,
                 max_redraws: int = 64) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        if max_redraws < 1:
            raise ValueError("max_redraws must be >= 1")
        self.p = p
        self.max_redraws = max_redraws
        self._rng = random.Random(seed)

    def select(self, enabled: Sequence[int]) -> list[int]:
        for _ in range(self.max_redraws):
            chosen = [u for u in enabled if self._rng.random() < self.p]
            if chosen:
                return chosen
        return [self._rng.choice(_sorted_view(enabled))]


class StarvingScheduler(Scheduler):
    """An unfair adversary that starves a victim set whenever it can.

    While any non-victim node is enabled, only non-victims step (one at a
    time, rotating); victims step only when they are the sole enabled nodes.
    With ``victims=None`` the adversary starves whichever node has stepped
    most recently (a LIFO-flavored unfairness).

    When driven by the engine's incremental hooks, the non-victim subset is
    mirrored in its own :class:`EnabledSet` (updated in O(log n) per delta)
    instead of being re-filtered from scratch at every step.
    """

    name = "starving"

    def __init__(self, victims: set[int] | None = None, seed: int = 0) -> None:
        self.victims = set(victims) if victims is not None else None
        self._rng = random.Random(seed)
        self._last_stepped: int | None = None
        self._preferred: EnabledSet | None = None  # incremental mirror

    # -- incremental hooks ----------------------------------------------

    def reset(self, enabled: EnabledSet) -> None:
        if self.victims is not None:
            self._preferred = EnabledSet(
                u for u in enabled if u not in self.victims)

    def notify(self, added: Sequence[int], removed: Sequence[int]) -> None:
        if self._preferred is None:
            return
        victims = self.victims
        for u in added:
            if u not in victims:
                self._preferred.add(u)
        for u in removed:
            self._preferred.discard(u)

    # -- selection -------------------------------------------------------

    def select(self, enabled: Sequence[int]) -> list[int]:
        if self.victims is not None:
            choice = self._select_avoiding_victims(enabled)
        else:
            choice = self._select_avoiding_last(enabled)
        self._last_stepped = choice
        return [choice]

    def _select_avoiding_victims(self, enabled: Sequence[int]) -> int:
        if isinstance(enabled, EnabledSet) and self._preferred is not None:
            preferred: Sequence[int] = self._preferred
        else:  # compatibility path: caller drives select() directly
            preferred = [u for u in enabled if u not in self.victims]
        if preferred:
            return self._rng.choice(preferred)
        return self._rng.choice(_sorted_view(enabled))

    def _select_avoiding_last(self, enabled: Sequence[int]) -> int:
        last = self._last_stepped
        if isinstance(enabled, EnabledSet):
            # Skip over ``last`` by index arithmetic instead of building the
            # filtered list: random.choice(range(k)) consumes the RNG
            # exactly like random.choice over a k-element list.
            if last in enabled and len(enabled) > 1:
                i = self._rng.choice(range(len(enabled) - 1))
                skip = enabled.index(last)
                return enabled[i] if i < skip else enabled[i + 1]
            return self._rng.choice(enabled)
        pool = list(enabled)
        preferred = [u for u in pool if u != last]
        return self._rng.choice(preferred or pool)


#: Factories for "run it under every daemon" tests: name -> seed -> Scheduler.
ALL_SCHEDULER_FACTORIES: dict[str, Callable[[int], Scheduler]] = {
    "synchronous": lambda seed: SynchronousScheduler(),
    "central-random": lambda seed: CentralRandomScheduler(seed),
    "central-round-robin": lambda seed: CentralRoundRobinScheduler(),
    "central-max-id": lambda seed: CentralMaxIdScheduler(),
    "central-min-id": lambda seed: CentralMinIdScheduler(),
    "distributed-random": lambda seed: DistributedRandomScheduler(0.5, seed),
    "starving": lambda seed: StarvingScheduler(None, seed),
}

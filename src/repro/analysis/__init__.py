"""Experiment harness shared by ``benchmarks/`` (tables, fits, runners)."""

from repro.analysis.tables import format_table
from repro.analysis.fitting import fit_log_exponent, growth_ratios

__all__ = ["format_table", "fit_log_exponent", "growth_ratios"]

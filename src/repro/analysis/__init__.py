"""Experiment harness shared by ``benchmarks/`` (tables, fits, runners)."""

from repro.analysis.tables import format_csv, format_table
from repro.analysis.fitting import fit_log_exponent, growth_ratios

__all__ = ["format_table", "format_csv", "fit_log_exponent", "growth_ratios"]

"""Tables printed by the benchmark harness and the campaign reports.

Every bench regenerates its experiment's table in the same rows/series
form the paper's claims take (see EXPERIMENTS.md); these helpers keep the
output uniform and diffable.  Three emitters share one row model:

* :func:`format_table` — fixed-width ASCII (``markdown=True`` switches to
  a GitHub-flavored pipe table, pasteable into docs);
* :func:`format_csv` — RFC-4180-ish CSV, diffable in CI.

Numeric columns (every body cell an int/float or a numeric-looking string
such as ``53,987`` or ``1.05x``) are right-aligned so magnitude comparisons
read down the column.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

__all__ = ["format_table", "format_csv"]

#: Strings that should line up like numbers: plain/grouped decimals with an
#: optional unit suffix the benches use (``x`` for speedups, ``%``).
_NUMERIC_RE = re.compile(r"^-?[\d,]+(\.\d+)?\s*[x%]?$")


def _is_numeric_cell(value: object) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    return isinstance(value, str) and bool(_NUMERIC_RE.match(value.strip()))


def _numeric_columns(rows: Sequence[Sequence[object]], width: int) -> list[bool]:
    """Per column: right-align iff every non-empty body cell is numeric."""
    numeric = [bool(rows) for _ in range(width)]
    for row in rows:
        for i, cell in enumerate(row):
            if i >= width:
                break
            if cell in ("", "-", None):
                continue  # placeholders don't decide alignment
            if not _is_numeric_cell(cell):
                numeric[i] = False
    return numeric


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 markdown: bool = False) -> str:
    """A table with a title rule: fixed-width ASCII or GitHub markdown."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) if i < len(r) else 0 for r in cells)
              for i in range(len(headers))]
    numeric = _numeric_columns(rows, len(headers))

    def fmt(row: list[str]) -> list[str]:
        return [
            (c.rjust(w) if numeric[i] else c.ljust(w))
            for i, (c, w) in enumerate(zip(row, widths))
        ]

    if markdown:
        lines = [f"**{title}**", ""]
        lines.append("| " + " | ".join(fmt(cells[0])) + " |")
        lines.append("|" + "|".join(
            ("-" * (w + 1) + ":") if numeric[i] else ("-" * (w + 2))
            for i, w in enumerate(widths)) + "|")
        for row in cells[1:]:
            lines.append("| " + " | ".join(fmt(row)) + " |")
        return "\n".join(lines)

    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(fmt(cells[0])))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(fmt(row)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str],
               rows: Sequence[Sequence[object]]) -> str:
    """The same row model as CSV (quoted only where needed)."""

    def quote(value: object) -> str:
        s = str(value)
        if any(ch in s for ch in ",\"\n"):
            return '"' + s.replace('"', '""') + '"'
        return s

    lines = [",".join(quote(h) for h in headers)]
    for row in rows:
        lines.append(",".join(quote(c) for c in row))
    return "\n".join(lines)

"""ASCII tables printed by the benchmark harness.

Every bench regenerates its experiment's table in the same rows/series
form the paper's claims take (see EXPERIMENTS.md); these helpers keep the
output uniform and diffable.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width table with a title rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

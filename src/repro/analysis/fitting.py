"""Scaling fits for measured series (rounds vs n, bits vs n).

The paper's claims are asymptotic (O(log n), O(log^2 n), poly(n)); the
benchmarks check the *shape* of measured series against them:

* :func:`fit_log_exponent` fits ``y ~ c * (log2 n)^e`` by least squares in
  log-log space over ``log2 n`` — e close to 1 supports O(log n), close to
  2 supports O(log^2 n);
* :func:`growth_ratios` reports ``y[i+1] / y[i]`` for doubling ``n`` —
  polynomial claims show bounded ratios.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["fit_log_exponent", "growth_ratios"]


def fit_log_exponent(ns: Sequence[int], ys: Sequence[float]) -> float:
    """The exponent e of the best fit ``y = c * (log2 n)^e``."""
    xs = [math.log(math.log2(n)) for n in ns]
    ls = [math.log(max(y, 1e-9)) for y in ys]
    mean_x = sum(xs) / len(xs)
    mean_l = sum(ls) / len(ls)
    num = sum((x - mean_x) * (l - mean_l) for x, l in zip(xs, ls))
    den = sum((x - mean_x) ** 2 for x in xs)
    if den == 0:
        return 0.0
    return num / den


def growth_ratios(ys: Sequence[float]) -> list[float]:
    """Successive ratios of a measured series."""
    return [b / a if a else float("inf") for a, b in zip(ys, ys[1:])]

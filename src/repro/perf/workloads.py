"""Pinned, named benchmark workloads.

A :class:`Workload` is plain data naming everything a measurement needs —
protocol, topology, daemon, initial configuration, and the execution
budget — with **every seed pinned**.  Two invocations of the same
workload on the same tree therefore execute the exact same move
sequence; only the wall clock differs.  That is what makes the emitted
``BENCH_*.json`` numbers comparable across commits.

The registry covers:

* ``acceptance-sst-512`` — the PR-1 acceptance workload (512-node random
  graph seed 42, SST, central-random daemon seed 3, arbitrary init
  seed 7, run to silence), the number every optimization PR is judged on;
* ``bfs``/``mst``/``mdst``/``nca`` family sweeps at n in {128, 512,
  2048}, budget-bounded so non-silent baselines (compact MST) and slow
  big-memory baselines (BGR MDST) measure *throughput*, not convergence;
* ``guided-bfs``/``guided-mst``/``guided-mdst`` at n in {128, 512,
  8192}: the paper's own constructions, benchmarkable since the
  certificate-backed oracle layer (:mod:`repro.certify.oracle`) flipped
  them to neighborhood reads on the incremental engine;
* the n = 8192 tier, added when the slot-indexed registers landed:
  ``sst-8192`` runs to silence (the acceptance discipline at 16x the
  size) and the ``guided-*-8192`` sweeps are budgeted — all
  single-warmth, sized so the full bench stays interactive;
* the sharded tier (``shards > 0``), routed through the partitioned
  engine (:mod:`repro.runtime.sharding`) with one worker process per
  shard: ``sst-1m`` and ``guided-bfs-262144`` on implicit grids whose
  adjacency never materializes whole, plus ``smoke-shard-sst-512`` so
  the CI perf gate exercises partition + boundary exchange on every PR;
* ``smoke-*`` variants of each family at n = 48 for the CI perf gate.

Workloads resolve through the experiment registries
(:mod:`repro.experiments.registry`), so a registry key added there is
immediately benchmarkable here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Workload", "WORKLOADS", "select_workloads"]


@dataclass(frozen=True)
class Workload:
    """One pinned measurement, as data.

    ``round_budget`` / ``move_budget`` bound the measured execution: the
    harness runs whole rounds until silence or either budget is reached.
    A budget of 0 means unbounded (the workload must then be silent
    self-stabilizing, or the harness would never return).
    """

    name: str
    family: str
    protocol: str
    topology: str
    topo_params: tuple[tuple[str, object], ...]
    scheduler: str = "synchronous"
    scheduler_seed: int = 5
    init: str = "defaults"
    init_params: tuple[tuple[str, object], ...] = ()
    round_budget: int = 0
    move_budget: int = 0
    repeats: int = 3
    #: heavy workloads (one long budgeted run) may skip the discarded
    #: warmup execution: the run itself is long enough to be warm
    warmup: bool = True
    #: shards > 0 routes the workload through the partitioned engine
    #: (:mod:`repro.runtime.sharding`) with one worker process per
    #: shard; the sharded engine is synchronous-daemon only and uses
    #: per-node keyed initialization (``init="per-node"``, seed from
    #: ``init_params``), so those fields are validated together
    shards: int = 0
    #: churn params (``kind``/``waves``/``seed``): after the run reaches
    #: silence the dynamics engine applies a seeded topology-event
    #: schedule and the clock covers re-silence too — the pinned
    #: super-stabilization workload.  Churn workloads are silence-bound
    #: (no budgets) and single-process (topology events on a sharded
    #: run are refused by the engine)
    churn: tuple[tuple[str, object], ...] = ()
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"{self.name}: repeats must be >= 1")
        if self.round_budget < 0 or self.move_budget < 0:
            raise ValueError(f"{self.name}: budgets must be >= 0")
        if self.shards < 0:
            raise ValueError(f"{self.name}: shards must be >= 0")
        if self.shards > 0:
            if self.scheduler != "synchronous":
                raise ValueError(
                    f"{self.name}: sharded workloads require the "
                    f"synchronous scheduler")
            if self.init != "per-node":
                raise ValueError(
                    f"{self.name}: sharded workloads require "
                    f"init='per-node'")
            if self.move_budget:
                raise ValueError(
                    f"{self.name}: sharded workloads are round-budgeted "
                    f"only (move_budget unsupported)")
        if self.churn:
            if self.shards > 0:
                raise ValueError(
                    f"{self.name}: churn workloads are single-process "
                    f"(topology events on a sharded run are unsupported)")
            if self.round_budget or self.move_budget:
                raise ValueError(
                    f"{self.name}: churn workloads run to silence "
                    f"(budgets unsupported — re-silence is the "
                    f"measurement)")

    @property
    def topo(self) -> dict[str, object]:
        return dict(self.topo_params)

    @property
    def init_args(self) -> dict[str, object]:
        return dict(self.init_params)

    @property
    def churn_args(self) -> dict[str, object]:
        return dict(self.churn)

    def describe(self) -> str:
        args = ",".join(f"{k}={v}" for k, v in self.topo_params)
        return (f"{self.protocol} on {self.topology}({args}) "
                f"under {self.scheduler}, init={self.init}")


def _params(**kwargs: object) -> tuple[tuple[str, object], ...]:
    """Sorted key/value tuple form (hashable, order-insensitive)."""
    return tuple(sorted(kwargs.items()))


def _sweep(family: str, protocol: str, *, topology: str,
           topo_for, init: str = "defaults", init_params=(),
           round_budget: int, move_budget: int = 0,
           scheduler: str = "synchronous",
           overrides: dict[int, dict] | None = None) -> list[Workload]:
    """One workload per size for a family sweep (full sizes + smoke).

    ``overrides`` tunes individual sizes (budget/repeats/warmup) so
    slow-stepping baselines stay measurable at n = 2048 without blowing
    the full-run wall clock.
    """
    out = []
    for n in (128, 512, 2048):
        kwargs: dict = dict(round_budget=round_budget,
                            move_budget=move_budget,
                            scheduler=scheduler,
                            tags=("full",))
        kwargs.update((overrides or {}).get(n, {}))
        out.append(Workload(
            name=f"{family}-{n}",
            family=family,
            protocol=protocol,
            topology=topology,
            topo_params=topo_for(n),
            init=init,
            init_params=init_params,
            **kwargs,
        ))
    out.append(Workload(
        name=f"smoke-{family}-48",
        family=family,
        protocol=protocol,
        topology=topology,
        topo_params=topo_for(48),
        scheduler=scheduler,
        init=init,
        init_params=init_params,
        round_budget=min(round_budget, 24) if round_budget else 24,
        move_budget=move_budget,
        repeats=2,
        tags=("smoke",),
    ))
    return out


def _build_registry() -> dict[str, Workload]:
    workloads: list[Workload] = [
        # The PR-1 acceptance workload, byte-for-byte: random graph
        # n=512 seed 42, arbitrary init seed 7, central-random daemon
        # seed 3, run to silence.  Tagged for both modes so the CI perf
        # gate exercises the exact number the optimization PRs quote.
        Workload(
            name="acceptance-sst-512",
            family="engine",
            protocol="sst",
            topology="random",
            topo_params=_params(n=512, seed=42),
            scheduler="central-random",
            scheduler_seed=3,
            init="arbitrary",
            init_params=_params(seed=7),
            repeats=3,
            tags=("full", "smoke", "acceptance"),
        ),
        # The acceptance workload's shape at n = 48: small enough to run
        # to silence in milliseconds, so the CI obs-smoke job can record
        # a full convergence trace (`repro obs record --workload
        # smoke-sst-48`) on every PR without stretching the gate.
        Workload(
            name="smoke-sst-48",
            family="engine",
            protocol="sst",
            topology="random",
            topo_params=_params(n=48, seed=42),
            scheduler="central-random",
            scheduler_seed=3,
            init="arbitrary",
            init_params=_params(seed=7),
            repeats=2,
            tags=("smoke",),
        ),
        # The acceptance workload's shape at n = 8192 (same daemon and
        # init discipline, fresh topology draw at size): the tuple-register
        # scale tier the ROADMAP gated on slot-indexed state.  One warm-up
        # is skipped — a quarter-million-move run is its own warmth.
        Workload(
            name="sst-8192",
            family="engine",
            protocol="sst",
            topology="random",
            topo_params=_params(n=8192, seed=42),
            scheduler="central-random",
            scheduler_seed=3,
            init="arbitrary",
            init_params=_params(seed=7),
            repeats=2,
            warmup=False,
            tags=("full",),
        ),
        # The columnar-engine scale tier: the acceptance shape at
        # n = 65536 (same daemon and init discipline, fresh topology
        # draw at size).  Tagged ``slow`` — it runs only when named
        # explicitly (``--workload sst-65536``); a single unwarmed
        # multi-million-move run to silence is its own warmth.
        Workload(
            name="sst-65536",
            family="engine",
            protocol="sst",
            topology="random",
            topo_params=_params(n=65536, seed=42),
            scheduler="central-random",
            scheduler_seed=3,
            init="arbitrary",
            init_params=_params(seed=7),
            repeats=1,
            warmup=False,
            tags=("slow",),
        ),
        # The sharded scale tier (repro.runtime.sharding): a million-node
        # implicit grid partitioned over 8 worker processes — the
        # whole-network adjacency never materializes in any one of them.
        # Slow-tagged and tightly round-budgeted: each round moves the
        # full node set, so 3 rounds is already millions of moves.
        Workload(
            name="sst-1m",
            family="engine",
            protocol="sst",
            topology="implicit-grid",
            topo_params=_params(rows=1000, cols=1000),
            init="per-node",
            init_params=_params(seed=7),
            round_budget=3,
            repeats=1,
            warmup=False,
            shards=8,
            tags=("slow",),
        ),
        # The sharded smoke leg of the CI perf gate: 512 nodes over two
        # worker processes, run to silence — partition, boundary
        # exchange, and frontier reconciliation exercised on every PR.
        Workload(
            name="smoke-shard-sst-512",
            family="engine",
            protocol="sst",
            topology="implicit-grid",
            topo_params=_params(rows=16, cols=32),
            init="per-node",
            init_params=_params(seed=7),
            repeats=2,
            shards=2,
            tags=("smoke",),
        ),
        # The super-stabilization tier: the acceptance shape run to
        # silence, then a pinned seeded churn schedule (mixed events)
        # applied by the dynamics engine with the clock still running —
        # every repeat executes the identical event stream and identical
        # re-silence moves.  ``headroom`` widens n_bound so node-join
        # events have room under the incorruptible public bound.
        Workload(
            name="churn-sst-512",
            family="engine",
            protocol="sst",
            topology="random",
            topo_params=_params(n=512, seed=42, headroom=32),
            scheduler="central-random",
            scheduler_seed=3,
            init="arbitrary",
            init_params=_params(seed=7),
            repeats=2,
            warmup=False,
            churn=_params(kind="mixed", waves=8, seed=21),
            tags=("full",),
        ),
        # The churn tier's CI leg: small enough for the perf gate, big
        # enough that all four mixed event kinds stay feasible.
        Workload(
            name="smoke-churn-sst-48",
            family="engine",
            protocol="sst",
            topology="random",
            topo_params=_params(n=48, seed=42, headroom=8),
            scheduler="central-random",
            scheduler_seed=3,
            init="arbitrary",
            init_params=_params(seed=7),
            repeats=2,
            churn=_params(kind="mixed", waves=4, seed=21),
            tags=("smoke",),
        ),
    ]
    # BFS: the classical ad hoc construction (neighborhood reads) from an
    # adversarial arbitrary configuration; ghost-root flushing makes the
    # 2048-node instance budget-bound rather than convergence-bound.
    workloads += _sweep(
        "bfs", "adhoc-bfs", topology="random",
        topo_for=lambda n: _params(n=n, seed=11),
        init="arbitrary", init_params=_params(seed=2),
        round_budget=192)
    # MST: the compact O(log n)-bit baseline is never silent (that is the
    # paper's point) — a pure throughput workload.
    workloads += _sweep(
        "mst", "compact-mst", topology="random",
        topo_for=lambda n: _params(n=n, seed=12, weighted=True),
        round_budget=24)
    # MDST: the big-memory BGR baseline.  A single transition evaluation
    # costs ~50ms at n = 2048 (its registers carry whole-tree state —
    # that blow-up is the paper's point), so the engine's initial
    # full-proposal pass alone takes minutes there: the 512 instance is
    # trimmed to 4 rounds, and the 2048 instance is registered but
    # tagged ``slow`` — it runs only when named explicitly
    # (``--workload mdst-2048``), in step mode with a single unwarmed
    # repeat.
    workloads += _sweep(
        "mdst", "bgr-mdst", topology="random",
        topo_for=lambda n: _params(n=n, extra_edges=2 * n, seed=13),
        round_budget=6, move_budget=30_000,
        overrides={512: dict(round_budget=4),
                   2048: dict(round_budget=0, move_budget=150,
                              scheduler="central-min-id",
                              repeats=1, warmup=False,
                              tags=("slow",))})
    # NCA: malleable tree + label layer from a legal BFS tree (the
    # maintenance hot path measured by Lemma 5.1's construction).
    workloads += _sweep(
        "nca", "nca-build", topology="random-tree",
        topo_for=lambda n: _params(n=n, seed=14),
        init="bfs-tree", round_budget=64)
    # Guided constructions: the certificate-backed oracle layer flipped
    # them to neighborhood reads, so they finally run on the incremental
    # engine and are benchmarkable.  BFS measures recovery from an
    # arbitrary configuration; MST/MDST measure label settling plus the
    # detector/chain-switch improvement loop from a seeded random tree.
    # the 8192 instances run with repeats=2 and no warmup: each budgeted
    # execution is tens of thousands of moves, its own warmth, and the
    # full-mode wall clock has to stay interactive
    big = dict(repeats=2, warmup=False)
    for n, rounds in ((128, 48), (512, 32), (8192, 16)):
        workloads.append(Workload(
            name=f"guided-bfs-{n}", family="guided-bfs",
            protocol="guided-bfs", topology="random",
            topo_params=_params(n=n, seed=17),
            init="arbitrary", init_params=_params(seed=4),
            round_budget=rounds, tags=("full",),
            **(big if n == 8192 else {})))
    # the guided-BFS scale tier riding the same columnar engine: slow-
    # tagged like mdst-2048, one unwarmed budgeted run when named
    workloads.append(Workload(
        name="guided-bfs-32768", family="guided-bfs",
        protocol="guided-bfs", topology="random",
        topo_params=_params(n=32768, seed=17),
        init="arbitrary", init_params=_params(seed=4),
        round_budget=8, repeats=1, warmup=False,
        tags=("slow",)))
    # the sharded guided-BFS scale tier: a quarter-million-node implicit
    # grid over 8 worker processes, budgeted like its unsharded siblings
    workloads.append(Workload(
        name="guided-bfs-262144", family="guided-bfs",
        protocol="guided-bfs", topology="implicit-grid",
        topo_params=_params(rows=512, cols=512),
        init="per-node", init_params=_params(seed=4),
        round_budget=4, repeats=1, warmup=False,
        shards=8, tags=("slow",)))
    for n, rounds in ((128, 32), (512, 32), (8192, 12)):
        workloads.append(Workload(
            name=f"guided-mst-{n}", family="guided-mst",
            protocol="guided-mst", topology="random",
            topo_params=_params(n=n, seed=18, weighted=True),
            init="random-tree", init_params=_params(seed=5),
            round_budget=rounds,
            move_budget=100_000 if n == 8192 else 60_000, tags=("full",),
            **(big if n == 8192 else {})))
    for n, rounds in ((128, 16), (512, 12), (8192, 8)):
        workloads.append(Workload(
            name=f"guided-mdst-{n}", family="guided-mdst",
            protocol="guided-mdst", topology="random",
            topo_params=_params(n=n, extra_edges=2 * n, seed=19),
            init="random-tree", init_params=_params(seed=6),
            round_budget=rounds,
            move_budget=60_000 if n == 8192 else 30_000, tags=("full",),
            **(big if n == 8192 else {})))
    for family, init, init_seed in (("guided-bfs", "arbitrary", 4),
                                    ("guided-mst", "random-tree", 5),
                                    ("guided-mdst", "random-tree", 6)):
        weighted = family == "guided-mst"
        extra = {"extra_edges": 96} if family == "guided-mdst" else {}
        workloads.append(Workload(
            name=f"smoke-{family}-48", family=family, protocol=family,
            topology="random",
            topo_params=_params(n=48, seed=17,
                                **({"weighted": True} if weighted else {}),
                                **extra),
            init=init, init_params=_params(seed=init_seed),
            round_budget=16, move_budget=20_000, repeats=2,
            tags=("smoke",)))

    registry: dict[str, Workload] = {}
    for w in workloads:
        if w.name in registry:
            raise ValueError(f"duplicate workload name {w.name!r}")
        registry[w.name] = w
    return registry


#: The pinned workload registry, name -> workload (insertion-ordered).
WORKLOADS: dict[str, Workload] = _build_registry()


def select_workloads(names: list[str] | None = None,
                     smoke: bool = False) -> list[Workload]:
    """Resolve a bench invocation to an ordered workload list.

    Explicit ``names`` win; otherwise the ``smoke`` tag (CI gate) or the
    ``full`` tag (default) selects.
    """
    if names:
        missing = [n for n in names if n not in WORKLOADS]
        if missing:
            raise KeyError(
                f"unknown workloads {missing} "
                f"(known: {', '.join(WORKLOADS)})")
        return [WORKLOADS[n] for n in names]
    tag = "smoke" if smoke else "full"
    return [w for w in WORKLOADS.values() if tag in w.tags]

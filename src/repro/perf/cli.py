"""``python -m repro bench`` — the performance command line.

::

    python -m repro bench                      # full pinned workload set
    python -m repro bench --smoke --json       # CI gate set, JSON to stdout
    python -m repro bench --workload acceptance-sst-512 --repeats 5
    python -m repro bench --list
    python -m repro bench --smoke --baseline benchmarks/baseline_bench.json

Every run writes ``BENCH_latest.json`` plus a dated ``BENCH_*.json`` to
``--out`` (default: the current directory).  With ``--baseline`` the
fresh numbers are diffed against a committed report and the process
exits 1 on any slowdown beyond ``--tolerance`` (default 2.5x, the CI
noise allowance).  A dirty interpreter (tracer, profiler, coverage)
refuses to record — ``--force`` overrides, for debugging only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.analysis import format_table
from repro.perf.emitter import (
    compare_reports,
    load_report,
    make_report,
    write_report,
)
from repro.perf.harness import interpreter_report, run_workload
from repro.perf.workloads import WORKLOADS, select_workloads

__all__ = ["main", "register_bench"]


def add_bench_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--smoke", action="store_true",
                        help="run the small CI-gate workload set")
    parser.add_argument("--workload", action="append", metavar="NAME",
                        help="run one named workload (repeatable); "
                             "see --list")
    parser.add_argument("--list", action="store_true", dest="list_workloads",
                        help="list registered workloads and exit")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override each workload's repeat count")
    parser.add_argument("--out", metavar="DIR", default=".",
                        help="directory for BENCH_*.json (default: .)")
    parser.add_argument("--json", action="store_true",
                        help="also print the report JSON to stdout")
    parser.add_argument("--baseline", metavar="PATH",
                        help="diff against a committed BENCH report; "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=2.5,
                        help="slowdown factor that counts as a regression "
                             "(default 2.5, CI-noise allowance)")
    parser.add_argument("--no-warmup", action="store_true",
                        help="skip the discarded warmup execution")
    parser.add_argument("--force", action="store_true",
                        help="record even from a dirty interpreter "
                             "(debugging only)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-workload progress lines")


def _cmd_list() -> int:
    rows = [(w.name, w.family, ",".join(w.tags), w.repeats,
             f"R{w.round_budget or '-'}/M{w.move_budget or '-'}",
             w.describe())
            for w in WORKLOADS.values()]
    print(format_table("pinned bench workloads",
                       ["name", "family", "tags", "reps", "budget", "what"],
                       rows))
    return 0


def _print_comparison(diff: dict[str, Any]) -> None:
    def rss(row: dict[str, Any]) -> str:
        # carried on the comparison rows themselves (and thus into
        # BENCH_comparison.json) since the perf-gate rendering PR
        value = row.get("peak_rss_kb")
        return f"{value:,}" if value else "-"

    rows = []
    for row in diff["rows"]:
        if row["status"] == "skipped":
            rows.append((row["workload"], "-", "-", "-", rss(row),
                         "skipped: " + row["reason"]))
        else:
            rows.append((row["workload"],
                         f"{row['baseline_mps']:,.0f}",
                         f"{row['current_mps']:,.0f}",
                         f"{row['slowdown']:.2f}x",
                         rss(row),
                         row["status"]))
    print(format_table(
        f"baseline comparison (regression = >{diff['tolerance']}x slower)",
        ["workload", "baseline mv/s", "current mv/s", "slowdown",
         "peak rss KiB", "status"],
        rows))


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.list_workloads:
        return _cmd_list()

    try:
        workloads = select_workloads(args.workload, smoke=args.smoke)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    if not workloads:
        raise SystemExit("error: no workloads selected")

    env = interpreter_report()
    for msg in env["warnings"]:
        print(f"warning: {msg}", file=sys.stderr)
    if env["dirty"]:
        for msg in env["dirty"]:
            print(f"dirty interpreter: {msg}", file=sys.stderr)
        if not args.force:
            print("refusing to record benchmark results from a dirty "
                  "interpreter (use --force to override)", file=sys.stderr)
            return 2
        print("warning: --force set, recording anyway", file=sys.stderr)

    results: dict[str, dict[str, Any]] = {}
    for w in workloads:
        record = run_workload(w, repeats=args.repeats,
                              warmup=not args.no_warmup)
        results[w.name] = record
        if not args.quiet:
            print(f"{w.name}: {record['moves']} moves / "
                  f"{record['rounds']} rounds in {record['seconds']:.3f}s "
                  f"-> {record['moves_per_sec']:,.0f} moves/s, "
                  f"{record['rounds_per_sec']:,.0f} rounds/s "
                  f"(median of {record['repeats']})", flush=True)

    mode = "smoke" if args.smoke else (
        "custom" if args.workload else "full")
    report = make_report(mode, results, env)
    latest, dated = write_report(report, args.out)
    if not args.quiet:
        print(f"wrote {latest} and {dated}")
    if args.json:
        print(json.dumps(report, indent=2))

    if args.baseline:
        baseline = load_report(args.baseline)
        diff = compare_reports(report, baseline, tolerance=args.tolerance)
        # persist the diff next to the reports so the CI artifact carries
        # the gate's verdict (slowdowns + peak RSS), not just raw numbers
        comparison_path = Path(args.out) / "BENCH_comparison.json"
        comparison_path.write_text(json.dumps(diff, indent=2) + "\n")
        if not args.quiet or not diff["ok"]:
            _print_comparison(diff)
        if not diff["ok"]:
            if diff["regressions"]:
                print(f"PERF GATE FAILED: {', '.join(diff['regressions'])} "
                      f"slower than {args.tolerance}x the baseline",
                      file=sys.stderr)
            else:
                print("PERF GATE FAILED: no workload overlaps the "
                      "baseline — refresh benchmarks/baseline_bench.json",
                      file=sys.stderr)
            return 1
        print(f"perf gate ok ({diff['compared']} workloads within "
              f"{args.tolerance}x)")
    return 0


def register_bench(subparsers) -> None:
    """Attach the ``bench`` subcommand to the ``python -m repro`` parser."""
    p = subparsers.add_parser(
        "bench", help="pinned perf workloads -> BENCH_*.json")
    add_bench_options(p)
    p.set_defaults(fn=_cmd_bench)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="pinned performance workloads -> BENCH_*.json")
    add_bench_options(parser)
    return _cmd_bench(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

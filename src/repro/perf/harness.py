"""Workload measurement: warmup + median-of-k, with sanity gating.

Measurement discipline:

* every repeat rebuilds the network, configuration, daemon, and
  simulator from the workload's pinned seeds, so repeats are independent
  and identical in everything but wall clock;
* one **warmup** execution runs first and is discarded (interpreter
  warm-start: allocator arenas, inline caches, branch-predictor state);
* the clock covers only the round loop — topology/init construction and
  metric extraction are excluded;
* the harness asserts that all repeats performed the same (moves,
  rounds, silence) — a determinism failure is a bug, not noise, and is
  raised instead of being averaged away;
* peak RSS is sampled from ``getrusage`` after the repeats (on Linux the
  value is a process-lifetime high-water mark; the emitter records it
  per workload as an upper bound and says so in the schema).

The harness also refuses to *record* results from a dirty interpreter —
an active tracer/profiler or coverage hooks slow pure-Python hot loops
by integer factors and would poison the BENCH trajectory.  See
:func:`interpreter_report`.
"""

from __future__ import annotations

import os
import platform
import random
import statistics
import sys
import time
from pathlib import Path
from typing import Any

from repro.experiments.registry import (
    SCHEDULERS,
    build_config,
    build_network,
    build_protocol,
)
from repro.perf.workloads import Workload
from repro.runtime.simulator import Simulator

__all__ = ["run_workload", "interpreter_report"]


def _peak_rss_kb() -> int | None:
    """Process peak RSS in KiB (high-water mark), or None if unknown."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        peak //= 1024
    return int(peak)


def _sharded_execution(
        workload: Workload,
        recorder=None) -> tuple[float, int, int, bool, int, int]:
    """One budgeted execution on the partitioned engine.

    ``workload.shards`` worker processes each own one shard of the
    topology; the clock covers only the lock-step round loop (worker
    spawn and the initial boundary exchange are construction, excluded
    like topology/init construction on the unsharded path).

    ``recorder`` exists for ``repro obs record`` — it reuses this exact
    build/budget logic so a trace describes precisely the pinned
    workload.  Timings taken with a recorder attached are meaningless
    and :func:`run_workload` refuses to produce them.
    """
    from repro.graphs.implicit import IMPLICIT_TOPOLOGIES, build_topology
    from repro.runtime.sharding import ShardedSimulator, plan_partition

    if workload.topology in IMPLICIT_TOPOLOGIES:
        topo = build_topology(workload.topology, workload.topo)
    else:
        topo = build_network(workload.topology, workload.topo,
                             random.Random(0))
    plan = plan_partition(topo, workload.shards)
    protocol_name = workload.protocol

    def factory():
        return build_protocol(protocol_name)[0]

    seed = workload.init_args.get("seed", 0)
    assert isinstance(seed, int)
    sharded = ShardedSimulator(topo, factory, plan, init_seed=seed,
                               processes=True)
    try:
        t0 = time.perf_counter()
        result = sharded.run(
            max_rounds=workload.round_budget or sys.maxsize,
            require_silence=workload.round_budget == 0,
            recorder=recorder)
        seconds = time.perf_counter() - t0
    finally:
        sharded.close()
    return (seconds, result.moves, result.rounds, result.silent,
            topo.n, topo.m)


def _one_execution(
        workload: Workload,
        recorder=None) -> tuple[float, int, int, bool, int, int]:
    """Build everything fresh and run one budgeted execution.

    Returns ``(seconds, moves, rounds, silent, n, m)`` with the clock
    covering only the round loop.  ``recorder`` (see
    :func:`_sharded_execution`) is the ``repro obs record`` seam; it
    never coexists with a recorded timing.
    """
    if workload.shards > 0:
        return _sharded_execution(workload, recorder=recorder)
    net = build_network(workload.topology, workload.topo, random.Random(0))
    proto, _ = build_protocol(workload.protocol)
    config, _ = build_config(workload.init, net, proto, random.Random(1),
                             workload.init_args)
    scheduler = SCHEDULERS[workload.scheduler](workload.scheduler_seed)
    sim = Simulator(net, proto, scheduler, config=config, recorder=recorder)

    t0 = time.perf_counter()
    if workload.round_budget == 0 and workload.move_budget > 0:
        # step mode: sub-round move budget for protocols whose rounds
        # are too expensive to run whole (rounds stay 0 by definition)
        sim.run_steps(workload.move_budget)
    else:
        round_budget = workload.round_budget or sys.maxsize
        move_budget = workload.move_budget or sys.maxsize
        while sim.rounds < round_budget and sim.moves < move_budget:
            if not sim.run_round(max_moves=10_000_000):
                break
    if workload.churn:
        # the super-stabilization phase: a pinned seeded event schedule
        # against the silent configuration, measured to re-silence.  No
        # verifier probes in the timed loop — this is throughput, the
        # locality metrics live in the churn campaigns.
        from repro.runtime.dynamics.run import run_churn
        ca = workload.churn_args
        run_churn(sim, kind=str(ca.get("kind", "mixed")),
                  waves=int(ca.get("waves", 1)),
                  seed=int(ca.get("seed", 0)),
                  recorder=recorder)
    seconds = time.perf_counter() - t0
    if recorder is not None:
        recorder.finalize(silent=sim.is_silent())
    return seconds, sim.moves, sim.rounds, sim.is_silent(), net.n, net.m


def run_workload(workload: Workload, repeats: int | None = None,
                 warmup: bool = True) -> dict[str, Any]:
    """Measure one workload: warmup + median-of-k repeats.

    Returns the JSON-plain per-workload record the emitter persists.
    Raises RuntimeError if the repeats disagree on (moves, rounds,
    silent) — the workload seeds are pinned, so any disagreement means
    nondeterminism in the engine, which must not be papered over.
    """
    k = repeats if repeats is not None else workload.repeats
    if k < 1:
        raise ValueError("repeats must be >= 1")

    from repro.obs.probes import capture_active
    if capture_active():
        raise RuntimeError(
            "refusing to measure: an obs trace capture is active in this "
            "process, so probe work would sit inside the timed loop and "
            "poison the numbers.  Finish (finalize/abort) every "
            "TraceRecorder — and unset REPRO_OBS_CAPTURE — before "
            "benchmarking; record traces and timings in separate runs.")

    if warmup and workload.warmup:
        _one_execution(workload)
    runs = [_one_execution(workload) for _ in range(k)]

    outcomes = {run[1:] for run in runs}  # everything but the clock
    if len(outcomes) != 1:
        raise RuntimeError(
            f"workload {workload.name!r} is nondeterministic across "
            f"repeats: {sorted(outcomes)} — engine bug, refusing to record")
    _, moves, rounds, silent, n, m = runs[0]

    seconds = statistics.median(run[0] for run in runs)
    return {
        "family": workload.family,
        "protocol": workload.protocol,
        "topology": workload.topology,
        "scheduler": workload.scheduler,
        "init": workload.init,
        "n": n,
        "m": m,
        "rounds": rounds,
        "moves": moves,
        "silent": silent,
        "repeats": k,
        "seconds": seconds,
        "seconds_all": [run[0] for run in runs],
        "moves_per_sec": (moves / seconds) if seconds > 0 else 0.0,
        "rounds_per_sec": (rounds / seconds) if seconds > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
    }


def _src_dir() -> Path:
    """The ``src`` directory the running ``repro`` package lives under."""
    import repro
    return Path(repro.__file__).resolve().parent.parent


def interpreter_report() -> dict[str, Any]:
    """Interpreter fitness for recording benchmark numbers.

    Returns ``{"dirty": [...], "warnings": [...], ...identity...}``.
    ``dirty`` reasons make recorded numbers meaningless (active tracer /
    profiler / tracemalloc / coverage); the CLI refuses to write
    ``BENCH_*.json`` while any is present unless forced.  ``warnings``
    flag suspicious-but-recordable conditions, notably a ``PYTHONPATH``
    that does not include the ``src`` tree ``repro`` was imported from
    (subprocess workloads would then resolve a *different* repro).
    """
    dirty: list[str] = []
    warnings: list[str] = []

    if sys.gettrace() is not None:
        dirty.append("an active trace function (debugger/coverage) is set")
    if sys.getprofile() is not None:
        dirty.append("an active profile function is set")
    try:
        import tracemalloc
        if tracemalloc.is_tracing():
            dirty.append("tracemalloc is tracing allocations")
    except ImportError:  # pragma: no cover
        pass
    if "coverage" in sys.modules:
        dirty.append("the coverage package is loaded")
    from repro.obs.probes import capture_active
    if capture_active():
        dirty.append(
            "an obs trace capture is active (live TraceRecorder or "
            "REPRO_OBS_CAPTURE set) — probe callbacks inside the measured "
            "round loop invalidate throughput; finalize the recorder or "
            "unset the variable, then re-run")

    src = _src_dir()
    pythonpath = os.environ.get("PYTHONPATH", "")
    entries = [Path(p).resolve() for p in pythonpath.split(os.pathsep) if p]
    if src not in entries:
        warnings.append(
            f"PYTHONPATH does not include {src} — subprocess runs may "
            f"import a different 'repro'; set PYTHONPATH={src}")
    if platform.python_implementation() != "CPython":
        warnings.append(
            f"non-CPython interpreter "
            f"({platform.python_implementation()}): numbers are not "
            f"comparable with the CPython trajectory")
    if not __debug__:
        warnings.append("interpreter running with -O (asserts stripped)")
    if sys.flags.dev_mode:
        warnings.append("-X dev mode is active (extra runtime checks)")

    return {
        "dirty": dirty,
        "warnings": warnings,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }

"""Performance subsystem: pinned benchmark workloads, a measurement
harness, and the ``BENCH_*.json`` trajectory emitter.

The paper's headline claims are *time* claims (O(n)-round silent
constructions under tight space bounds); validating them at scale hinges
on simulator throughput.  This package makes that throughput a tracked,
machine-readable quantity:

* :mod:`repro.perf.workloads` — the registry of pinned, named workloads
  (the PR-1 acceptance workload plus BFS/MST/MDST/NCA sweeps at
  n in {128, 512, 2048}); every seed is pinned, so a workload is a pure
  function of the code under test;
* :mod:`repro.perf.harness` — warmup + median-of-k measurement with a
  determinism cross-check and interpreter sanity gating;
* :mod:`repro.perf.emitter` — the ``BENCH_latest.json`` / dated
  ``BENCH_<date>.json`` schema, writer, and baseline comparison;
* :mod:`repro.perf.cli` — ``python -m repro bench``.
"""

from repro.perf.emitter import (
    SCHEMA_VERSION,
    compare_reports,
    load_report,
    make_report,
    validate_report,
    write_report,
)
from repro.perf.harness import interpreter_report, run_workload
from repro.perf.workloads import WORKLOADS, Workload, select_workloads

__all__ = [
    "SCHEMA_VERSION",
    "WORKLOADS",
    "Workload",
    "compare_reports",
    "interpreter_report",
    "load_report",
    "make_report",
    "run_workload",
    "select_workloads",
    "validate_report",
    "write_report",
]

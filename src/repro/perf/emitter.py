"""The ``BENCH_*.json`` trajectory: schema, writer, baseline comparison.

Every bench run emits one report: ``BENCH_latest.json`` (overwritten,
the file CI diffs and uploads) plus a dated ``BENCH_<YYYY-MM-DD>.json``
sibling, so a checkout accumulates a perf trajectory over time.  The
report is self-describing — schema version, interpreter identity, git
revision — and the *comparison* logic lives here too, so the CI gate
and local `--baseline` runs share one definition of "regression".
"""

from __future__ import annotations

import datetime as _dt
import json
import subprocess
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "make_report",
    "write_report",
    "load_report",
    "validate_report",
    "compare_reports",
]

#: Bump on incompatible report-shape changes; compare_reports refuses to
#: diff reports with mismatched schema versions.
SCHEMA_VERSION = 1

#: Per-workload keys every report must carry (the comparison contract).
_REQUIRED_WORKLOAD_KEYS = (
    "family", "protocol", "n", "rounds", "moves", "seconds",
    "moves_per_sec", "rounds_per_sec", "repeats",
)


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent)
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def make_report(mode: str, results: dict[str, dict[str, Any]],
                interpreter: dict[str, Any]) -> dict[str, Any]:
    """Assemble the report dict from per-workload harness records."""
    return {
        "schema": SCHEMA_VERSION,
        "mode": mode,
        "created": _dt.datetime.now(_dt.timezone.utc).isoformat(
            timespec="seconds"),
        "git_revision": _git_revision(),
        "interpreter": {k: interpreter[k] for k in
                        ("python", "implementation", "platform")},
        "interpreter_warnings": list(interpreter.get("warnings", ())),
        # peak_rss_kb is a process-lifetime high-water mark on Linux:
        # within one report it is monotone across workloads, so treat a
        # workload's value as an upper bound, not an isolated footprint
        "notes": {"peak_rss_kb": "process high-water mark (monotone "
                                 "within a report)"},
        "workloads": dict(results),
    }


def validate_report(report: dict[str, Any]) -> list[str]:
    """Schema errors as human-readable strings (empty when valid)."""
    errors: list[str] = []
    if not isinstance(report, dict):
        return ["report is not an object"]
    if report.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema version {report.get('schema')!r} != {SCHEMA_VERSION}")
    workloads = report.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        errors.append("missing or empty 'workloads' object")
        return errors
    for name, rec in workloads.items():
        if not isinstance(rec, dict):
            errors.append(f"workload {name!r}: not an object")
            continue
        for key in _REQUIRED_WORKLOAD_KEYS:
            if key not in rec:
                errors.append(f"workload {name!r}: missing {key!r}")
    return errors


def write_report(report: dict[str, Any],
                 out_dir: str | Path = ".") -> tuple[Path, Path]:
    """Write ``BENCH_latest.json`` + the dated sibling; returns both paths."""
    errors = validate_report(report)
    if errors:
        raise ValueError(f"refusing to write an invalid report: {errors}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    text = json.dumps(report, indent=2, sort_keys=False) + "\n"
    latest = out / "BENCH_latest.json"
    date = report["created"][:10]  # ISO date prefix
    dated = out / f"BENCH_{date}.json"
    latest.write_text(text)
    dated.write_text(text)
    return latest, dated


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a report; raises ValueError on schema problems."""
    report = json.loads(Path(path).read_text())
    errors = validate_report(report)
    if errors:
        raise ValueError(f"{path}: invalid BENCH report: {errors}")
    return report


def compare_reports(current: dict[str, Any], baseline: dict[str, Any],
                    tolerance: float = 2.5) -> dict[str, Any]:
    """Diff two reports on moves/sec; flag slowdowns beyond ``tolerance``.

    A workload regresses when ``baseline_mps / current_mps > tolerance``
    (tolerance 2.5 absorbs CI-runner noise, per the perf-gate policy).
    Workloads present in only one report are reported as ``skipped`` —
    the workload set may legitimately evolve between commits — and never
    fail the gate on their own.  However, a comparison in which *zero*
    workloads overlap compared nothing and fails (``ok: False``):
    otherwise renaming the workload set without refreshing the committed
    baseline would turn the CI gate permanently, silently green.
    """
    if tolerance <= 1.0:
        raise ValueError(f"tolerance must be > 1.0, got {tolerance}")
    for rep, label in ((current, "current"), (baseline, "baseline")):
        errors = validate_report(rep)
        if errors:
            raise ValueError(f"{label} report invalid: {errors}")

    cur, base = current["workloads"], baseline["workloads"]
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    for name in cur:
        # informational only, never gated: on Linux peak RSS is a
        # process high-water mark, monotone across one report's workloads
        rss = cur[name].get("peak_rss_kb")
        if name not in base:
            rows.append({"workload": name, "status": "skipped",
                         "reason": "not in baseline",
                         "peak_rss_kb": rss})
            continue
        cur_mps = float(cur[name]["moves_per_sec"])
        base_mps = float(base[name]["moves_per_sec"])
        if cur_mps <= 0.0:
            # a zero-throughput current run is always a failure: the
            # workload did no measurable work
            rows.append({"workload": name, "status": "regression",
                         "current_mps": cur_mps, "baseline_mps": base_mps,
                         "slowdown": float("inf"),
                         "peak_rss_kb": rss})
            regressions.append(name)
            continue
        slowdown = base_mps / cur_mps if base_mps > 0 else 0.0
        status = "regression" if slowdown > tolerance else "ok"
        rows.append({"workload": name, "status": status,
                     "current_mps": round(cur_mps, 1),
                     "baseline_mps": round(base_mps, 1),
                     "slowdown": round(slowdown, 3),
                     "peak_rss_kb": rss})
        if status == "regression":
            regressions.append(name)
    for name in base:
        if name not in cur:
            rows.append({"workload": name, "status": "skipped",
                         "reason": "not in current"})
    compared = sum(1 for r in rows if r["status"] != "skipped")
    return {"tolerance": tolerance, "rows": rows, "compared": compared,
            "regressions": regressions,
            "ok": not regressions and compared > 0}

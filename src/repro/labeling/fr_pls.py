"""The proof-labeling scheme for FR-trees (Lemma 8.1).

Certifying "deg(T) <= OPT + 1" directly is out of reach (Proposition 8.1:
no poly-time PLS for near-MDST unless NP = co-NP), so the paper certifies
membership in the *FR-tree subclass* instead, which by [33, Thm 2.2]
implies the degree bound.  The certificate is O(log n) bits per node:

* the spanning-tree certificate (root id, parent, distance);
* the claimed tree degree ``k``, equal network-wide, with each node
  checking ``deg_T <= k``, plus a hop counter toward a node of degree
  exactly ``k`` (so ``k`` really is the maximum, not an inflated value —
  an inflated ``k`` would certify a weaker statement);
* the good/bad mark, constrained by Definition 8.1 (1) and (2);
* for good nodes, a fragment identity with an owner-certificate hop
  counter (ghost fragment ids are flushed exactly like ghost roots), used
  to check Definition 8.1 (3): no graph edge between good nodes of
  different fragments.

The verifier is sound and complete for "T is a spanning tree AND the
marking stored in the labels witnesses Definition 8.1" — which is the
property the silent MDST algorithm stabilizes on.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro._bits import bits_for_counter, bits_for_flag, bits_for_id, bits_for_option
from repro.core.fr import FRMarking, fr_marking
from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.pls import ProofLabelingScheme

__all__ = ["FRCertificate", "FRTreePLS"]


@dataclass(frozen=True)
class FRCertificate:
    """Everything the Lemma 8.1 verifier reads at one node."""

    rid: int
    par: int | None
    d: int                      # distance to the root
    k: int                      # claimed tree degree
    dk_dist: int                # hops (in T) toward a node of degree k
    good: bool
    frag: int | None            # fragment identity (good nodes only)
    fdist: int | None           # hops (inside the fragment) to the id owner


class FRTreePLS(ProofLabelingScheme):
    """The O(log n)-bit proof-labeling scheme for FR-trees."""

    name = "fr-tree-pls"

    def prove(self, net: Network, tree: RootedTree,
              marking: FRMarking | None = None) -> dict[int, FRCertificate]:
        if marking is None:
            marking = fr_marking(net, tree)
        if not marking.is_fr:
            raise ValueError("prove() requires an FR-tree (run Algorithm 4 first)")
        k = marking.degree
        dk = self._distances_to_degree_k(net, tree, k)
        labels: dict[int, FRCertificate] = {}
        for v in net.nodes:
            good = v in marking.good
            labels[v] = FRCertificate(
                rid=tree.root, par=tree.parent(v), d=tree.depth(v),
                k=k, dk_dist=dk[v], good=good,
                frag=marking.fragments.get(v),
                fdist=marking.fragment_dist.get(v),
            )
        return labels

    @staticmethod
    def _distances_to_degree_k(net: Network, tree: RootedTree,
                               k: int) -> dict[int, int]:
        sources = [v for v in net.nodes if tree.degree(v) == k]
        dist = {v: 0 for v in sources}
        frontier = sources
        while frontier:
            nxt = []
            for u in frontier:
                for y in tree.tree_neighbors(u):
                    if y not in dist:
                        dist[y] = dist[u] + 1
                        nxt.append(y)
            frontier = nxt
        return dist

    def verify_at(self, net: Network, node: int,
                  labels: Mapping[int, FRCertificate]) -> bool:
        lab = labels[node]
        # ---- spanning-tree certificate ----
        if not 0 <= lab.d < net.n_bound:
            return False
        for u in net.neighbors(node):
            if labels[u].rid != lab.rid or labels[u].k != lab.k:
                return False
        if lab.par is None:
            if lab.rid != node or lab.d != 0:
                return False
        else:
            if lab.par not in net.neighbors(node) or lab.rid == node:
                return False
            if lab.d != labels[lab.par].d + 1:
                return False
        tree_nbrs = [u for u in net.neighbors(node)
                     if labels[u].par == node or lab.par == u]
        deg = len(tree_nbrs)
        # ---- the claimed degree k ----
        if deg > lab.k:
            return False
        if not 0 <= lab.dk_dist <= net.n_bound:
            return False
        if (deg == lab.k) != (lab.dk_dist == 0):
            return False
        if lab.dk_dist > 0:
            if not any(labels[u].dk_dist == lab.dk_dist - 1 for u in tree_nbrs):
                return False
        # ---- Definition 8.1 (1) and (2) ----
        if deg == lab.k and lab.good:
            return False
        if deg <= lab.k - 2 and not lab.good:
            return False
        # ---- fragments ----
        if not lab.good:
            return lab.frag is None and lab.fdist is None
        if lab.frag is None or lab.fdist is None:
            return False
        if not 0 <= lab.fdist <= net.n_bound:
            return False
        good_tree_nbrs = [u for u in tree_nbrs if labels[u].good]
        # adjacent good tree nodes share a fragment
        for u in good_tree_nbrs:
            if labels[u].frag != lab.frag:
                return False
        # owner certificate for the fragment identity
        if (lab.frag == node) != (lab.fdist == 0):
            return False
        if lab.fdist > 0:
            if not any(labels[u].frag == lab.frag
                       and labels[u].fdist == lab.fdist - 1
                       for u in good_tree_nbrs):
                return False
        # ---- Definition 8.1 (3) ----
        for u in net.neighbors(node):
            if labels[u].good and labels[u].frag != lab.frag:
                return False
        return True

    def label_bits(self, net: Network, label: FRCertificate) -> int:
        id_bits = bits_for_id(net.id_space)
        cnt_bits = bits_for_counter(net.n_bound)
        return (id_bits                         # rid
                + bits_for_option(id_bits)      # par
                + cnt_bits                      # d
                + cnt_bits                      # k (a degree < n)
                + cnt_bits                      # dk_dist
                + bits_for_flag()               # good
                + bits_for_option(id_bits)      # frag
                + bits_for_option(cnt_bits))    # fdist

"""The malleable redundant proof-labeling scheme (Section IV, Lemma 4.1).

The paper's key enabling idea for *silent loop-free* tree mutation: label
every node of a spanning tree with BOTH its distance ``d`` to the root and
the size ``s`` of its subtree ("the redundant labeling"), and allow the
prover to *prune* entries — replace ``d`` or ``s`` (never both) by the
discard symbol — subject to two constraints:

* **C1**: if ``v``'s size is pruned, its parent's size is pruned;
* **C2**: if ``v``'s distance is pruned, its parent's label is intact or
  has a pruned distance (i.e. the parent's size entry is never the only
  survivor above a distance-pruned child).

Lemma 4.1 exhibits a verifier that (1) accepts every legal pruning of a
correct redundant labeling of a spanning tree, yet (2) rejects every
labeling of a non-tree.  The verifier's case table (rows: v's label;
columns: v's parent's label)::

                 (d', s')            (d', _)       (_, s')
    (d, s)   distance and size      distance        size
    (d, _)          no              distance         no
    (_, s)         size                no            size

where "distance" checks ``d == d' + 1`` and "size" checks
``s == 1 + sum of children's sizes``.

Because pruned labelings remain accepted, a tree edge can be exchanged for
a non-tree edge *without the scheme ever raising an alarm*: prune sizes
down the two root-paths, prune distances down the moving subtree, switch
the parent pointer, then recompute sizes upward and distances downward.
This module implements the scheme and generates those three-phase
label traces (used to drive and to test the distributed protocol in
:mod:`repro.core.swap`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace

from repro._bits import bits_for_counter, bits_for_id, bits_for_option
from repro.core.trees import RootedTree
from repro.graphs.network import Network, UWEdge
from repro.labeling.pls import ProofLabelingScheme

__all__ = ["MalleableLabel", "MalleablePLS", "SwitchTrace"]


@dataclass(frozen=True)
class MalleableLabel:
    """(ID, d, s) of the redundant scheme plus the parent variable.

    ``d is None`` / ``s is None`` encode the discard symbol.  ``(None,
    None)`` is forbidden (the verifier rejects it).
    """

    rid: int
    par: int | None
    d: int | None
    s: int | None


Labels = dict[int, MalleableLabel]


@dataclass
class SwitchTrace:
    """A step-by-step label trace of one or more local switches.

    ``configs[0]`` is the starting labeled tree, ``configs[-1]`` the fully
    relabeled result; every intermediate configuration differs from its
    predecessor by the atomic actions of a single wave step.
    """

    configs: list[Labels]
    tree_after: RootedTree

    def __len__(self) -> int:
        return len(self.configs)


class MalleablePLS(ProofLabelingScheme):
    """The redundant (d, s) scheme with pruning, for the family ST."""

    name = "malleable-pls"

    # ------------------------------------------------------------------
    # prover
    # ------------------------------------------------------------------

    def prove(self, net: Network, tree: RootedTree) -> Labels:
        """The full (unpruned) redundant labeling of a spanning tree."""
        sizes = tree.subtree_sizes()
        return {
            v: MalleableLabel(rid=tree.root, par=tree.parent(v),
                              d=tree.depth(v), s=sizes[v])
            for v in net.nodes
        }

    # ------------------------------------------------------------------
    # verifier (the Lemma 4.1 case table)
    # ------------------------------------------------------------------

    def verify_at(self, net: Network, node: int,
                  labels: Mapping[int, MalleableLabel]) -> bool:
        lab = labels[node]
        # (None, None) labels are forbidden; entries live in bounded domains
        if lab.d is None and lab.s is None:
            return False
        if lab.d is not None and not 0 <= lab.d < net.n_bound:
            return False
        if lab.s is not None and not 1 <= lab.s <= net.n_bound:
            return False
        # unique root identity: agreement along every graph edge
        for u in net.neighbors(node):
            if labels[u].rid != lab.rid:
                return False

        children = [u for u in net.neighbors(node) if labels[u].par == node]

        def size_ok() -> bool:
            if lab.s is None:
                return False
            if any(labels[c].s is None for c in children):
                return False
            return lab.s == 1 + sum(labels[c].s for c in children)

        if lab.par is None:
            # the root: must own the claimed identity; its distance entry is
            # never pruned (the switching node is never the root) and is 0.
            if lab.rid != node or lab.d != 0:
                return False
            return True if lab.s is None else size_ok()

        # non-root structural checks
        if lab.par not in net.neighbors(node):
            return False
        if lab.rid == node:
            return False  # the owner of the root identity must be the root
        plab = labels[lab.par]

        def distance_ok() -> bool:
            return (lab.d is not None and plab.d is not None
                    and lab.d == plab.d + 1)

        if lab.d is not None and lab.s is not None:        # row (d, s)
            if plab.d is not None and plab.s is not None:
                return distance_ok() and size_ok()
            if plab.d is not None:                          # parent (d', _)
                return distance_ok()
            return size_ok()                                # parent (_, s')
        if lab.d is not None:                               # row (d, _)
            if plab.d is not None and plab.s is None:
                return distance_ok()
            return False
        # row (_, s)
        if plab.s is None:                                  # parent (d', _)
            return False
        return size_ok()

    def label_bits(self, net: Network, label: MalleableLabel) -> int:
        return (bits_for_id(net.id_space)
                + bits_for_option(bits_for_id(net.id_space))
                + bits_for_option(bits_for_counter(net.n_bound))
                + bits_for_option(bits_for_counter(net.n_bound)))

    # ------------------------------------------------------------------
    # legal pruning operators (what the waves of Section IV produce)
    # ------------------------------------------------------------------

    @staticmethod
    def prune_size_on_root_path(labels: Labels, tree: RootedTree,
                                target: int) -> list[Labels]:
        """Prune ``s`` downward along the root-to-target path (one node per
        step, starting at the root — the downward wave of Fig. 1b).

        Returns the list of successive configurations (excluding the input).
        """
        path = list(reversed(tree.path_to_root(target)))  # root ... target
        out: list[Labels] = []
        cur = dict(labels)
        for u in path:
            if cur[u].s is None:
                continue  # already pruned (shared ancestors of w and w')
            cur = dict(cur)
            cur[u] = replace(cur[u], s=None)
            out.append(cur)
        return out

    @staticmethod
    def prune_distance_below(labels: Labels, tree: RootedTree,
                             top: int) -> list[Labels]:
        """Prune ``d`` on the strict descendants of ``top``, level by level
        downward (the subtree wave of Fig. 1b)."""
        out: list[Labels] = []
        cur = dict(labels)
        frontier = list(tree.children(top))
        while frontier:
            nxt: list[int] = []
            cur = dict(cur)
            for u in frontier:
                cur[u] = replace(cur[u], d=None)
                nxt.extend(tree.children(u))
            out.append(cur)
            frontier = nxt
        return out

    # ------------------------------------------------------------------
    # the three-phase local switch (Section IV, Fig. 1b)
    # ------------------------------------------------------------------

    def local_switch_trace(self, net: Network, tree: RootedTree,
                           labels: Labels, v: int, new_parent: int,
                           ) -> SwitchTrace:
        """Replace the tree edge {v, p(v)} by the graph edge {v, new_parent}.

        Requires ``new_parent`` to be a graph neighbor of ``v`` outside
        ``v``'s subtree.  Produces the full wave-by-wave label trace:

        1. pruning phase — sizes pruned downward along the two root paths
           (to ``w = p(v)`` and to ``w' = new_parent``), distances pruned
           downward in ``v``'s subtree;
        2. switching phase — once ``w`` and ``w'`` both show ``(d, _)`` and
           all of ``v``'s children show ``(_, s)``, node ``v`` atomically
           sets ``par = w'`` and ``d = d(w') + 1``;
        3. relabeling phase — sizes recomputed upward from ``w`` and ``w'``,
           distances recomputed downward from ``v``.
        """
        w = tree.parent(v)
        if w is None:
            raise ValueError("the root cannot switch its parent")
        if new_parent not in net.neighbors(v):
            raise ValueError(f"{new_parent} is not a graph neighbor of {v}")
        if new_parent in tree.subtree_nodes(v):
            raise ValueError(f"{new_parent} is inside the subtree of {v}")

        trace: list[Labels] = [dict(labels)]

        # -- phase 1: pruning ------------------------------------------
        for cfg in self.prune_size_on_root_path(trace[-1], tree, w):
            trace.append(cfg)
        for cfg in self.prune_size_on_root_path(trace[-1], tree, new_parent):
            trace.append(cfg)
        for cfg in self.prune_distance_below(trace[-1], tree, v):
            trace.append(cfg)

        # -- phase 2: the switch ---------------------------------------
        cur = dict(trace[-1])
        d_new_parent = cur[new_parent].d
        assert d_new_parent is not None, "root paths only prune sizes"
        cur[v] = replace(cur[v], par=new_parent, d=d_new_parent + 1)
        trace.append(cur)
        new_tree = _reparent(net, tree, v, new_parent)

        # -- phase 3: relabeling ---------------------------------------
        new_sizes = new_tree.subtree_sizes()
        # sizes recompute upward: a pruned node un-prunes when all its
        # children (in the NEW tree) carry concrete sizes.
        while True:
            cur = trace[-1]
            ready = [
                u for u in net.nodes
                if cur[u].s is None
                and all(cur[c].s is not None for c in new_tree.children(u))
            ]
            if not ready:
                break
            nxt = dict(cur)
            for u in ready:
                nxt[u] = replace(nxt[u], s=new_sizes[u])
            trace.append(nxt)
        # distances recompute downward: a pruned node un-prunes when its
        # (new) parent carries a concrete distance.
        while True:
            cur = trace[-1]
            ready = [
                u for u in net.nodes
                if cur[u].d is None and cur[new_tree.parent(u)].d is not None
            ]
            if not ready:
                break
            nxt = dict(cur)
            for u in ready:
                nxt[u] = replace(nxt[u], d=cur[new_tree.parent(u)].d + 1)
            trace.append(nxt)

        assert trace[-1] == self.prove(net, new_tree), \
            "relabeling must reproduce the full redundant labeling"
        return SwitchTrace(configs=trace, tree_after=new_tree)

    # ------------------------------------------------------------------
    # the full T <- T + e - f swap as a chain of local switches (Fig. 1a)
    # ------------------------------------------------------------------

    def full_switch_trace(self, net: Network, tree: RootedTree,
                          e: tuple[int, int], f: tuple[int, int],
                          ) -> SwitchTrace:
        """Replace tree edge ``f`` by non-tree edge ``e`` via the chain of
        local switches of Fig. 1a: the endpoint of ``e`` inside the detached
        subtree re-parents across ``e`` first, then each node on the path up
        to ``f`` re-parents onto its former child, which removes ``f``."""
        e = UWEdge(*e)
        f = UWEdge(*f)
        if f not in set(tree.fundamental_cycle_edges(e)):
            raise ValueError(f"{f} is not on the fundamental cycle of {e}")
        fx, fy = f
        x = fx if tree.parent(fx) == fy else fy  # child side of f
        detached = tree.subtree_nodes(x)
        a = e[0] if e[0] in detached else e[1]
        b = e[1] if a == e[0] else e[0]
        # the chain a -> p(a) -> ... -> x, switched in that order
        chain = []
        yy = a
        while yy != x:
            chain.append(yy)
            yy = tree.parent(yy)
        chain.append(x)

        configs: list[Labels] = [self.prove(net, tree)]
        cur_tree = tree
        new_parent = b
        for y in chain:
            sub = self.local_switch_trace(net, cur_tree, configs[-1],
                                          y, new_parent)
            configs.extend(sub.configs[1:])
            cur_tree = sub.tree_after
            new_parent = y  # the next chain node re-parents onto y
        expected = (tree.edges() | {e}) - {f}
        assert cur_tree.edges() == expected, "chain must realize T + e - f"
        return SwitchTrace(configs=configs, tree_after=cur_tree)


def _reparent(net: Network, tree: RootedTree, v: int,
              new_parent: int) -> RootedTree:
    """The tree after the single local switch (p(v) := new_parent)."""
    parent = tree.parent_map
    parent[v] = new_parent
    return RootedTree(net, parent)

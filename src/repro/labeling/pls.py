"""The proof-labeling scheme framework (Section II-C of the paper).

A proof-labeling scheme for a property of *configurations* is a pair
``(p, v)``:

* the **prover** ``p`` assigns a label (bit string) to every node of a
  configuration satisfying the property;
* the **verifier** ``v`` runs at every node, reading only that node's
  variables + label and its neighbors' variables + labels, and outputs
  yes/no.

Soundness/completeness contract: if the property holds, the prover's labels
make every node accept; if it does not hold, then *for every* label
assignment at least one node rejects.

In this reproduction a "configuration" is whatever structured state the
scheme talks about — for tree schemes, the node's parent pointer plus its
label fields.  Labels carry exact bit sizes so the compactness claims can
be measured.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass

from repro.graphs.network import Network

__all__ = ["ProofLabelingScheme", "VerificationResult"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of running the verifier at every node."""

    accepted: bool
    rejecting_nodes: tuple[int, ...]

    def __bool__(self) -> bool:
        return self.accepted


class ProofLabelingScheme(ABC):
    """Base class for all schemes in :mod:`repro.labeling`.

    ``LabelT`` is scheme-specific (a dataclass per scheme); ``labels`` maps
    every node to its label.
    """

    #: short name used in reports
    name: str = "pls"

    @abstractmethod
    def prove(self, net: Network, structure) -> dict[int, object]:
        """The prover: labels for a structure satisfying the property."""

    @abstractmethod
    def verify_at(self, net: Network, node: int,
                  labels: Mapping[int, object]) -> bool:
        """The verifier at one node (may read only the node's own label and
        its graph neighbors' labels)."""

    def verify(self, net: Network, labels: Mapping[int, object]) -> VerificationResult:
        """Run the verifier at every node."""
        rejecting = tuple(
            v for v in net.nodes if not self.verify_at(net, v, labels)
        )
        return VerificationResult(accepted=not rejecting, rejecting_nodes=rejecting)

    @abstractmethod
    def label_bits(self, net: Network, label) -> int:
        """Exact size of one label in bits."""

    def max_label_bits(self, net: Network, labels: Mapping[int, object]) -> int:
        """The scheme's measured space complexity on this instance."""
        return max(self.label_bits(net, lab) for lab in labels.values())

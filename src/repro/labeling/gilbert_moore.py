"""Gilbert–Moore alphabetic codes (ref [37] of the paper).

An *alphabetic* (order-preserving) prefix-free binary code for a weighted
alphabet ``w_1, ..., w_k`` (in fixed order): codeword ``i`` has length

    L_i = ceil(log2(W / w_i)) + 1        where W = sum of the weights,

and the codewords are strictly increasing in the lexicographic order.  The
Alstrup et al. NCA labeling (ref [6]) uses these codes to encode heavy-path
descents and light-edge choices with lengths proportional to the log-ratio
of subtree sizes, which makes the whole label telescope to O(log n) bits.

The construction is the classical one: codeword ``i`` is the binary
expansion of the midpoint ``Q_i = prefix_i + w_i / 2`` of the ``i``-th
weight interval, truncated to ``L_i`` bits.  All arithmetic is exact
(integers), so prefix-freeness is exact as well.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["gilbert_moore_code", "code_lengths"]


def _bits_of_fraction(num: int, den: int, nbits: int) -> str:
    """The first ``nbits`` binary digits of num/den (0 <= num < den)."""
    out = []
    for _ in range(nbits):
        num *= 2
        if num >= den:
            out.append("1")
            num -= den
        else:
            out.append("0")
    return "".join(out)


def _ceil_log2_ratio(total: int, w: int) -> int:
    """ceil(log2(total / w)) computed exactly on integers."""
    # smallest L with 2^L * w >= total
    level = 0
    acc = w
    while acc < total:
        acc *= 2
        level += 1
    return level


def gilbert_moore_code(weights: Sequence[int]) -> list[str]:
    """The Gilbert–Moore codewords for positive ``weights`` (fixed order).

    Returns one bit-string per symbol.  Guarantees (tested property-based):

    * prefix-free: no codeword is a prefix of another;
    * alphabetic: codewords increase lexicographically with the index;
    * compact: ``len(code[i]) == ceil(log2(W / w_i)) + 1``.
    """
    if not weights:
        return []
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    total = sum(weights)
    codes: list[str] = []
    prefix = 0
    for w in weights:
        length = _ceil_log2_ratio(total, w) + 1
        # midpoint of [prefix, prefix + w) over total, exactly:
        # Q = (2 * prefix + w) / (2 * total)
        codes.append(_bits_of_fraction(2 * prefix + w, 2 * total, length))
        prefix += w
    return codes


def code_lengths(weights: Sequence[int]) -> list[int]:
    """Lengths of the Gilbert–Moore codewords without building them."""
    total = sum(weights)
    return [_ceil_log2_ratio(total, w) + 1 for w in weights]

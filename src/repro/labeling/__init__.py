"""Proof-labeling schemes and informative labeling schemes.

* :mod:`pls` — the prover/verifier framework of Section II-C;
* :mod:`tree_pls` — the classic distance-based and size-based schemes for
  spanning trees;
* :mod:`malleable` — the paper's redundant (d, s) scheme with pruning,
  Definition 4.1 and Lemma 4.1;
* :mod:`gilbert_moore` — alphabetic (order-preserving) prefix codes, ref [37];
* :mod:`nca` — the Alstrup et al. nearest-common-ancestor labeling, ref [6];
* :mod:`nca_pls` — the proof-labeling scheme *for* the NCA labeling
  (Lemma 5.1);
* :mod:`mst_pls` — the Boruvka-trace MST scheme of Section VI (refs [50],
  [52]);
* :mod:`fr_pls` — the FR-tree scheme of Lemma 8.1.
"""

from repro.labeling.pls import ProofLabelingScheme, VerificationResult

__all__ = ["ProofLabelingScheme", "VerificationResult"]

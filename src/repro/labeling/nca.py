"""The nearest-common-ancestor labeling scheme of Alstrup et al. (ref [6]).

An *informative labeling scheme* for NCA: every node ``v`` of a rooted tree
gets a label ``lambda(v)`` such that for any two nodes ``u, v`` the label of
their nearest common ancestor is computable from ``lambda(u)`` and
``lambda(v)`` **alone**.  Section V of the paper uses this to let every node
decide locally whether it belongs to the fundamental cycle of a designated
non-tree edge.

Construction (heavy-path based):

* every node's *heavy child* is its child with the largest subtree (ties to
  the smallest identity); heavy edges partition the tree into *heavy paths*;
* the structured label of ``v`` is the sequence of ``(apex, depth)`` pairs
  met on the way from the root: for each heavy path traversed, the apex
  (top node) of the path and the depth along it at which the walk exits
  (or, for the last pair, at which ``v`` sits);
* since every light edge at least halves the subtree size, labels carry at
  most ``floor(log2 n) + 1`` pairs.

NCA from two labels: take the longest common prefix of the pair sequences;
if the first differing pairs share the apex, the NCA sits on that heavy
path at the smaller depth; otherwise the NCA is the node whose label is
exactly the common prefix.  (If one label is a prefix of the other, that
node is the NCA.)

Wire format: per ref [6] the pairs are encoded with Gilbert–Moore
alphabetic codes whose lengths telescope along the root-to-leaf walk, giving
O(log n)-bit labels.  We build the same encoding and *measure* the claim on
it (:meth:`NCALabeling.encoded_bits`); the nca computation itself runs on
the structured form, which carries the same information.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.gilbert_moore import code_lengths, gilbert_moore_code

__all__ = ["NCALabel", "NCALabeling", "nca_of_labels", "label_is_ancestor"]


@dataclass(frozen=True)
class NCALabel:
    """A structured NCA label: the sequence of (apex, depth) pairs."""

    segments: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("an NCA label has at least one segment")

    @property
    def final_apex(self) -> int:
        return self.segments[-1][0]

    @property
    def final_depth(self) -> int:
        return self.segments[-1][1]


def nca_of_labels(a: NCALabel, b: NCALabel) -> NCALabel:
    """The label of the nearest common ancestor, from two labels alone."""
    sa, sb = a.segments, b.segments
    common = 0
    for pa, pb in zip(sa, sb):
        if pa != pb:
            break
        common += 1
    if common == len(sa) and common == len(sb):
        return a  # same node
    if common == len(sa):
        return a  # a's node is an ancestor of b's node (label prefix)
    if common == len(sb):
        return b
    apex_a, depth_a = sa[common]
    apex_b, depth_b = sb[common]
    if apex_a == apex_b:
        # both walks run along the same heavy path and separate at the
        # shallower of the two depths
        return NCALabel(sa[:common] + ((apex_a, min(depth_a, depth_b)),))
    # the walks took different light edges out of the same exit node,
    # whose label is exactly the common prefix
    if common == 0:
        raise ValueError("labels of two nodes of the same tree share the root apex")
    return NCALabel(sa[:common])


def label_is_ancestor(a: NCALabel, d: NCALabel) -> bool:
    """Whether the node labeled ``a`` is an ancestor of (or equals) the node
    labeled ``d``, decided from the two labels alone."""
    return nca_of_labels(a, d) == a


class NCALabeling:
    """The labeling of one concrete rooted tree (the sequential prover).

    Also exposes the heavy-child structure (needed by the proof-labeling
    scheme of Lemma 5.1) and the Gilbert–Moore encoded size of every label
    (the space measurement).
    """

    def __init__(self, net: Network, tree: RootedTree) -> None:
        self.net = net
        self.tree = tree
        self.sizes = tree.subtree_sizes()
        self.heavy: dict[int, int | None] = {
            v: self._heavy_child(v) for v in net.nodes
        }
        self.labels: dict[int, NCALabel] = {}
        self._assign_labels()
        self._encoded: dict[int, str] = {}
        self._encode_all()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def _heavy_child(self, v: int) -> int | None:
        kids = self.tree.children(v)
        if not kids:
            return None
        # maximum subtree size, ties to the smallest identity
        return min(kids, key=lambda c: (-self.sizes[c], c))

    def _assign_labels(self) -> None:
        root = self.tree.root
        self.labels[root] = NCALabel(((root, 0),))
        order = sorted(self.net.nodes, key=self.tree.depth)
        for v in order:
            if v == root:
                continue
            p = self.tree.parent(v)
            plab = self.labels[p]
            if self.heavy[p] == v:
                apex, depth = plab.segments[-1]
                self.labels[v] = NCALabel(plab.segments[:-1] + ((apex, depth + 1),))
            else:
                self.labels[v] = NCALabel(plab.segments + ((v, 0),))

    def label(self, v: int) -> NCALabel:
        return self.labels[v]

    def node_of(self, label: NCALabel) -> int:
        """The node carrying this label (oracle-side inverse)."""
        # the final apex starts a heavy path; walk its heavy chain down
        v = label.final_apex
        for _ in range(label.final_depth):
            h = self.heavy[v]
            if h is None:
                raise ValueError(f"label {label} walks past a leaf")
            v = h
        return v

    def nca(self, u: int, v: int) -> int:
        """NCA computed through the labels (checked against the tree oracle
        in the tests)."""
        return self.node_of(nca_of_labels(self.labels[u], self.labels[v]))

    # ------------------------------------------------------------------
    # Gilbert–Moore wire format (the O(log n)-bit measurement)
    # ------------------------------------------------------------------

    def _heavy_path_from(self, apex: int) -> list[int]:
        path = [apex]
        while self.heavy[path[-1]] is not None:
            path.append(self.heavy[path[-1]])
        return path

    def _encode_all(self) -> None:
        """Encode every label: per heavy-path segment, a GM codeword for the
        stopping depth (weighted by the probability mass hanging at each
        position) and, if the walk continues, a GM codeword for the light
        child taken (weighted by subtree sizes, with a STOP symbol).

        Lengths telescope: each segment costs about
        log2(size(apex)/size(next apex)) + O(1) bits, so the total is
        log2(n) + O(log n) = O(log n) bits.
        """
        path_cache: dict[int, list[int]] = {}
        for v in self.net.nodes:
            bits: list[str] = []
            segs = self.labels[v].segments
            for i, (apex, depth) in enumerate(segs):
                if apex not in path_cache:
                    path_cache[apex] = self._heavy_path_from(apex)
                hpath = path_cache[apex]
                # weight of position t: mass not continuing down the heavy
                # path (the node itself plus its light subtrees)
                pos_weights = [
                    self.sizes[x] - (self.sizes[self.heavy[x]] if self.heavy[x] else 0)
                    for x in hpath
                ]
                pos_codes = gilbert_moore_code(pos_weights)
                bits.append(pos_codes[depth])
                exit_node = hpath[depth]
                if i + 1 < len(segs):
                    next_apex = segs[i + 1][0]
                    light = [c for c in self.tree.children(exit_node)
                             if c != self.heavy[exit_node]]
                    choice_weights = [1] + [self.sizes[c] for c in light]
                    lengths = code_lengths(choice_weights)
                    idx = 1 + light.index(next_apex)
                    codes = gilbert_moore_code(choice_weights)
                    assert len(codes[idx]) == lengths[idx]
                    bits.append(codes[idx])
                else:
                    # terminator: the STOP symbol of the choice alphabet
                    light = [c for c in self.tree.children(exit_node)
                             if c != self.heavy[exit_node]]
                    choice_weights = [1] + [self.sizes[c] for c in light]
                    codes = gilbert_moore_code(choice_weights)
                    bits.append(codes[0])
            self._encoded[v] = "".join(bits)

    def encoded_bits(self, v: int) -> int:
        """The wire size of v's label in bits."""
        return len(self._encoded[v])

    def encoded_label(self, v: int) -> str:
        return self._encoded[v]

    def max_encoded_bits(self) -> int:
        return max(self.encoded_bits(v) for v in self.net.nodes)

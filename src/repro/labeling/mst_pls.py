"""The MST proof-labeling scheme of Section VI (after refs [50], [52]).

Every node stores the trace of a virtual execution of Boruvka's algorithm
*on the current tree T*: for each level ``i = 1..k`` (``k <= ceil(log2 n)+1``
levels), the identity ``F_i(x)`` of the level-``i`` fragment containing
``x`` and the selected outgoing tree edge ``f_i(x) = (a, b, w)`` of that
fragment.  Fig. 2 of the paper illustrates the construction.

Verification is entirely local.  At node ``x`` (per level ``i``):

* *fragment consistency*: tree neighbors joined by an edge selected at a
  level ``< i`` carry the same ``F_i``; tree neighbors not so joined carry
  different ``F_i`` (fragments are connected subtrees, so the only path
  between tree neighbors is their edge);
* *owner certificate*: ``F_i`` values are backed by a hop counter
  ``dist_i`` decreasing toward the node that owns the identity
  (``F_i(x) = x`` iff ``dist_i = 0``), which flushes ghost fragment
  identities exactly like bounded distances flush ghost roots;
* *selected edge*: all fragment members agree on ``f_i``; its inside
  endpoint confirms it is one of its tree edges, leaving the fragment, with
  the advertised weight; every member checks it is *minimal among that
  member's own outgoing tree edges* (so the trace is the true Boruvka run
  on T);
* *top level*: a single fragment, ``f_k`` empty.

The *MST condition* on top of the trace: ``f_i(x)`` must be minimal among
``x``'s outgoing edges **in G**, not just in T.  A node seeing a lighter
outgoing graph edge is exactly a node with ``phi_x(T) < k`` — the signal
Algorithm 2 turns into an improvement (Tarjan's red rule).

Labels cost ``k * O(log n) = O(log^2 n)`` bits, which is optimal for silent
MST verification (ref [50]).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro._bits import bits_for_counter, bits_for_id, bits_for_option, bits_for_weight
from repro.core.trees import RootedTree
from repro.graphs.network import Network, UWEdge
from repro.labeling.pls import ProofLabelingScheme

__all__ = [
    "BoruvkaLevel",
    "MSTCertificate",
    "boruvka_trace",
    "MSTPLS",
    "find_mst_violation",
    "min_outgoing_graph_edge",
    "phi_values",
]


@dataclass(frozen=True)
class BoruvkaLevel:
    """One level of the trace at one node."""

    fragment: int                      # F_i(x): owner identity of the fragment
    dist: int                          # hops (inside the fragment) to the owner
    out_edge: tuple[int, int, int] | None  # f_i(x) = (a, b, w), None at level k


@dataclass(frozen=True)
class MSTCertificate:
    """The full per-node label: tree certificate + the Boruvka trace."""

    rid: int
    par: int | None
    d: int
    levels: tuple[BoruvkaLevel, ...]


# ----------------------------------------------------------------------
# prover: the Boruvka trace of a tree
# ----------------------------------------------------------------------


def boruvka_trace(net: Network, tree: RootedTree) -> dict[int, list[BoruvkaLevel]]:
    """Simulate Boruvka on the tree ``T`` and record every node's trace.

    Fragments at level 1 are singletons; the selected edge of a fragment is
    its minimum-weight outgoing **tree** edge; level ``i+1`` fragments are
    the components after merging along the selected edges.  The last level
    ``k`` is the whole tree with no outgoing edge.
    """
    tree_edges = tree.edges()
    tadj: dict[int, list[int]] = {v: [] for v in net.nodes}
    for u, v in tree_edges:
        tadj[u].append(v)
        tadj[v].append(u)

    trace: dict[int, list[BoruvkaLevel]] = {v: [] for v in net.nodes}
    fragment = {v: v for v in net.nodes}
    dist = {v: 0 for v in net.nodes}
    merged: set[tuple[int, int]] = set()

    while True:
        frags = set(fragment.values())
        if len(frags) == 1:
            for v in net.nodes:
                trace[v].append(BoruvkaLevel(fragment[v], dist[v], None))
            break
        # minimum-weight outgoing tree edge per fragment
        best: dict[int, tuple[int, tuple[int, int]]] = {}
        for e in tree_edges:
            u, v = e
            fu, fv = fragment[u], fragment[v]
            if fu == fv:
                continue
            w = net.weight_of(e)
            for f in (fu, fv):
                if f not in best or w < best[f][0]:
                    best[f] = (w, e)
        for v in net.nodes:
            w, (a, b) = best[fragment[v]]
            # orient the edge so the first endpoint is inside the fragment
            if fragment[a] != fragment[v]:
                a, b = b, a
            trace[v].append(BoruvkaLevel(fragment[v], dist[v], (a, b, w)))
        for _, e in best.values():
            merged.add(e)
        fragment, dist = _fragment_labels(net, tadj, merged)
    return trace


def _fragment_labels(net: Network, tadj: dict[int, list[int]],
                     merged: set[tuple[int, int]],
                     ) -> tuple[dict[int, int], dict[int, int]]:
    """Components of the merged edges: owner = min id, plus hop distances
    to the owner inside the component."""
    fragment: dict[int, int] = {}
    dist: dict[int, int] = {}
    seen: set[int] = set()
    for v in net.nodes:
        if v in seen:
            continue
        comp = [v]
        seen.add(v)
        stack = [v]
        while stack:
            x = stack.pop()
            for y in tadj[x]:
                if y not in seen and UWEdge(x, y) in merged:
                    seen.add(y)
                    comp.append(y)
                    stack.append(y)
        owner = min(comp)
        # BFS from the owner inside the component
        dd = {owner: 0}
        frontier = [owner]
        while frontier:
            nxt = []
            for x in frontier:
                for y in tadj[x]:
                    if y in dd or UWEdge(x, y) not in merged:
                        continue
                    dd[y] = dd[x] + 1
                    nxt.append(y)
            frontier = nxt
        for x in comp:
            fragment[x] = owner
            dist[x] = dd[x]
    return fragment, dist


# ----------------------------------------------------------------------
# the scheme
# ----------------------------------------------------------------------


class MSTPLS(ProofLabelingScheme):
    """The O(log^2 n)-bit proof-labeling scheme for MST."""

    name = "mst-pls"

    def prove(self, net: Network, tree: RootedTree) -> dict[int, MSTCertificate]:
        trace = boruvka_trace(net, tree)
        return {
            v: MSTCertificate(rid=tree.root, par=tree.parent(v),
                              d=tree.depth(v), levels=tuple(trace[v]))
            for v in net.nodes
        }

    # -- helpers shared by the two verifiers ---------------------------

    @staticmethod
    def _selected_before(lab: MSTCertificate, nlab: MSTCertificate,
                         x: int, y: int, level_idx: int) -> bool:
        """Whether tree edge {x, y} was selected at a level < level_idx
        (0-based), as advertised by either endpoint's trace."""
        e = UWEdge(x, y)
        for j in range(level_idx):
            for cert in (lab, nlab):
                oe = cert.levels[j].out_edge
                if oe is not None and UWEdge(oe[0], oe[1]) == e:
                    return True
        return False

    def _verify_structure_at(self, net: Network, node: int,
                             labels: Mapping[int, MSTCertificate],
                             check_graph_minimality: bool) -> bool:
        lab = labels[node]
        # ---- tree certificate (distance scheme) ----
        if not 0 <= lab.d < net.n_bound:
            return False
        for u in net.neighbors(node):
            if labels[u].rid != lab.rid:
                return False
        if lab.par is None:
            if lab.rid != node or lab.d != 0:
                return False
        else:
            if lab.par not in net.neighbors(node) or lab.rid == node:
                return False
            if lab.d != labels[lab.par].d + 1:
                return False
        # ---- trace shape ----
        k = len(lab.levels)
        if k < 1 or k > net.n_bound.bit_length() + 1:
            return False
        for u in net.neighbors(node):
            if len(labels[u].levels) != k:
                return False
        tree_nbrs = [u for u in net.neighbors(node)
                     if labels[u].par == node or lab.par == u]
        for i in range(k):
            lv = lab.levels[i]
            # level 1 fragments are singletons
            if i == 0 and (lv.fragment != node or lv.dist != 0):
                return False
            # owner certificate
            if not 0 <= lv.dist <= net.n_bound:
                return False
            if (lv.fragment == node) != (lv.dist == 0):
                return False
            in_frag = []
            for u in tree_nbrs:
                same = labels[u].levels[i].fragment == lv.fragment
                joined = self._selected_before(lab, labels[u], node, u, i)
                if same != joined:
                    return False
                if same:
                    in_frag.append(u)
            if lv.dist > 0:
                if not any(labels[u].levels[i].dist == lv.dist - 1
                           for u in in_frag):
                    return False
            # selected-edge agreement within the fragment
            for u in in_frag:
                if labels[u].levels[i].out_edge != lv.out_edge:
                    return False
            if lv.out_edge is None:
                # only the single top-level fragment has no outgoing edge:
                # every tree neighbor must already be inside
                if i != k - 1:
                    return False
                if len(in_frag) != len(tree_nbrs):
                    return False
            else:
                if i == k - 1:
                    return False
                a, b, w = lv.out_edge
                if a == node:
                    # the inside endpoint confirms the edge exists
                    if b not in tree_nbrs:
                        return False
                    if net.weight(node, b) != w:
                        return False
                    if labels[b].levels[i].fragment == lv.fragment:
                        return False
                # minimality among this node's own outgoing tree edges
                for u in tree_nbrs:
                    if labels[u].levels[i].fragment != lv.fragment:
                        if net.weight(node, u) < w:
                            return False
                # the merge actually happened: selected edge endpoints
                # share the next-level fragment
                if a == node and labels[b].levels[i + 1].fragment != lab.levels[i + 1].fragment:
                    return False
            if check_graph_minimality and lv.out_edge is not None:
                w = lv.out_edge[2]
                for u in net.neighbors(node):
                    if labels[u].levels[i].fragment != lv.fragment:
                        if net.weight(node, u) < w:
                            return False
        return True

    def verify_at(self, net: Network, node: int,
                  labels: Mapping[int, MSTCertificate]) -> bool:
        """Full verification: the trace is genuine AND T is an MST."""
        return self._verify_structure_at(net, node, labels,
                                         check_graph_minimality=True)

    def verify_trace_at(self, net: Network, node: int,
                        labels: Mapping[int, MSTCertificate]) -> bool:
        """Trace-only verification (used while T is still being improved)."""
        return self._verify_structure_at(net, node, labels,
                                         check_graph_minimality=False)

    def label_bits(self, net: Network, label: MSTCertificate) -> int:
        id_bits = bits_for_id(net.id_space)
        per_level = (id_bits                                 # fragment
                     + bits_for_counter(net.n_bound)          # dist
                     + bits_for_option(2 * id_bits
                                       + bits_for_weight(net.weight_space())))
        return (id_bits                                      # rid
                + bits_for_option(id_bits)                   # par
                + bits_for_counter(net.n_bound)               # d
                + len(label.levels) * per_level)


# ----------------------------------------------------------------------
# the potential's raw material (Section VI)
# ----------------------------------------------------------------------


def phi_values(net: Network, tree: RootedTree,
               trace: dict[int, list[BoruvkaLevel]] | None = None,
               ) -> tuple[int, dict[int, int]]:
    """``(k, phi_x for every x)``: phi_x is the largest ``i`` such that all
    of ``f_1(x)..f_i(x)`` are minimum-weight outgoing edges of their
    fragments *in G* (level k is vacuous: no outgoing edges)."""
    if trace is None:
        trace = boruvka_trace(net, tree)
    k = len(trace[net.min_id])
    phis: dict[int, int] = {}
    # precompute, per level, each fragment's minimum outgoing weight in G
    frag_min: list[dict[int, int]] = []
    for i in range(k):
        best: dict[int, int] = {}
        for e in net.edges:
            u, v = e
            fu, fv = trace[u][i].fragment, trace[v][i].fragment
            if fu == fv:
                continue
            w = net.weight_of(e)
            for f in (fu, fv):
                if f not in best or w < best[f]:
                    best[f] = w
        frag_min.append(best)
    for x in net.nodes:
        phi = k
        for i in range(k):
            lv = trace[x][i]
            if lv.out_edge is None:
                continue
            if lv.out_edge[2] != frag_min[i][lv.fragment]:
                phi = i  # levels are 1-based in the paper: f_{i+1} is wrong
                break
        phis[x] = phi
    return k, phis


def find_mst_violation(net: Network, tree: RootedTree,
                       trace: dict[int, list[BoruvkaLevel]] | None = None,
                       ) -> tuple[int, int] | None:
    """``(node u, level i)`` with ``phi_u = i < k``, or None if T is an MST."""
    k, phis = phi_values(net, tree, trace)
    violating = [(phis[x], x) for x in net.nodes if phis[x] < k]
    if not violating:
        return None
    phi, x = min(violating)
    return x, phi


def min_outgoing_graph_edge(net: Network, fragment_of: Mapping[int, int],
                            frag: int) -> tuple[int, int]:
    """The minimum-weight edge of G leaving fragment ``frag``."""
    best: tuple[int, tuple[int, int]] | None = None
    for e in net.edges:
        u, v = e
        if (fragment_of[u] == frag) == (fragment_of[v] == frag):
            continue
        w = net.weight_of(e)
        if best is None or w < best[0]:
            best = (w, e)
    if best is None:
        raise ValueError(f"fragment {frag} has no outgoing edge")
    return best[1]

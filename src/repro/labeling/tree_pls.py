"""The classic distance-based and size-based PLS for spanning trees.

Section II-C of the paper recalls the folklore *distance-based* scheme
(labels ``(ID, d)``: root identity and hop distance to the root) and
Section IV introduces its *size-based* sibling (labels ``(ID, s)``: root
identity and subtree size).  Both use O(log n)-bit labels and both are
complete proof-labeling schemes for the family ST of all spanning trees:

* distance: a parent's distance is one less than the child's, the root has
  distance 0 and carries its own identity — distances cannot increase
  around a cycle, and separate components disagree with the unique root;
* size: a node's size is one plus the sum of its children's sizes — sizes
  must strictly increase along a cycle, which is impossible.

These two schemes are the building blocks of the paper's malleable
redundant scheme (:mod:`repro.labeling.malleable`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro._bits import bits_for_counter, bits_for_id, bits_for_option
from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.pls import ProofLabelingScheme

__all__ = ["DistanceLabel", "SizeLabel", "DistancePLS", "SizePLS"]


@dataclass(frozen=True)
class DistanceLabel:
    """(ID, d) plus the parent variable the verifier reads alongside it."""

    rid: int            # claimed root identity
    par: int | None     # parent pointer (None at the root)
    d: int              # claimed hop distance to the root


@dataclass(frozen=True)
class SizeLabel:
    """(ID, s) plus the parent variable."""

    rid: int
    par: int | None
    s: int              # claimed size of the subtree rooted here


class DistancePLS(ProofLabelingScheme):
    """The distance-based scheme for the family of all spanning trees."""

    name = "distance-pls"

    def prove(self, net: Network, tree: RootedTree) -> dict[int, DistanceLabel]:
        return {
            v: DistanceLabel(rid=tree.root, par=tree.parent(v), d=tree.depth(v))
            for v in net.nodes
        }

    def verify_at(self, net: Network, node: int,
                  labels: Mapping[int, DistanceLabel]) -> bool:
        lab = labels[node]
        # bounded domain: a distance can never reach N
        if not 0 <= lab.d < net.n_bound:
            return False
        # agreement on the root identity with *all* graph neighbors
        for u in net.neighbors(node):
            if labels[u].rid != lab.rid:
                return False
        if lab.par is None:
            return lab.rid == node and lab.d == 0
        if lab.par not in net.neighbors(node):
            return False
        if node == lab.rid:
            return False  # the root's owner must have par = None
        return lab.d == labels[lab.par].d + 1

    def label_bits(self, net: Network, label: DistanceLabel) -> int:
        return (bits_for_id(net.id_space)
                + bits_for_option(bits_for_id(net.id_space))
                + bits_for_counter(net.n_bound))


class SizePLS(ProofLabelingScheme):
    """The size-based scheme for the family of all spanning trees."""

    name = "size-pls"

    def prove(self, net: Network, tree: RootedTree) -> dict[int, SizeLabel]:
        sizes = tree.subtree_sizes()
        return {
            v: SizeLabel(rid=tree.root, par=tree.parent(v), s=sizes[v])
            for v in net.nodes
        }

    def verify_at(self, net: Network, node: int,
                  labels: Mapping[int, SizeLabel]) -> bool:
        lab = labels[node]
        if not 1 <= lab.s <= net.n_bound:
            return False
        for u in net.neighbors(node):
            if labels[u].rid != lab.rid:
                return False
        if lab.par is not None and lab.par not in net.neighbors(node):
            return False
        if lab.par is None and lab.rid != node:
            return False
        if lab.par is not None and node == lab.rid:
            return False
        children = [u for u in net.neighbors(node) if labels[u].par == node]
        return lab.s == 1 + sum(labels[u].s for u in children)

    def label_bits(self, net: Network, label: SizeLabel) -> int:
        return (bits_for_id(net.id_space)
                + bits_for_option(bits_for_id(net.id_space))
                + bits_for_counter(net.n_bound))

"""A proof-labeling scheme for the NCA labeling (Lemma 5.1).

"It is probably the first occurrence of a proof-labeling scheme for an
informative-labeling scheme!" — the scheme certifies that the NCA labels
stored at the nodes are *the* labels the Alstrup et al. prover would have
assigned for the current tree, so that a silent algorithm can rely on them.

Label contents (all O(log n) bits):

* the spanning-tree certificate (root identity, parent pointer, subtree
  size — the size-based scheme of Section IV), which certifies both that
  the parent pointers form a spanning tree and that the sizes are exact;
* the heavy-child pointer ``hv``: certified locally against the children's
  certified sizes (maximum size, ties to the smallest identity);
* the structured NCA label: certified by *local derivation* — the root
  carries ``((root, 0))``; a heavy child extends its parent's last segment
  by one; a light child appends a fresh ``(self, 0)`` segment.  Since the
  derivation is deterministic and anchored at the root, any incorrect label
  breaks a check somewhere along its root path.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro._bits import bits_for_counter, bits_for_id, bits_for_option
from repro.core.trees import RootedTree
from repro.graphs.network import Network
from repro.labeling.nca import NCALabel, NCALabeling
from repro.labeling.pls import ProofLabelingScheme

__all__ = ["NCACertificate", "NCAPLS"]


@dataclass(frozen=True)
class NCACertificate:
    """Everything the Lemma 5.1 verifier reads at one node."""

    rid: int                 # root identity (spanning-tree certificate)
    par: int | None          # parent pointer
    s: int                   # subtree size (certified, certifies tree-ness)
    hv: int | None           # heavy child (None at leaves)
    lam: NCALabel            # the NCA label being certified
    lam_bits: int            # wire size of lam (Gilbert-Moore encoding)


class NCAPLS(ProofLabelingScheme):
    """The proof-labeling scheme for the NCA informative labeling."""

    name = "nca-pls"

    def prove(self, net: Network, tree: RootedTree) -> dict[int, NCACertificate]:
        scheme = NCALabeling(net, tree)
        return {
            v: NCACertificate(
                rid=tree.root,
                par=tree.parent(v),
                s=scheme.sizes[v],
                hv=scheme.heavy[v],
                lam=scheme.labels[v],
                lam_bits=scheme.encoded_bits(v),
            )
            for v in net.nodes
        }

    def verify_at(self, net: Network, node: int,
                  labels: Mapping[int, NCACertificate]) -> bool:
        lab = labels[node]
        # ---- spanning-tree certificate (size-based scheme) ----
        if not 1 <= lab.s <= net.n_bound:
            return False
        for u in net.neighbors(node):
            if labels[u].rid != lab.rid:
                return False
        if lab.par is None and lab.rid != node:
            return False
        if lab.par is not None and (lab.par not in net.neighbors(node)
                                    or lab.rid == node):
            return False
        children = [u for u in net.neighbors(node) if labels[u].par == node]
        if lab.s != 1 + sum(labels[c].s for c in children):
            return False
        # ---- heavy child ----
        if not children:
            if lab.hv is not None:
                return False
        else:
            expected = min(children, key=lambda c: (-labels[c].s, c))
            if lab.hv != expected:
                return False
        # ---- NCA label derivation ----
        if lab.par is None:
            return lab.lam == NCALabel(((node, 0),))
        plab = labels[lab.par]
        if plab.hv == node:
            apex, depth = plab.lam.segments[-1]
            expected_lam = NCALabel(plab.lam.segments[:-1] + ((apex, depth + 1),))
        else:
            expected_lam = NCALabel(plab.lam.segments + ((node, 0),))
        return lab.lam == expected_lam

    def label_bits(self, net: Network, label: NCACertificate) -> int:
        return (bits_for_id(net.id_space)                       # rid
                + bits_for_option(bits_for_id(net.id_space))    # par
                + bits_for_counter(net.n_bound)                 # s
                + bits_for_option(bits_for_id(net.id_space))    # hv
                + label.lam_bits)                               # lam (GM bits)

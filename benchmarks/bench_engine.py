"""EXP-ENGINE — throughput of the incremental enabled-set engine.

The throughput grid (SST under every daemon on rings, grids, and random
graphs) is declared in :func:`repro.experiments.campaigns.engine` and runs
through the campaign harness — optionally in parallel and against a
resumable store.  On top of the grid, this bench keeps the
apples-to-apples scan-discipline comparison: the incremental engine versus
the pre-PR stepping discipline (a full enabled-set rescan before every
``select``), emulated on the same engine so only the scan differs.

Run as a script for the full sizes, or with ``--smoke`` for the CI job:

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke]
    PYTHONPATH=src python benchmarks/bench_engine.py --store results/engine.jsonl --workers 4

or under pytest (smoke sizes):

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py
"""

import argparse
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table
from repro.core.sst import SpanningTreeProtocol
from repro.experiments import (
    ResultStore,
    render_experiment,
    run_campaign,
)
from repro.experiments.campaigns import engine as engine_campaign
from repro.graphs import random_connected_graph
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    CentralRandomScheduler,
    Scheduler,
    Simulator,
    random_configuration,
)


def run_exp_engine(n: int = 512, quiet: bool = False, store: ResultStore | None = None,
                   workers: int = 1):
    records = run_campaign(engine_campaign(n=n), store=store, workers=workers)
    if not quiet:
        print()
        print(render_experiment("EXP-ENGINE", records))
    return records


class _LegacyRescanScheduler(Scheduler):
    """Emulates the pre-PR engine's stepping discipline: a full O(n) scan
    of every node's (cached) proposal before each selection.  Only the scan
    is added — selection and execution stay identical — so timing the same
    run under this wrapper isolates the cost the incremental engine removed.
    """

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"legacy-rescan({inner.name})"
        self.sim: Simulator | None = None

    def select(self, enabled):
        sim = self.sim
        current = [v for v in sim.net.nodes if sim._propose(v) is not None]
        return self.inner.select(current)


def _timed_run(net, scheduler) -> tuple[int, int, float]:
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=7)
    sim = Simulator(net, proto, scheduler, config=cfg)
    t0 = time.perf_counter()
    result = sim.run(max_rounds=2_000_000)
    dt = time.perf_counter() - t0
    assert result.silent
    return result.moves, result.rounds, dt


#: moves/sec of the actual pre-PR engine (commit 91f0447) on this exact
#: workload — central-random seed 3, random graph n=512 seed 42, arbitrary
#: init seed 7, best of 3 — measured on the reference machine.  The emulated
#: rescan row below is a *conservative* stand-in (it keeps this PR's other
#: optimizations); the recorded number is the true before/after baseline.
RECORDED_PRE_PR_MOVES_PER_SEC = 10_397


def run_engine_comparison(n: int = 512, quiet: bool = False):
    """Incremental engine vs emulated pre-PR full-rescan stepping."""
    net = random_connected_graph(n, seed=42)

    moves, _, dt_inc = _timed_run(net, CentralRandomScheduler(seed=3))

    legacy = _LegacyRescanScheduler(CentralRandomScheduler(seed=3))
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=7)
    sim = Simulator(net, proto, legacy, config=cfg)
    legacy.sim = sim
    t0 = time.perf_counter()
    result = sim.run(max_rounds=2_000_000)
    dt_leg = time.perf_counter() - t0
    assert result.silent
    assert result.moves == moves  # identical execution, different discipline

    inc_rate, leg_rate = moves / dt_inc, moves / dt_leg
    if not quiet:
        comparison = [
            ("emulated full rescan per select", f"{leg_rate:,.0f}",
             f"{leg_rate / leg_rate:.2f}x"),
            ("incremental enabled set", f"{inc_rate:,.0f}",
             f"{inc_rate / leg_rate:.2f}x"),
        ]
        if n == 512:
            base = RECORDED_PRE_PR_MOVES_PER_SEC
            comparison.insert(0, ("pre-PR engine (recorded, 91f0447)",
                                  f"{base:,.0f}", f"{inc_rate / base:.2f}x vs incremental"))
        print()
        print(format_table(
            f"EXP-ENGINE: scan discipline, central-random, "
            f"random graph n={n} ({moves} moves)",
            ["engine", "moves/sec", "speedup"],
            comparison))
    return inc_rate, leg_rate


def check_exp_engine(records):
    """The claim: every (topology, daemon) run reaches silence."""
    assert len(records) == 3 * len(ALL_SCHEDULER_FACTORIES)
    assert all(r["metrics"]["silent"] for r in records)


def test_exp_engine(once):
    check_exp_engine(once(lambda: run_exp_engine(n=48)))


def test_engine_comparison(once):
    inc_rate, leg_rate = once(lambda: run_engine_comparison(n=96))
    assert inc_rate > 0 and leg_rate > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    parser.add_argument("-n", type=int, default=None,
                        help="override the node count")
    parser.add_argument("--store", default=None,
                        help="resumable JSONL store for the campaign grid")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel workers for the campaign grid")
    args = parser.parse_args()
    size = args.n or (48 if args.smoke else 512)
    check_exp_engine(run_exp_engine(
        n=size, store=ResultStore(args.store) if args.store else None,
        workers=args.workers))
    run_engine_comparison(n=size)

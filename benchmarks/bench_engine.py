"""EXP-ENGINE — throughput of the incremental enabled-set engine.

Measures moves/sec of the SST protocol under every daemon in
``ALL_SCHEDULER_FACTORIES`` on rings, grids, and random graphs, then an
apples-to-apples comparison for the central-random daemon on a 512-node
random graph: the incremental engine versus the pre-PR stepping discipline
(a full enabled-set rescan before every ``select``), emulated on the same
engine so only the scan discipline differs.

Run as a script for the full sizes, or with ``--smoke`` for the CI job:

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke]

or under pytest (smoke sizes):

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py
"""

import argparse
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table
from repro.core.sst import SpanningTreeProtocol
from repro.graphs import grid_graph, random_connected_graph, ring
from repro.runtime import (
    ALL_SCHEDULER_FACTORIES,
    CentralRandomScheduler,
    Scheduler,
    Simulator,
    random_configuration,
)


def _topologies(n: int):
    rows = max(2, int(n ** 0.5))
    cols = max(2, n // rows)
    return [
        ("ring", ring(n, seed=1)),
        ("grid", grid_graph(rows, cols, seed=1)),
        ("random", random_connected_graph(n, seed=42)),
    ]


def _timed_run(net, scheduler) -> tuple[int, int, float]:
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=7)
    sim = Simulator(net, proto, scheduler, config=cfg)
    t0 = time.perf_counter()
    result = sim.run(max_rounds=2_000_000)
    dt = time.perf_counter() - t0
    assert result.silent
    return result.moves, result.rounds, dt


class _LegacyRescanScheduler(Scheduler):
    """Emulates the pre-PR engine's stepping discipline: a full O(n) scan
    of every node's (cached) proposal before each selection.  Only the scan
    is added — selection and execution stay identical — so timing the same
    run under this wrapper isolates the cost the incremental engine removed.
    """

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"legacy-rescan({inner.name})"
        self.sim: Simulator | None = None

    def select(self, enabled):
        sim = self.sim
        current = [v for v in sim.net.nodes if sim._propose(v) is not None]
        return self.inner.select(current)


def run_exp_engine(n: int = 512, quiet: bool = False):
    rows = []
    for topo_name, net in _topologies(n):
        for sched_name in sorted(ALL_SCHEDULER_FACTORIES):
            sched = ALL_SCHEDULER_FACTORIES[sched_name](3)
            moves, rounds, dt = _timed_run(net, sched)
            rows.append((topo_name, net.n, sched_name, rounds, moves,
                         f"{moves / dt:,.0f}"))
    if not quiet:
        print()
        print(format_table(
            f"EXP-ENGINE: incremental engine throughput "
            f"(sst, arbitrary init, n≈{n})",
            ["topology", "n", "scheduler", "rounds", "moves", "moves/sec"],
            rows))
    return rows


#: moves/sec of the actual pre-PR engine (commit 91f0447) on this exact
#: workload — central-random seed 3, random graph n=512 seed 42, arbitrary
#: init seed 7, best of 3 — measured on the reference machine.  The emulated
#: rescan row below is a *conservative* stand-in (it keeps this PR's other
#: optimizations); the recorded number is the true before/after baseline.
RECORDED_PRE_PR_MOVES_PER_SEC = 10_397


def run_engine_comparison(n: int = 512, quiet: bool = False):
    """Incremental engine vs emulated pre-PR full-rescan stepping."""
    net = random_connected_graph(n, seed=42)

    moves, _, dt_inc = _timed_run(net, CentralRandomScheduler(seed=3))

    legacy = _LegacyRescanScheduler(CentralRandomScheduler(seed=3))
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=7)
    sim = Simulator(net, proto, legacy, config=cfg)
    legacy.sim = sim
    t0 = time.perf_counter()
    result = sim.run(max_rounds=2_000_000)
    dt_leg = time.perf_counter() - t0
    assert result.silent
    assert result.moves == moves  # identical execution, different discipline

    inc_rate, leg_rate = moves / dt_inc, moves / dt_leg
    if not quiet:
        comparison = [
            ("emulated full rescan per select", f"{leg_rate:,.0f}",
             f"{leg_rate / leg_rate:.2f}x"),
            ("incremental enabled set", f"{inc_rate:,.0f}",
             f"{inc_rate / leg_rate:.2f}x"),
        ]
        if n == 512:
            base = RECORDED_PRE_PR_MOVES_PER_SEC
            comparison.insert(0, ("pre-PR engine (recorded, 91f0447)",
                                  f"{base:,.0f}", f"{inc_rate / base:.2f}x vs incremental"))
        print()
        print(format_table(
            f"EXP-ENGINE: scan discipline, central-random, "
            f"random graph n={n} ({moves} moves)",
            ["engine", "moves/sec", "speedup"],
            comparison))
    return inc_rate, leg_rate


def test_exp_engine(once):
    rows = once(lambda: run_exp_engine(n=48))
    assert len(rows) == 3 * len(ALL_SCHEDULER_FACTORIES)


def test_engine_comparison(once):
    inc_rate, leg_rate = once(lambda: run_engine_comparison(n=96))
    assert inc_rate > 0 and leg_rate > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (seconds, not minutes)")
    parser.add_argument("-n", type=int, default=None,
                        help="override the node count")
    args = parser.parse_args()
    size = args.n or (48 if args.smoke else 512)
    run_exp_engine(n=size)
    run_engine_comparison(n=size)

"""EXP-SIL — silence and fault containment.

Claims regenerated: after stabilization the register contents never change
(zero moves over a long observation window), and after k transient faults
the system re-stabilizes, with recovery effort growing with k.
"""

from repro.analysis import format_table
from repro.core import dfs_tree
from repro.core.bfs import is_bfs_tree
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.core.tasks import guided_bfs_protocol
from repro.graphs import random_connected_graph
from repro.runtime import Simulator, corrupt_random_nodes

from conftest import seeded_config


def run_exp_sil():
    net = random_connected_graph(12, seed=11)
    proto = guided_bfs_protocol()
    sim = Simulator(net, proto,
                    config=seeded_config(net, proto, dfs_tree(net)))
    result = sim.run(max_rounds=4000 * net.n)
    assert result.silent
    moves_at_silence = sim.moves
    # observation window: a silent algorithm performs zero further moves
    assert sim.confirm_silent(extra_rounds=10)
    assert sim.moves == moves_at_silence

    rows = [("stabilization", "-", result.rounds, result.moves, "yes")]
    for k in (1, 2, 4, 8):
        corrupted, victims = corrupt_random_nodes(
            net, sim.spec, sim.config, k=k, seed=20 + k)
        rsim = Simulator(net, proto, config=corrupted)
        rresult = rsim.run(max_rounds=8000 * net.n)
        assert rresult.silent
        assert is_bfs_tree(net, tree_of_config(net, rsim.config))
        rows.append((f"recovery after {k} faults", k,
                     rresult.rounds, rresult.moves, "yes"))
    print()
    print(format_table(
        "EXP-SIL: silence and k-fault recovery (guided BFS, n=12)",
        ["phase", "faults", "rounds", "moves", "silent+legal"],
        rows))
    return rows


def test_exp_sil_silence_and_recovery(once):
    rows = once(run_exp_sil)
    assert len(rows) == 5

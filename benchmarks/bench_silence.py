"""EXP-SIL — silence and fault containment.

Claims regenerated: after stabilization the register contents never change
(the runner certifies each silent run over an observation window — the
``confirmed_silent`` metric), and after k transient faults the system
re-stabilizes to a legal BFS tree.

The fault ladder (k in 0, 1, 2, 4, 8 on the stabilized guided-BFS
instance) is declared in :func:`repro.experiments.campaigns.silence`; the
runner injects the faults into the *running* simulator through the dirty
set and records the recovery effort.
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import get_campaign, render_experiment, run_campaign


def run_exp_sil():
    records = run_campaign(get_campaign("silence"))
    print()
    print(render_experiment("EXP-SIL", records))
    return records


def check_exp_sil(records):
    """The claim: certified silence, and legal re-stabilization per k."""
    assert len(records) == 5
    for r in records:
        m = r["metrics"]
        # silence is certified, not assumed: zero moves over the window
        assert m["silent"] and m["confirmed_silent"] and m["legal"], r["spec"]
        if r["spec"]["faults"]:
            assert m["recovered_silent"] and m["recovered_legal"], r["spec"]
            assert len(m["fault_victims"]) == r["spec"]["faults"]


def test_exp_sil_silence_and_recovery(once):
    check_exp_sil(once(run_exp_sil))


if __name__ == "__main__":
    check_exp_sil(run_exp_sil())

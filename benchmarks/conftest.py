"""Shared helpers for the benchmark harness.

Every bench regenerates one experiment of EXPERIMENTS.md by running its
campaign (declared in :mod:`repro.experiments.campaigns`) and printing
the table/series the paper's corresponding claim is checked against.
Runs are deterministic, so each measurement executes once per benchmark
round.
"""

import pytest

from repro.experiments import tree_seeded_config


def seeded_config(net, proto, tree):
    """A configuration with the tree layer legal on ``tree`` and task-layer
    defaults (now canonical as
    :func:`repro.experiments.registry.tree_seeded_config`)."""
    return tree_seeded_config(net, proto, tree)


@pytest.fixture
def once(benchmark):
    """Run a deterministic measurement exactly once under the timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run

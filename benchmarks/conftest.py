"""Shared helpers for the benchmark harness.

Every bench regenerates one experiment of EXPERIMENTS.md and prints the
table/series the paper's corresponding claim is checked against.  Runs are
deterministic, so each measurement executes once per benchmark round.
"""

import pytest

from repro.core.swap import MalleableTreeProtocol


def seeded_config(net, proto, tree):
    """A configuration with the tree layer legal on ``tree`` and task-layer
    defaults (the standard starting point for improvement measurements)."""
    base = MalleableTreeProtocol().legal_configuration(net, tree)
    cfg = proto.initial_configuration(net)
    for v in net.nodes:
        cfg[v].update(base[v])
    return cfg


@pytest.fixture
def once(benchmark):
    """Run a deterministic measurement exactly once under the timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run

"""EXP-SCHED — the unfair scheduler (Section II-A).

Claims regenerated: self-stabilization holds under every daemon, from the
synchronous one to starvation adversaries; rounds vary by daemon but stay
polynomial.
"""

from repro.analysis import format_table
from repro.core.sst import SpanningTreeProtocol
from repro.core.swap import MalleableTreeProtocol
from repro.graphs import random_connected_graph
from repro.runtime import ALL_SCHEDULER_FACTORIES, Simulator, random_configuration


#: The deterministic max-id adversary can starve a node holding a stale
#: root claim and use it to re-infect its neighborhood forever — the
#: classical unfair-daemon election subtlety the paper sidesteps by
#: delegating construction to ref [25] (see EXPERIMENTS.md, EXP-SCHED).
#: Our substitute election layer is exercised under the other six daemons.
EXCLUDED = {("malleable-tree", "central-max-id")}


def run_exp_sched():
    net = random_connected_graph(12, seed=12)
    rows = []
    for proto_cls in (SpanningTreeProtocol, MalleableTreeProtocol):
        for name in sorted(ALL_SCHEDULER_FACTORIES):
            proto = proto_cls()
            if (proto.name, name) in EXCLUDED:
                rows.append((proto.name, name, "excluded", "see [25] note"))
                continue
            cfg = random_configuration(net, proto, seed=13)
            sched = ALL_SCHEDULER_FACTORIES[name](seed=14)
            sim = Simulator(net, proto, sched, config=cfg)
            result = sim.run(max_rounds=50_000)
            assert result.silent
            assert proto.is_legal(net, sim.config)
            rows.append((proto.name, name, result.rounds, result.moves))
    print()
    print(format_table(
        "EXP-SCHED: stabilization under every daemon (n=12, arbitrary init)",
        ["protocol", "scheduler", "rounds", "moves"],
        rows))
    return rows


def test_exp_sched_all_daemons(once):
    rows = once(run_exp_sched)
    assert len(rows) == 2 * len(ALL_SCHEDULER_FACTORIES)

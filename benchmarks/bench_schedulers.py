"""EXP-SCHED — the unfair scheduler (Section II-A).

Claims regenerated: self-stabilization holds under every daemon, from the
synchronous one to starvation adversaries; rounds vary by daemon but stay
polynomial.

The grid (protocol x daemon, arbitrary init) is declared in
:func:`repro.experiments.campaigns.schedulers`; this bench runs it through
the campaign harness and renders EXP-SCHED from the records.  The grid is
complete: the former ``(malleable-tree, central-max-id)`` skip — the
classical unfair-daemon election subtlety the paper sidesteps by
delegating construction to ref [25] — was retired when the election layer
gained a real adoption-soundness guard (see
:meth:`repro.core.swap.MalleableTreeProtocol._best_claim` and
EXPERIMENTS.md, EXP-SCHED).
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import get_campaign, render_experiment, run_campaign
from repro.experiments.campaigns import EXCLUDED_DAEMONS
from repro.runtime import ALL_SCHEDULER_FACTORIES


def run_exp_sched():
    records = run_campaign(get_campaign("schedulers"))
    print()
    print(render_experiment("EXP-SCHED", records))
    return records


def check_exp_sched(records):
    """The claim: stabilization to a legal tree under every daemon."""
    assert len(records) == 2 * len(ALL_SCHEDULER_FACTORIES)
    executed = [r for r in records if "skipped" not in r["metrics"]]
    assert len(executed) == len(records) - len(EXCLUDED_DAEMONS)
    for r in executed:
        assert r["metrics"]["silent"], r["spec"]
        assert r["metrics"]["legal"], r["spec"]


def test_exp_sched_all_daemons(once):
    check_exp_sched(once(run_exp_sched))


if __name__ == "__main__":
    check_exp_sched(run_exp_sched())

"""EXP-T1 — the MST headline (Corollary 6.1 + the Section I-C comparison).

Claims regenerated:

* the silent protocol stabilizes on the unique MST in poly(n) rounds;
* its certificates cost O(log^2 n) bits per node (optimal for silent MST
  verification, ref [50]) — measured, with the log-log fit exponent ~2;
* the compact baseline ([17]/[51] style) uses O(log n) bits but is never
  silent — who wins depends on the dimension, exactly as in the paper.
"""

import math

from repro.analysis import fit_log_exponent, format_table
from repro.baselines import kruskal_mst
from repro.baselines.compact_mst import CompactNonSilentMST
from repro.core import random_spanning_tree, tree_from_edges
from repro.core.swap import tree_of_config
from repro.core.tasks import guided_mst_protocol
from repro.graphs import random_connected_graph
from repro.labeling.mst_pls import MSTPLS
from repro.runtime import Simulator, SynchronousScheduler, max_register_bits

from conftest import seeded_config

SIZES = (8, 12, 16, 20)


def run_exp_t1():
    rows = []
    ns, cert_bits = [], []
    for n in SIZES:
        net = random_connected_graph(n, seed=n, weighted=True)
        proto = guided_mst_protocol()
        start = random_spanning_tree(net, seed=1, root=net.min_id)
        sim = Simulator(net, proto, SynchronousScheduler(),
                        config=seeded_config(net, proto, start))
        result = sim.run(max_rounds=20_000 * n)
        tree = tree_of_config(net, sim.config)
        assert result.silent and tree.edges() == kruskal_mst(net)
        # the Section VI certificate, measured
        pls = MSTPLS()
        labels = pls.prove(net, tree)
        bits = pls.max_label_bits(net, labels)
        # the non-silent compact baseline
        base = CompactNonSilentMST()
        bsim = Simulator(net, base)
        bresult = bsim.run(max_rounds=40,
                           stop_when=lambda nn, cfg: base.is_legal(nn, cfg))
        base_bits = max_register_bits(net, bsim.spec, bsim.config)
        rows.append((n, result.rounds, bits, "yes",
                     base_bits, "no (wave spins)"))
        ns.append(n)
        cert_bits.append(bits)
        assert not bsim.is_silent()  # the baseline never goes quiet
    exp = fit_log_exponent(ns, cert_bits)
    print()
    print(format_table(
        "EXP-T1: silent MST (ours) vs compact non-silent baseline",
        ["n", "rounds to silence", "cert bits/node (ours)", "silent",
         "bits/node (compact)", "silent (compact)"],
        rows))
    print(f"certificate-size log-log fit exponent: {exp:.2f} "
          f"(paper: Theta(log^2 n) -> ~2; small-n fits read low because "
          f"the O(log n) tree certificate is a large additive share)")
    assert 0.8 <= exp <= 3.2
    for n, bits in zip(ns, cert_bits):
        assert bits <= 6 * math.log2(n * n) ** 2
    return rows


def test_exp_t1_mst_headline(once):
    rows = once(run_exp_t1)
    assert len(rows) == len(SIZES)

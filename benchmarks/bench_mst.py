"""EXP-T1 — the MST headline (Corollary 6.1 + the Section I-C comparison).

Claims regenerated:

* the silent protocol stabilizes on the unique MST in poly(n) rounds
  (the ``legal`` metric is the protocol's tree == Kruskal check);
* its certificates cost O(log^2 n) bits per node (optimal for silent MST
  verification, ref [50]) — measured, with the log-log fit exponent ~2;
* the compact baseline ([17]/[51] style) uses O(log n) bits but is never
  silent — who wins depends on the dimension, exactly as in the paper.

The size ladder and both protocols are declared in
:func:`repro.experiments.campaigns.mst`.
"""

import math
import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import fit_log_exponent
from repro.experiments import get_campaign, render_experiment, run_campaign


def run_exp_t1():
    records = run_campaign(get_campaign("mst"))
    print()
    print(render_experiment("EXP-T1", records))
    return records


def check_exp_t1(records):
    """The claims: unique MST, O(log^2 n) certificates, baseline never silent."""
    guided = [r for r in records if r["spec"]["protocol"] == "guided-mst"]
    compact = [r for r in records if r["spec"]["protocol"] == "compact-mst"]
    assert len(guided) == len(compact) == 4
    ns, cert_bits = [], []
    for r in guided:
        m = r["metrics"]
        assert m["silent"] and m["legal"], r["spec"]  # legal == unique MST
        assert m["cert_bits"] <= 6 * math.log2(m["n"] * m["n"]) ** 2
        ns.append(m["n"])
        cert_bits.append(m["cert_bits"])
    exp = fit_log_exponent(ns, cert_bits)
    assert 0.8 <= exp <= 3.2
    for r in compact:
        m = r["metrics"]
        assert m["legal"] and not m["silent"], r["spec"]  # wave spins


def test_exp_t1_mst_headline(once):
    check_exp_t1(once(run_exp_t1))


if __name__ == "__main__":
    check_exp_t1(run_exp_t1())

"""EXP-ABL — ablation: why the *redundant* malleable labeling (Section IV).

The paper's design choice under test: a switch prunes sizes along the root
paths and distances in the moving subtree, so *both* component schemes are
needed — whichever entry a node loses, the other one still certifies it.

Ablation: project the label trace of a legal switch onto

* the distance-only scheme (drop s): alarms the moment sizes would have
  carried the proof through a pruned-distance region;
* the size-only scheme (drop d): alarms in the pruned-size region;
* the full malleable scheme: zero alarms (the paper's Lemma 4.1).

The table reports, per scheme, in how many intermediate configurations at
least one node rejects — making the necessity of redundancy measurable.
"""

from repro.analysis import format_table
from repro.core import bfs_tree
from repro.graphs import random_connected_graph
from repro.labeling.malleable import MalleablePLS
from repro.labeling.tree_pls import DistanceLabel, DistancePLS, SizeLabel, SizePLS


def run_exp_abl():
    net = random_connected_graph(14, seed=13)
    tree = bfs_tree(net)
    pls = MalleablePLS()
    # pick a switch that actually moves a subtree (so distances get pruned:
    # the ablation needs both pruning dimensions exercised)
    trace = None
    for e in tree.non_tree_edges():
        for f in tree.fundamental_cycle_edges(e):
            cand = pls.full_switch_trace(net, tree, e, f)
            if any(lab.d is None for cfg in cand.configs
                   for lab in cfg.values()):
                trace = cand
                break
        if trace:
            break
    assert trace is not None, "no subtree-moving switch in this instance"

    dist_pls, size_pls = DistancePLS(), SizePLS()
    alarms = {"malleable (d,s)": 0, "distance-only": 0, "size-only": 0}
    unverifiable = {"distance-only": 0, "size-only": 0}
    for cfg in trace.configs:
        assert pls.verify(net, cfg).accepted
        # distance-only projection: pruned d has no representation; count
        # configurations where some node's distance entry is simply gone
        if any(lab.d is None for lab in cfg.values()):
            unverifiable["distance-only"] += 1
        else:
            dl = {v: DistanceLabel(l.rid, l.par, l.d) for v, l in cfg.items()}
            if not dist_pls.verify(net, dl).accepted:
                alarms["distance-only"] += 1
        if any(lab.s is None for lab in cfg.values()):
            unverifiable["size-only"] += 1
        else:
            sl = {v: SizeLabel(l.rid, l.par, l.s) for v, l in cfg.items()}
            if not size_pls.verify(net, sl).accepted:
                alarms["size-only"] += 1
    rows = [
        ("malleable (d,s)", len(trace.configs), 0, 0),
        ("distance-only", len(trace.configs), alarms["distance-only"],
         unverifiable["distance-only"]),
        ("size-only", len(trace.configs), alarms["size-only"],
         unverifiable["size-only"]),
    ]
    print()
    print(format_table(
        "EXP-ABL: scheme ablation over one full T+e-f switch trace",
        ["scheme", "configs", "alarmed configs", "entry-missing configs"],
        rows))
    # the single-entry schemes cannot cover the whole switch; the
    # redundant scheme covers every configuration
    assert unverifiable["distance-only"] + alarms["distance-only"] > 0
    assert unverifiable["size-only"] + alarms["size-only"] > 0
    return rows


def test_exp_abl_redundancy_needed(once):
    rows = once(run_exp_abl)
    assert rows[0][2] == 0

"""EXP-ABL — ablation: why the *redundant* malleable labeling (Section IV).

The paper's design choice under test: a switch prunes sizes along the root
paths and distances in the moving subtree, so *both* component schemes are
needed — whichever entry a node loses, the other one still certifies it.

Ablation (the ``switch-ablation`` analysis workload,
:func:`repro.experiments.analyses.switch_ablation_detail`): project the
label trace of a legal switch onto

* the distance-only scheme (drop s): alarms or loses its entry the moment
  sizes would have carried the proof through a pruned-distance region;
* the size-only scheme (drop d): likewise in the pruned-size region;
* the full malleable scheme: zero alarms (the paper's Lemma 4.1).

The table reports, per scheme, in how many intermediate configurations the
proof fails to carry — making the necessity of redundancy measurable.
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (
    experiment_subset,
    get_campaign,
    render_experiment,
    run_campaign,
)


def run_exp_abl():
    records = run_campaign(
        experiment_subset(get_campaign("structure"), "EXP-ABL"))
    print()
    print(render_experiment("EXP-ABL", records))
    return records


def check_exp_abl(records):
    """The claim: only the redundant scheme covers the whole switch."""
    assert len(records) == 1
    m = records[0]["metrics"]
    # the redundant scheme covers every configuration ...
    assert m["malleable_alarms"] == 0
    # ... while each single-entry scheme fails somewhere along the switch
    assert m["distance_alarms"] + m["distance_missing"] > 0
    assert m["size_alarms"] + m["size_missing"] > 0


def test_exp_abl_redundancy_needed(once):
    check_exp_abl(once(run_exp_abl))


if __name__ == "__main__":
    check_exp_abl(run_exp_abl())

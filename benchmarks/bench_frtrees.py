"""EXP-P81 — context for Proposition 8.1: why FR-trees, not near-MDST.

Claims regenerated (the ``fr-subclass`` analysis workload,
:func:`repro.experiments.analyses.fr_subclass_detail`): (a) FR-trees are a
*strict* subclass of the degree-(OPT+1) spanning trees (we exhibit
near-optimal trees the FR verifier rejects — certifying plain
near-optimality is the NP=co-NP obstruction); (b) every FR-tree found is
within +1 of the exact optimum, i.e. the O(log n)-bit FR certificate
really does certify near-optimality.
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (
    experiment_subset,
    get_campaign,
    render_experiment,
    run_campaign,
)


def run_exp_p81():
    records = run_campaign(
        experiment_subset(get_campaign("structure"), "EXP-P81"))
    print()
    print(render_experiment("EXP-P81", records))
    return records


def check_exp_p81(records):
    """The claims: strict subclass, and FR certifies the degree bound."""
    assert len(records) == 1
    m = records[0]["metrics"]
    assert m["near_opt_not_fr"] > 0           # strict subclass
    assert m["fr_within_one"] == m["fr_total"]  # FR certifies the bound


def test_exp_p81_fr_subclass(once):
    check_exp_p81(once(run_exp_p81))


if __name__ == "__main__":
    check_exp_p81(run_exp_p81())

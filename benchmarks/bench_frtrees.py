"""EXP-P81 — context for Proposition 8.1: why FR-trees, not near-MDST.

Claims regenerated: (a) FR-trees are a *strict* subclass of the
degree-(OPT+1) spanning trees (we exhibit near-optimal trees the FR
verifier rejects — certifying plain near-optimality is the NP=co-NP
obstruction); (b) every FR-tree found is within +1 of the exact optimum,
i.e. the O(log n)-bit FR certificate really does certify near-optimality.
"""

from repro.analysis import format_table
from repro.baselines import exact_minimum_degree
from repro.core import random_spanning_tree
from repro.core.fr import fuerer_raghavachari, is_fr_tree
from repro.graphs import random_connected_graph


def run_exp_p81():
    near_opt = 0
    near_opt_not_fr = 0
    fr_within_one = 0
    fr_total = 0
    rows = []
    for seed in range(25):
        net = random_connected_graph(8, extra_edges=6, seed=seed)
        opt = exact_minimum_degree(net)
        for tseed in range(4):
            t = random_spanning_tree(net, seed=tseed)
            fr = is_fr_tree(net, t)
            if t.max_degree() <= opt + 1:
                near_opt += 1
                if not fr:
                    near_opt_not_fr += 1
            if fr:
                fr_total += 1
                if t.max_degree() <= opt + 1:
                    fr_within_one += 1
        run = fuerer_raghavachari(net)
        assert run.degree <= opt + 1
    rows.append(("random trees with deg <= OPT+1", near_opt))
    rows.append(("... of which NOT FR-trees", near_opt_not_fr))
    rows.append(("random trees that are FR-trees", fr_total))
    rows.append(("... of which within OPT+1", fr_within_one))
    print()
    print(format_table(
        "EXP-P81: FR-trees vs near-MDST (100 random trees on 25 graphs)",
        ["population", "count"],
        rows))
    assert near_opt_not_fr > 0          # strict subclass
    assert fr_within_one == fr_total     # FR certifies the degree bound
    return rows


def test_exp_p81_fr_subclass(once):
    rows = once(run_exp_p81)
    assert len(rows) == 4

"""EXP-T3 — Theorem 3.1 through the Section III BFS example.

Claims regenerated: the PLS-guided BFS stabilizes in poly(n) rounds with
O(log n)-bit registers; the classic ad hoc baseline converges too (faster,
as the paper concedes — the framework's point is generality, not beating
specialized constructions).
"""

from repro.analysis import format_table, growth_ratios
from repro.baselines.dim_bfs import AdHocBFSProtocol
from repro.core import dfs_tree
from repro.core.bfs import BFSPotential, is_bfs_tree
from repro.core.swap import tree_of_config
from repro.core.tasks import guided_bfs_protocol
from repro.graphs import grid_graph, lollipop_graph, ring
from repro.runtime import Simulator, SynchronousScheduler, max_register_bits

from conftest import seeded_config

CASES = [
    ("ring-8", lambda: ring(8, seed=3)),
    ("ring-16", lambda: ring(16, seed=3)),
    ("grid-3x4", lambda: grid_graph(3, 4, seed=4)),
    ("lollipop-4+6", lambda: lollipop_graph(4, 6, seed=5)),
]


def run_exp_t3():
    rows = []
    guided_rounds = []
    for name, make in CASES:
        net = make()
        start = dfs_tree(net)
        phi0 = BFSPotential().value(net, start)
        proto = guided_bfs_protocol()
        sim = Simulator(net, proto, SynchronousScheduler(),
                        config=seeded_config(net, proto, start))
        result = sim.run(max_rounds=4000 * net.n)
        tree = tree_of_config(net, sim.config)
        assert result.silent and is_bfs_tree(net, tree)
        bits = max_register_bits(net, sim.spec, sim.config)
        base = AdHocBFSProtocol()
        bsim = Simulator(net, base, SynchronousScheduler())
        bresult = bsim.run(max_rounds=10 * net.n)
        rows.append((name, net.n, phi0, result.rounds, bits,
                     bresult.rounds))
        guided_rounds.append(result.rounds)
    print()
    print(format_table(
        "EXP-T3: PLS-guided BFS (Thm 3.1) vs ad hoc baseline",
        ["graph", "n", "phi(start)", "guided rounds", "bits/node",
         "ad hoc rounds"],
        rows))
    print(f"guided-round growth ratios: "
          f"{', '.join(f'{x:.2f}' for x in growth_ratios(guided_rounds))} "
          f"(bounded => polynomial)")
    return rows


def test_exp_t3_guided_bfs(once):
    rows = once(run_exp_t3)
    assert len(rows) == len(CASES)

"""EXP-T3 — Theorem 3.1 through the Section III BFS example.

Claims regenerated: the PLS-guided BFS stabilizes in poly(n) rounds with
O(log n)-bit registers; the classic ad hoc baseline converges too (faster,
as the paper concedes — the framework's point is generality, not beating
specialized constructions).

Both sides of the comparison (guided BFS from a seeded DFS tree, ad hoc
baseline from defaults) are declared in
:func:`repro.experiments.campaigns.bfs`; the report joins them per graph.
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import get_campaign, render_experiment, run_campaign


def run_exp_t3():
    records = run_campaign(get_campaign("bfs"))
    print()
    print(render_experiment("EXP-T3", records))
    return records


def check_exp_t3(records):
    """The claim: guided BFS reaches a silent legal BFS tree everywhere."""
    guided = [r for r in records if r["spec"]["protocol"] == "guided-bfs"]
    baseline = [r for r in records if r["spec"]["protocol"] == "adhoc-bfs"]
    assert len(guided) == len(baseline) == 4
    for r in guided:
        # legal == the stabilized tree is a BFS tree (protocol predicate)
        assert r["metrics"]["silent"] and r["metrics"]["legal"], r["spec"]
        assert r["metrics"]["phi_start"] >= 0
    for r in baseline:
        assert r["metrics"]["silent"], r["spec"]


def test_exp_t3_guided_bfs(once):
    check_exp_t3(once(run_exp_t3))


if __name__ == "__main__":
    check_exp_t3(run_exp_t3())

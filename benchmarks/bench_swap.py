"""EXP-L41 — Lemma 4.1 and Fig. 1: the malleable scheme in motion.

Regenerates Fig. 1(b) as a printed label trace of one local switch (pruned
entries shown as '_'), and measures the distributed protocol: rounds per
switch are O(n), the Lemma 4.1 verifier never rejects during a legal
switch, and every intermediate parent map is a spanning tree.

The distributed measurement is the ``local-switch`` analysis workload
(declared in :func:`repro.experiments.campaigns.structure`); the Fig. 1(b)
trace stays a local presentation function — it is a picture, not a
measurement.
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table
from repro.core import bfs_tree
from repro.experiments import (
    experiment_subset,
    get_campaign,
    render_experiment,
    run_campaign,
)
from repro.graphs import ring
from repro.labeling.malleable import MalleablePLS


def run_fig1_trace():
    """The sequential Fig. 1(b) trace on a small ring (printed)."""
    net = ring(6, scramble_ids=False)
    tree = bfs_tree(net, root=1)
    pls = MalleablePLS()
    labels = pls.prove(net, tree)
    v, w2 = None, None
    for u in net.nodes:
        if tree.parent(u) is None:
            continue
        sub = tree.subtree_nodes(u)
        for z in net.neighbors(u):
            if z != tree.parent(u) and z not in sub:
                v, w2 = u, z
                break
        if v:
            break
    trace = pls.local_switch_trace(net, tree, labels, v, w2)
    rows = []
    for i, cfg in enumerate(trace.configs):
        cells = []
        for u in sorted(net.nodes):
            lab = cfg[u]
            d = "_" if lab.d is None else lab.d
            s = "_" if lab.s is None else lab.s
            cells.append(f"({d},{s})")
        accepted = pls.verify(net, cfg).accepted
        rows.append((i, *cells, "yes" if accepted else "NO"))
        assert accepted
    print()
    print(format_table(
        f"EXP-L41 / Fig. 1(b): local switch p({v}): "
        f"{tree.parent(v)} -> {w2} on C_6 (labels (d,s), _ = pruned)",
        ["step", *[f"node {u}" for u in sorted(net.nodes)], "verifier"],
        rows))
    return len(trace.configs)


def run_distributed_rounds():
    records = run_campaign(
        experiment_subset(get_campaign("structure"), "EXP-L41"))
    print()
    print(render_experiment("EXP-L41", records))
    return records


def check_distributed_switch(records):
    """The claim: a legal switch never alarms, never breaks the tree."""
    assert len(records) == 3
    for r in records:
        assert r["metrics"]["alarms"] == 0, r["spec"]
        assert r["metrics"]["loop_violations"] == 0, r["spec"]


def test_exp_l41_fig1_trace(once):
    steps = once(run_fig1_trace)
    assert steps > 3


def test_exp_l41_distributed_switch(once):
    check_distributed_switch(once(run_distributed_rounds))


if __name__ == "__main__":
    assert run_fig1_trace() > 3
    check_distributed_switch(run_distributed_rounds())

"""EXP-L41 — Lemma 4.1 and Fig. 1: the malleable scheme in motion.

Regenerates Fig. 1(b) as a printed label trace of one local switch (pruned
entries shown as '_'), and measures the distributed protocol: rounds per
switch are O(n), the Lemma 4.1 verifier never rejects during a legal
switch, and every intermediate parent map is a spanning tree.
"""

from repro.analysis import format_table, growth_ratios
from repro.core import bfs_tree
from repro.core.swap import (
    MalleableTreeProtocol,
    malleable_labels_of_config,
    tree_of_config,
)
from repro.graphs import ring
from repro.labeling.malleable import MalleablePLS
from repro.runtime import Simulator, SynchronousScheduler


def run_fig1_trace():
    """The sequential Fig. 1(b) trace on a small ring (printed)."""
    net = ring(6, scramble_ids=False)
    tree = bfs_tree(net, root=1)
    pls = MalleablePLS()
    labels = pls.prove(net, tree)
    v, w2 = None, None
    for u in net.nodes:
        if tree.parent(u) is None:
            continue
        sub = tree.subtree_nodes(u)
        for z in net.neighbors(u):
            if z != tree.parent(u) and z not in sub:
                v, w2 = u, z
                break
        if v:
            break
    trace = pls.local_switch_trace(net, tree, labels, v, w2)
    rows = []
    for i, cfg in enumerate(trace.configs):
        cells = []
        for u in sorted(net.nodes):
            lab = cfg[u]
            d = "_" if lab.d is None else lab.d
            s = "_" if lab.s is None else lab.s
            cells.append(f"({d},{s})")
        accepted = pls.verify(net, cfg).accepted
        rows.append((i, *cells, "yes" if accepted else "NO"))
        assert accepted
    print()
    print(format_table(
        f"EXP-L41 / Fig. 1(b): local switch p({v}): "
        f"{tree.parent(v)} -> {w2} on C_6 (labels (d,s), _ = pruned)",
        ["step", *[f"node {u}" for u in sorted(net.nodes)], "verifier"],
        rows))
    return len(trace.configs)


def run_distributed_rounds():
    rows = []
    rounds_series = []
    for n in (8, 16, 32):
        net = ring(n, seed=6, scramble_ids=False)
        proto = MalleableTreeProtocol()
        tree = bfs_tree(net)
        pick = None
        for u in net.nodes:
            if tree.parent(u) is None:
                continue
            sub = tree.subtree_nodes(u)
            for z in net.neighbors(u):
                if z != tree.parent(u) and z not in sub:
                    pick = (u, z)
                    break
            if pick:
                break
        v, w2 = pick
        pls = MalleablePLS()
        alarms = 0

        def inv(nn, cfg):
            nonlocal alarms
            try:
                tree_of_config(nn, cfg)
            except ValueError:
                return False
            if not pls.verify(nn, malleable_labels_of_config(nn, cfg)).accepted:
                alarms += 1
            return True

        sim = Simulator(net, proto, SynchronousScheduler(),
                        config=proto.legal_configuration(net, tree),
                        invariant=inv)
        sim.overwrite(v, {"swt": w2})
        result = sim.run(max_rounds=60 * n)
        assert result.silent
        assert result.invariant_violations == 0
        rows.append((n, result.rounds, alarms, 0))
        rounds_series.append(result.rounds)
    print()
    print(format_table(
        "EXP-L41: distributed local switch (Section IV protocol)",
        ["n", "rounds per switch", "verifier alarms", "loop violations"],
        rows))
    print(f"round growth ratios for doubled n: "
          f"{', '.join(f'{x:.2f}' for x in growth_ratios(rounds_series))} "
          f"(~<= 2 => O(n))")
    return rows


def test_exp_l41_fig1_trace(once):
    steps = once(run_fig1_trace)
    assert steps > 3


def test_exp_l41_distributed_switch(once):
    rows = once(run_distributed_rounds)
    assert all(r[2] == 0 for r in rows)

"""EXP-F2 — Fig. 2: the Boruvka fragment hierarchy on a concrete tree.

Prints the per-level fragment table (fragment owner and selected outgoing
edge per node), checks k <= ceil(log2 n) + 1, and regenerates the
violation-localisation behaviour: on a non-MST tree some node sees a
lighter outgoing graph edge; the red-rule swap strictly increases the
overlap with the MST.
"""

import math

from repro.analysis import format_table
from repro.baselines import kruskal_mst
from repro.core import random_spanning_tree
from repro.core.mst import MSTPotential
from repro.graphs import random_connected_graph
from repro.labeling.mst_pls import boruvka_trace, find_mst_violation, phi_values


def run_exp_f2():
    net = random_connected_graph(12, seed=9, weighted=True)
    tree = random_spanning_tree(net, seed=10, root=net.min_id)
    trace = boruvka_trace(net, tree)
    k = len(trace[net.min_id])
    assert k <= math.ceil(math.log2(net.n)) + 1
    rows = []
    for v in sorted(net.nodes):
        cells = []
        for lv in trace[v]:
            oe = "-" if lv.out_edge is None else f"{lv.out_edge[0]}-{lv.out_edge[1]}(w{lv.out_edge[2]})"
            cells.append(f"F={lv.fragment} f={oe}")
        rows.append((v, *cells))
    print()
    print(format_table(
        f"EXP-F2 / Fig. 2: Boruvka trace of a random tree "
        f"(n={net.n}, k={k} levels)",
        ["node", *[f"level {i + 1}" for i in range(k)]],
        rows))
    kk, phis = phi_values(net, tree)
    phi = kk * net.n - sum(phis.values())
    print(f"phi(T) = {phi} (0 iff MST); "
          f"violating nodes: {[v for v in net.nodes if phis[v] < kk]}")

    # drive Algorithm 2 and report the improvement column
    pot = MSTPotential()
    mst = kruskal_mst(net)
    cur = tree
    imp_rows = []
    step = 0
    while True:
        pair = pot.find_improvement(net, cur)
        if pair is None:
            break
        e, f = pair
        before = len(cur.edges() & mst)
        cur = cur.swap(e, f)
        after = len(cur.edges() & mst)
        step += 1
        imp_rows.append((step, f"{e}", f"{f}", before, after,
                         pot.value(net, cur)))
        assert after == before + 1
    print()
    print(format_table(
        "EXP-F2: red-rule improvements (Algorithm 2) to the MST",
        ["step", "e in", "f out", "|T&MST| before", "after", "phi"],
        imp_rows))
    assert cur.edges() == mst
    return len(imp_rows)


def test_exp_f2_fragments(once):
    swaps = once(run_exp_f2)
    assert swaps >= 1

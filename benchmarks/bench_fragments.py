"""EXP-F2 — Fig. 2: the Boruvka fragment hierarchy on a concrete tree.

The ``boruvka-fragments`` analysis workload
(:func:`repro.experiments.analyses.boruvka_fragments_detail`) checks
k <= ceil(log2 n) + 1 levels and regenerates the violation-localisation
behaviour: on a non-MST tree some node sees a lighter outgoing graph edge;
each red-rule swap strictly increases the overlap with the MST until the
MST is reached.  Script mode additionally prints the per-node fragment
table and the improvement column of Algorithm 2.
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import format_table
from repro.experiments import (
    experiment_subset,
    get_campaign,
    render_experiment,
    run_campaign,
)


def run_exp_f2():
    records = run_campaign(
        experiment_subset(get_campaign("structure"), "EXP-F2"))
    print()
    print(render_experiment("EXP-F2", records))
    return records


def print_detail():
    """The full Fig. 2 presentation: per-node trace + improvement column."""
    from repro.experiments.analyses import boruvka_fragments_detail
    from repro.experiments.spec import spawn_rng

    metrics, detail = boruvka_fragments_detail(
        spawn_rng(0, "detail", "analysis"),
        {"n": 12, "seed": 9, "tree_seed": 10})
    net, trace = detail["net"], detail["boruvka_trace"]
    k = metrics["levels"]
    rows = []
    for v in sorted(net.nodes):
        cells = []
        for lv in trace[v]:
            oe = ("-" if lv.out_edge is None
                  else f"{lv.out_edge[0]}-{lv.out_edge[1]}(w{lv.out_edge[2]})")
            cells.append(f"F={lv.fragment} f={oe}")
        rows.append((v, *cells))
    print()
    print(format_table(
        f"EXP-F2 / Fig. 2: Boruvka trace of a random tree "
        f"(n={net.n}, k={k} levels)",
        ["node", *[f"level {i + 1}" for i in range(k)]],
        rows))
    imp_rows = [
        (i + 1, f"{e}", f"{f}", before, after, phi)
        for i, (e, f, before, after, phi) in enumerate(detail["improvements"])
    ]
    print()
    print(format_table(
        "EXP-F2: red-rule improvements (Algorithm 2) to the MST",
        ["step", "e in", "f out", "|T&MST| before", "after", "phi"],
        imp_rows))


def check_exp_f2(records):
    """The claim: bounded levels, and red-rule swaps that reach the MST
    (monotone-overlap and MST-arrival asserts live in the workload)."""
    assert len(records) == 1
    m = records[0]["metrics"]
    assert m["red_rule_swaps"] >= 1
    assert m["levels"] >= 1


def test_exp_f2_fragments(once):
    check_exp_f2(once(run_exp_f2))


if __name__ == "__main__":
    check_exp_f2(run_exp_f2())
    print_detail()

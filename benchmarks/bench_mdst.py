"""EXP-T2 — the MDST headline (Corollary 8.1 + the comparison vs [16]).

Claims regenerated:

* the silent protocol stabilizes on an FR-tree of degree <= OPT + 1
  (OPT from the exact branch-and-bound oracle, recorded per run);
* its certificates (Lemma 8.1) cost O(log n) bits per node, versus
  Omega(n log n) for the non-silent baseline in the style of [16] — an
  exponential gap that widens with n, exactly the paper's comparison.

The size ladder and both protocols are declared in
:func:`repro.experiments.campaigns.mdst`.
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import get_campaign, render_experiment, run_campaign


def run_exp_t2():
    records = run_campaign(get_campaign("mdst"))
    print()
    print(render_experiment("EXP-T2", records))
    return records


def check_exp_t2(records):
    """The claims: FR-tree within OPT+1, log n vs n log n memory gap."""
    guided = [r for r in records if r["spec"]["protocol"] == "guided-mdst"]
    baseline = [r for r in records if r["spec"]["protocol"] == "bgr-mdst"]
    assert len(guided) == len(baseline) == 3
    ratios = []
    for g, b in zip(guided, baseline):
        gm, bm = g["metrics"], b["metrics"]
        assert gm["silent"] and gm["is_fr"], g["spec"]
        assert gm["tree_degree"] <= gm["opt_degree"] + 1
        assert not bm["silent"], b["spec"]  # gossip spins
        ratios.append(bm["max_register_bits"] / gm["cert_bits"])
    # the gap grows with n (exponential improvement in the paper's
    # phrasing: log n vs n log n)
    assert ratios[-1] > ratios[0]


def test_exp_t2_mdst_headline(once):
    check_exp_t2(once(run_exp_t2))


if __name__ == "__main__":
    check_exp_t2(run_exp_t2())

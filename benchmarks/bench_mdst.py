"""EXP-T2 — the MDST headline (Corollary 8.1 + the comparison vs [16]).

Claims regenerated:

* the silent protocol stabilizes on an FR-tree of degree <= OPT + 1
  (OPT from the exact branch-and-bound oracle);
* its certificates (Lemma 8.1) cost O(log n) bits per node, versus
  Omega(n log n) for the non-silent baseline in the style of [16] — an
  exponential gap that widens with n, exactly the paper's comparison.
"""

from repro.analysis import format_table
from repro.baselines import exact_minimum_degree
from repro.baselines.bgr_mdst import BigMemoryMDST
from repro.core import random_spanning_tree
from repro.core.fr import fr_marking
from repro.core.swap import tree_of_config
from repro.core.tasks import guided_mdst_protocol
from repro.graphs import random_connected_graph
from repro.labeling.fr_pls import FRTreePLS
from repro.runtime import Simulator, SynchronousScheduler, max_register_bits

from conftest import seeded_config

SIZES = (8, 10, 12)


def run_exp_t2():
    rows = []
    for n in SIZES:
        net = random_connected_graph(n, extra_edges=2 * n, seed=n)
        proto = guided_mdst_protocol()
        start = random_spanning_tree(net, seed=2, root=net.min_id)
        sim = Simulator(net, proto, SynchronousScheduler(),
                        config=seeded_config(net, proto, start))
        result = sim.run(max_rounds=20_000 * n)
        tree = tree_of_config(net, sim.config)
        marking = fr_marking(net, tree)
        assert result.silent and marking.is_fr
        opt = exact_minimum_degree(net)
        assert tree.max_degree() <= opt + 1
        pls = FRTreePLS()
        bits = pls.max_label_bits(net, pls.prove(net, tree, marking))
        # the Omega(n log n) non-silent baseline
        base = BigMemoryMDST()
        bsim = Simulator(net, base)
        bsim.run(max_rounds=30,
                 stop_when=lambda nn, cfg: base.is_legal(nn, cfg))
        base_bits = max_register_bits(net, bsim.spec, bsim.config)
        assert not bsim.is_silent()
        rows.append((n, tree.max_degree(), opt, result.rounds, bits, "yes",
                     base_bits, "no (gossip spins)"))
    print()
    print(format_table(
        "EXP-T2: silent near-MDST (ours) vs Omega(n log n) baseline [16]",
        ["n", "deg(T)", "OPT", "rounds", "cert bits/node (ours)", "silent",
         "bits/node ([16]-style)", "silent ([16])"],
        rows))
    # the gap grows linearly with n (exponential improvement in the
    # paper's phrasing: log n vs n log n)
    ratios = [r[6] / r[4] for r in rows]
    print(f"memory ratio baseline/ours per n: "
          f"{', '.join(f'{x:.1f}' for x in ratios)}")
    assert ratios[-1] > ratios[0]
    return rows


def test_exp_t2_mdst_headline(once):
    rows = once(run_exp_t2)
    assert all(r[1] <= r[2] + 1 for r in rows)

"""EXP-L51 — Lemma 5.1: the NCA labeling and its proof-labeling scheme.

Regenerates: O(log n)-bit labels (Gilbert–Moore wire format) across
adversarial tree shapes, correctness of nca() from labels alone (checked
inside the ``nca-label-sizes`` analysis workload), the certificate size of
the PLS, and the O(n)-round distributed construction.

Both halves are declared in :func:`repro.experiments.campaigns.nca`: a
grid of ``nca-label-sizes`` analysis specs (shape x size ladder) and
``nca-build`` protocol runs (tree layer + NCA layer to silence).
"""

import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import fit_log_exponent
from repro.experiments import get_campaign, render_experiment, run_campaign

SHAPES = ("path", "star", "caterpillar", "random")
SIZES = (16, 64, 256)


def run_exp_l51():
    records = run_campaign(get_campaign("nca"))
    print()
    print(render_experiment("EXP-L51", records))
    return records


def _size_records(records):
    return [r for r in records
            if r["spec"]["analysis"] == "nca-label-sizes"]


def check_label_sizes(records):
    """The claim: O(log n)-bit labels on every adversarial shape."""
    sizes = _size_records(records)
    assert len(sizes) == len(SHAPES) * len(SIZES)
    for shape in SHAPES:
        series = [(r["metrics"]["n"], r["metrics"]["label_bits"])
                  for r in sizes if r["metrics"]["shape"] == shape]
        series.sort()
        exp = fit_log_exponent([n for n, _ in series],
                               [b for _, b in series])
        assert exp <= 2.2, (shape, exp)  # O(log n) labels


def check_distributed_construction(records):
    """The claim: correct labels built distributedly in O(n) rounds."""
    builds = [r for r in records if r["spec"]["protocol"] == "nca-build"]
    assert len(builds) == 3
    for r in builds:
        assert r["metrics"]["silent"] and r["metrics"]["labels_ok"], r["spec"]
    assert builds[-1]["metrics"]["rounds"] <= 6 * 32  # O(n) rounds


def test_exp_l51_label_sizes(once):
    check_label_sizes(once(run_exp_l51))


def test_exp_l51_distributed_construction(once):
    check_distributed_construction(once(run_exp_l51))


if __name__ == "__main__":
    records = run_exp_l51()
    check_label_sizes(records)
    check_distributed_construction(records)

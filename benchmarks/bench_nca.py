"""EXP-L51 — Lemma 5.1: the NCA labeling and its proof-labeling scheme.

Regenerates: O(log n)-bit labels (Gilbert–Moore wire format) across
adversarial tree shapes, correctness of nca() from labels alone, the
certificate size of the PLS, and the O(n)-round distributed construction.
"""

import math

from repro.analysis import fit_log_exponent, format_table
from repro.core import bfs_tree
from repro.core.tasks import NCALabelLayer
from repro.core.swap import MalleableTreeProtocol
from repro.graphs import caterpillar_graph, path_graph, random_tree_graph, star_graph
from repro.labeling.nca import NCALabeling
from repro.labeling.nca_pls import NCAPLS
from repro.runtime import ComposedProtocol, Simulator, SynchronousScheduler

SHAPES = [
    ("path", lambda n, s: path_graph(n, seed=s)),
    ("star", lambda n, s: star_graph(n, seed=s)),
    ("caterpillar", lambda n, s: caterpillar_graph(max(2, n // 3), 2, seed=s)),
    ("random", lambda n, s: random_tree_graph(n, seed=s)),
]

SIZES = (16, 64, 256)


def run_exp_l51():
    rows = []
    for shape, make in SHAPES:
        ns, bits_series = [], []
        for n in SIZES:
            net = make(n, 7)
            tree = bfs_tree(net)
            scheme = NCALabeling(net, tree)
            # correctness on a sample of pairs
            nodes = list(net.nodes)
            for i in range(0, len(nodes), max(1, len(nodes) // 8)):
                for j in range(0, len(nodes), max(1, len(nodes) // 8)):
                    assert scheme.nca(nodes[i], nodes[j]) == tree.nca(nodes[i], nodes[j])
            pls_bits = NCAPLS().max_label_bits(net, NCAPLS().prove(net, tree))
            ns.append(net.n)
            bits_series.append(scheme.max_encoded_bits())
            rows.append((shape, net.n, scheme.max_encoded_bits(), pls_bits,
                         f"{scheme.max_encoded_bits() / math.log2(net.n):.1f}"))
        exp = fit_log_exponent(ns, bits_series)
        assert exp <= 2.2, (shape, exp)
    print()
    print(format_table(
        "EXP-L51: NCA labels (ref [6]) + PLS certificates (Lemma 5.1)",
        ["shape", "n", "label bits (GM wire)", "PLS cert bits",
         "label bits / log2 n"],
        rows))
    return rows


def run_distributed_build():
    rows = []
    for n in (8, 16, 32):
        net = random_tree_graph(n, seed=8)
        tree = bfs_tree(net)
        proto = ComposedProtocol([MalleableTreeProtocol(), NCALabelLayer()],
                                 name="tree+nca")
        base = MalleableTreeProtocol().legal_configuration(net, tree)
        cfg = proto.initial_configuration(net)
        for v in net.nodes:
            cfg[v].update(base[v])
        sim = Simulator(net, proto, SynchronousScheduler(), config=cfg)
        result = sim.run(max_rounds=20 * n)
        assert result.silent
        assert NCALabelLayer.labels_ok(net, sim.config, tree)
        rows.append((n, result.rounds))
    print()
    print(format_table(
        "EXP-L51: distributed NCA label construction (rounds, O(n) claim)",
        ["n", "rounds"], rows))
    return rows


def test_exp_l51_label_sizes(once):
    rows = once(run_exp_l51)
    assert len(rows) == len(SHAPES) * len(SIZES)


def test_exp_l51_distributed_construction(once):
    rows = once(run_distributed_build)
    assert rows[-1][1] <= 6 * 32

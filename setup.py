"""Legacy setup shim.

The execution environment is offline with an older setuptools and no
``wheel`` package, so PEP 517 editable installs (which need bdist_wheel)
fail.  This shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` perform a classic develop install.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)

"""Minimum-degree backbones for 802.15.4-style MAC trees (Section VIII).

The paper's original motivation for MDST: in an IEEE 802.15.4 cluster
tree, a node's degree bounds the number of children it must schedule —
high-degree coordinators are bottlenecks.  A spanning tree whose maximum
degree is within +1 of the optimum spreads the load.

This script takes a dense deployment whose natural (BFS) tree is a
terrible star, runs the silent FR-tree protocol, and reports the degree
reduction plus the O(log n)-bit certificates that keep it verified.

    python examples/mdst_mac_80215.py
"""

from repro.baselines import exact_minimum_degree
from repro.core import bfs_tree
from repro.core.fr import fr_marking
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.core.tasks import guided_mdst_protocol
from repro.graphs import complete_graph
from repro.labeling.fr_pls import FRTreePLS
from repro.runtime import Simulator


def main() -> None:
    net = complete_graph(9, seed=2)
    start = bfs_tree(net)  # in a dense deployment this is a star
    print(f"deployment: n={net.n} (dense), "
          f"naive coordinator tree degree: {start.max_degree()}")

    proto = guided_mdst_protocol()
    base = MalleableTreeProtocol().legal_configuration(net, start)
    cfg = proto.initial_configuration(net)
    for v in net.nodes:
        cfg[v].update(base[v])

    sim = Simulator(net, proto, config=cfg)
    result = sim.run(max_rounds=20_000 * net.n)
    tree = tree_of_config(net, sim.config)
    marking = fr_marking(net, tree)
    opt = exact_minimum_degree(net)

    print(f"stabilized in {result.rounds} rounds, silent: {result.silent}")
    print(f"FR-tree degree: {tree.max_degree()} "
          f"(optimum: {opt}, guarantee: <= OPT + 1 = {opt + 1})")
    print(f"FR-tree verified: {marking.is_fr}")

    pls = FRTreePLS()
    bits = pls.max_label_bits(net, pls.prove(net, tree, marking))
    print(f"per-node certificate: {bits} bits (Theta(log n), "
          f"vs Omega(n log n) for the prior non-silent algorithm [16])")

    assert marking.is_fr and tree.max_degree() <= opt + 1
    print("OK")


if __name__ == "__main__":
    main()

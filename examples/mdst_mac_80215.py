"""Minimum-degree backbones for 802.15.4-style MAC trees (Section VIII).

The paper's original motivation for MDST: in an IEEE 802.15.4 cluster
tree, a node's degree bounds the number of children it must schedule —
high-degree coordinators are bottlenecks.  A spanning tree whose maximum
degree is within +1 of the optimum spreads the load.

The deployment is declared as an :class:`~repro.experiments.ExperimentSpec`
on a dense (complete) graph whose natural BFS tree is a terrible star; the
campaign runner executes the silent FR-tree protocol and records the
degree reduction plus the O(log n)-bit certificates that keep it verified.

    python examples/mdst_mac_80215.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.swap import tree_of_config
from repro.experiments import ExperimentSpec, execute

SPEC = ExperimentSpec(
    experiment="EXP-MAC",
    protocol="guided-mdst",
    topology="complete", topo_params={"n": 9, "seed": 2},
    scheduler="synchronous",
    init="bfs-tree",  # in a dense deployment this is a star
)


def main() -> None:
    record, context = execute(SPEC, root_seed=0)
    net, sim = context["net"], context["simulator"]
    start = context["start_tree"]
    m = record["metrics"]

    print(f"deployment: n={m['n']} (dense), "
          f"naive coordinator tree degree: {start.max_degree()}")
    print(f"declared scenario: {SPEC.label}")
    print(f"stabilized in {m['rounds']} rounds, silent: {m['silent']}")
    opt = m["opt_degree"]
    print(f"FR-tree degree: {m['tree_degree']} "
          f"(optimum: {opt}, guarantee: <= OPT + 1 = {opt + 1})")
    print(f"FR-tree verified: {m['is_fr']}")
    print(f"per-node certificate: {m['cert_bits']} bits (Theta(log n), "
          f"vs Omega(n log n) for the prior non-silent algorithm [16])")

    tree = tree_of_config(net, sim.config)
    assert m["is_fr"] and m["tree_degree"] <= opt + 1
    assert tree.max_degree() == m["tree_degree"]
    print("the full comparison: python -m repro campaign run --campaign mdst")
    print("OK")


if __name__ == "__main__":
    main()

"""Watching the malleable scheme absorb a switch without raising an alarm.

The heart of the paper (Section IV): the redundant (d, s) labeling can be
*pruned* so that a tree edge is exchanged for a non-tree edge while the
verifier accepts every intermediate configuration — so a silent algorithm
can tell planned mutation apart from faults.  This script shows both
sides:

1. a legal switch: label trace printed step by step, verifier happy
   throughout, and every intermediate parent map a spanning tree;
2. an actual fault (a corrupted parent pointer creating a cycle): the
   verifier pinpoints rejecting nodes, and the distributed layer rebuilds.

The random-fault ladder version of part 2 (k faults on the stabilized
guided-BFS instance, recovery effort per k) is the ``silence`` campaign:
``python -m repro campaign run --campaign silence``.

    python examples/fault_recovery_demo.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import bfs_tree
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.graphs import theta_graph
from repro.labeling.malleable import MalleablePLS
from repro.runtime import Simulator


def show(labels, net):
    cells = []
    for v in sorted(net.nodes):
        lab = labels[v]
        d = "_" if lab.d is None else lab.d
        s = "_" if lab.s is None else lab.s
        cells.append(f"{v}:({d},{s})")
    return "  ".join(cells)


def main() -> None:
    net = theta_graph([3, 4], seed=1, scramble_ids=False)
    tree = bfs_tree(net)
    pls = MalleablePLS()

    print("== part 1: a legal switch never alarms ==")
    e = tree.non_tree_edges()[0]
    f = tree.fundamental_cycle_edges(e)[-1]
    print(f"replacing tree edge {f} by non-tree edge {e}")
    trace = pls.full_switch_trace(net, tree, e, f)
    for i, cfg in enumerate(trace.configs):
        verdict = pls.verify(net, cfg)
        print(f"step {i:>2}  {show(cfg, net)}  verifier: "
              f"{'accept' if verdict.accepted else 'REJECT'}")
        assert verdict.accepted
    print(f"final tree edges: {sorted(trace.tree_after.edges())}")

    print()
    print("== part 2: a real fault alarms and heals ==")
    proto = MalleableTreeProtocol()
    sim = Simulator(net, proto, config=proto.legal_configuration(net, tree))
    assert sim.is_silent()
    victim = [v for v in net.nodes if tree.parent(v) is not None][2]
    bad_parent = [u for u in net.neighbors(victim)
                  if u != tree.parent(victim)][0]
    print(f"fault: node {victim} parent pointer corrupted to {bad_parent}")
    sim.overwrite(victim, {"par": bad_parent})
    from repro.core.swap import malleable_labels_of_config
    verdict = pls.verify(net, malleable_labels_of_config(net, sim.config))
    print(f"verifier now rejects at nodes: {list(verdict.rejecting_nodes)}")
    result = sim.run(max_rounds=200 * net.n)
    healed = tree_of_config(net, sim.config)
    print(f"healed in {result.rounds} rounds; silent: {result.silent}; "
          f"root: {healed.root}")
    assert result.silent and proto.is_legal(net, sim.config)
    print("the k-fault recovery ladder: "
          "python -m repro campaign run --campaign silence")
    print("OK")


if __name__ == "__main__":
    main()

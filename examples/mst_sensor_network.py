"""MST maintenance in a sensor network (the Section VI instantiation).

Scenario: a field of sensors with distinct link costs (energy per message)
must maintain the minimum-cost spanning backbone *and keep it verified* —
a silent algorithm lets idle sensors stop writing registers, while the
O(log^2 n)-bit certificates let any sensor detect a corrupted backbone by
looking one hop away.

The whole scenario — weighted network, poor initial backbone, transient
corruption of two sensors, re-stabilization — is *declared* as one
:class:`~repro.experiments.ExperimentSpec` (``faults=2`` makes the runner
inject the corruption after silence and measure the recovery), and
executed through the campaign runner.  The live simulator is then poked
for the narrative details the record does not carry.

    python examples/mst_sensor_network.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import kruskal_mst
from repro.core.swap import tree_of_config
from repro.experiments import ExperimentSpec, execute

SPEC = ExperimentSpec(
    experiment="EXP-SENSOR",
    protocol="guided-mst",
    topology="random",
    topo_params={"n": 12, "extra_edges": 14, "seed": 3, "weighted": True},
    scheduler="synchronous",
    init="random-tree", init_params={"seed": 5},
    faults=2,
)


def main() -> None:
    record, context = execute(SPEC, root_seed=0)
    net, sim = context["net"], context["simulator"]
    m = record["metrics"]
    print(f"sensor field: n={m['n']}, links={m['m']}")
    print(f"declared scenario: {SPEC.label}")

    tree = tree_of_config(net, sim.config)
    optimal = kruskal_mst(net)
    print(f"stabilized in {m['rounds']} rounds: "
          f"cost {m['tree_weight']} "
          f"(optimal: {net.total_weight(optimal)}), "
          f"is MST: {m['legal']}, silent: {m['silent']}")
    print(f"per-sensor certificate: {m['cert_bits']} bits "
          f"(Theta(log^2 n), optimal for silent MST verification)")

    print(f"transient fault corrupted sensors {m['fault_victims']} ...")
    print(f"recovered in {m['recovery_rounds']} rounds "
          f"({m['recovery_moves']} moves): "
          f"is MST: {m['recovered_legal']}, silent: {m['recovered_silent']}")

    assert m["legal"] and m["recovered_legal"]
    assert tree.edges() == optimal
    print("the full size ladder: python -m repro campaign run --campaign mst")
    print("OK")


if __name__ == "__main__":
    main()

"""MST maintenance in a sensor network (the Section VI instantiation).

Scenario: a field of sensors with distinct link costs (energy per message)
must maintain the minimum-cost spanning backbone *and keep it verified* —
a silent algorithm lets idle sensors stop writing registers, while the
O(log^2 n)-bit certificates let any sensor detect a corrupted backbone by
looking one hop away.

The script builds a weighted network, stabilizes the silent MST protocol
from a poor initial backbone, then severs trust by corrupting two nodes
and shows re-stabilization.

    python examples/mst_sensor_network.py
"""

from repro.baselines import kruskal_mst
from repro.core import random_spanning_tree
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.core.tasks import guided_mst_protocol
from repro.graphs import random_connected_graph
from repro.labeling.mst_pls import MSTPLS
from repro.runtime import Simulator, corrupt_random_nodes


def seeded(net, proto, tree):
    base = MalleableTreeProtocol().legal_configuration(net, tree)
    cfg = proto.initial_configuration(net)
    for v in net.nodes:
        cfg[v].update(base[v])
    return cfg


def main() -> None:
    net = random_connected_graph(12, extra_edges=14, seed=3, weighted=True)
    print(f"sensor field: n={net.n}, links={net.m}")

    proto = guided_mst_protocol()
    start = random_spanning_tree(net, seed=5, root=net.min_id)
    print(f"initial backbone cost: {start.total_weight()}")

    sim = Simulator(net, proto, config=seeded(net, proto, start))
    result = sim.run(max_rounds=20_000 * net.n)
    tree = tree_of_config(net, sim.config)
    optimal = kruskal_mst(net)
    print(f"stabilized in {result.rounds} rounds: "
          f"cost {tree.total_weight()} "
          f"(optimal: {net.total_weight(optimal)}), "
          f"is MST: {tree.edges() == optimal}, silent: {result.silent}")

    pls = MSTPLS()
    bits = pls.max_label_bits(net, pls.prove(net, tree))
    print(f"per-sensor certificate: {bits} bits "
          f"(Theta(log^2 n), optimal for silent MST verification)")

    corrupted, victims = corrupt_random_nodes(net, sim.spec, sim.config,
                                              k=2, seed=9)
    print(f"transient fault corrupts sensors {sorted(victims)} ...")
    sim2 = Simulator(net, proto, config=corrupted)
    result2 = sim2.run(max_rounds=20_000 * net.n)
    tree2 = tree_of_config(net, sim2.config)
    print(f"recovered in {result2.rounds} rounds: "
          f"is MST: {tree2.edges() == optimal}, silent: {result2.silent}")

    assert tree.edges() == optimal and tree2.edges() == optimal
    print("OK")


if __name__ == "__main__":
    main()

"""Quickstart: build a silent self-stabilizing BFS tree from chaos.

Runs the paper's framework end to end on a small random network:
start every register at adversarially corrupted values, let the composed
protocol (tree layer + PLS-guided improvement layer) run under the
synchronous daemon, and watch it reach a *silent* configuration whose
parent pointers form a BFS tree of the minimum-identity node.

    python examples/quickstart.py
"""

from repro.core.bfs import is_bfs_tree
from repro.core.swap import tree_of_config
from repro.core.tasks import guided_bfs_protocol
from repro.graphs import random_connected_graph
from repro.runtime import Simulator, max_register_bits, random_configuration


def main() -> None:
    net = random_connected_graph(12, seed=7)
    print(f"network: n={net.n}, m={net.m}, identities={list(net.nodes)}")

    protocol = guided_bfs_protocol()
    config = random_configuration(net, protocol, seed=42)  # total corruption
    sim = Simulator(net, protocol, config=config)

    result = sim.run(max_rounds=400 * net.n * net.n)
    tree = tree_of_config(net, sim.config)

    print(f"stabilized: silent={result.silent} after {result.rounds} rounds "
          f"({result.moves} moves)")
    print(f"root (elected leader): {tree.root}  (min identity: {net.min_id})")
    print(f"BFS tree: {is_bfs_tree(net, tree)}")
    print(f"max register size: "
          f"{max_register_bits(net, sim.spec, sim.config)} bits/node")
    print("parent pointers:")
    for v in sorted(net.nodes):
        print(f"  {v:>4} -> {tree.parent(v)}")

    assert result.silent and is_bfs_tree(net, tree)
    print("OK")


if __name__ == "__main__":
    main()

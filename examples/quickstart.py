"""Quickstart: build a silent self-stabilizing BFS tree from chaos.

Part 1 runs the paper's framework end to end on a small random network by
hand: start every register at adversarially corrupted values, let the
composed protocol (tree layer + PLS-guided improvement layer) run under
the synchronous daemon, and watch it reach a *silent* configuration whose
parent pointers form a BFS tree of the minimum-identity node.

Part 2 runs the *same* experiment as a declarative
:class:`~repro.experiments.ExperimentSpec` through the campaign runner —
the one-liner form every sweep in ``benchmarks/`` and the
``python -m repro`` CLI build on.

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.bfs import is_bfs_tree
from repro.core.swap import tree_of_config
from repro.core.tasks import guided_bfs_protocol
from repro.experiments import ExperimentSpec, execute
from repro.graphs import random_connected_graph
from repro.runtime import Simulator, max_register_bits, random_configuration


def manual_run() -> None:
    net = random_connected_graph(12, seed=7)
    print(f"network: n={net.n}, m={net.m}, identities={list(net.nodes)}")

    protocol = guided_bfs_protocol()
    config = random_configuration(net, protocol, seed=42)  # total corruption
    sim = Simulator(net, protocol, config=config)

    result = sim.run(max_rounds=400 * net.n * net.n)
    tree = tree_of_config(net, sim.config)

    print(f"stabilized: silent={result.silent} after {result.rounds} rounds "
          f"({result.moves} moves)")
    print(f"root (elected leader): {tree.root}  (min identity: {net.min_id})")
    print(f"BFS tree: {is_bfs_tree(net, tree)}")
    print(f"max register size: "
          f"{max_register_bits(net, sim.spec, sim.config)} bits/node")
    print("parent pointers:")
    for v in sorted(net.nodes):
        print(f"  {v:>4} -> {tree.parent(v)}")

    assert result.silent and is_bfs_tree(net, tree)


def declarative_run() -> None:
    spec = ExperimentSpec(
        experiment="EXP-QUICKSTART",
        protocol="guided-bfs",
        topology="random", topo_params={"n": 12, "seed": 7},
        scheduler="synchronous",
        init="arbitrary", init_params={"seed": 42},
    )
    record, context = execute(spec, root_seed=0)
    m = record["metrics"]
    print(f"declared:   {spec.label}")
    print(f"fingerprint {record['fingerprint']} (keys the campaign store; "
          f"reruns are skipped)")
    print(f"stabilized: silent={m['silent']} legal={m['legal']} after "
          f"{m['rounds']} rounds ({m['moves']} moves), "
          f"{m['max_register_bits']} bits/node")
    assert m["silent"] and m["legal"]
    print("scale it up: python -m repro campaign run --campaign bfs")


def main() -> None:
    print("== part 1: by hand ==")
    manual_run()
    print()
    print("== part 2: the same run, declared as campaign data ==")
    declarative_run()
    print("OK")


if __name__ == "__main__":
    main()

"""Driving the campaign CLI end to end: run, resume, status, report.

The experiment subsystem's unit of work is a *campaign*: a declarative
grid of runs with deterministic per-run seeds, fanned out over a process
pool and persisted in a resumable JSONL store.  This script exercises the
real command line (``python -m repro``) the way CI and a scaling sweep
would:

1. run the multi-protocol smoke campaign with 2 workers;
2. run it again — every run is cached by its fingerprint (0 executed);
3. show per-experiment completion (``campaign status``);
4. render the report from the store alone, in markdown.

    python examples/campaign_sweep.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")


def cli(*args: str, env_dir: str) -> str:
    cmd = [sys.executable, "-m", "repro", *args]
    proc = subprocess.run(
        cmd, cwd=env_dir, capture_output=True, text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})
    print(f"$ python -m repro {' '.join(args)}")
    sys.stdout.write(proc.stdout)
    if proc.returncode not in (0, 1):  # status exits 1 while pending
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"command failed with {proc.returncode}")
    return proc.stdout


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = "smoke.jsonl"
        print("== 1. parallel campaign run ==")
        out = cli("campaign", "run", "--smoke", "--workers", "2",
                  "--store", store, env_dir=tmp)
        assert "12 executed" in out

        print("\n== 2. rerun: resumed, nothing re-executed ==")
        out = cli("campaign", "run", "--smoke", "--store", store,
                  env_dir=tmp)
        assert "0 executed, 12 cached" in out

        print("\n== 3. status ==")
        cli("campaign", "status", "--smoke", "--store", store, env_dir=tmp)

        print("\n== 4. report, straight from the store ==")
        cli("campaign", "report", "--smoke", "--store", store,
            "--format", "markdown", env_dir=tmp)
    print("OK")


if __name__ == "__main__":
    main()

"""The experiment campaign subsystem: specs, store, executor, CLI.

Covers the contracts the orchestration layer is built on: stable
fingerprints, JSONL round-trips with torn-tail tolerance, resume without
duplicate work (including a simulated mid-campaign kill), bit-identical
results for any worker count, and the real ``python -m repro`` CLI.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    CAMPAIGNS,
    Campaign,
    ExperimentSpec,
    ResultStore,
    canonical_record,
    execute,
    experiment_subset,
    get_campaign,
    grid,
    run_campaign,
    run_spec,
)
from repro.experiments import runner
from repro.experiments.campaigns import EXCLUDED_DAEMONS

SRC = str(Path(__file__).resolve().parent.parent / "src")


def tiny_campaign(root_seed: int = 0) -> Campaign:
    specs = [
        ExperimentSpec(experiment="EXP-TINY", protocol="sst",
                       topology="ring", topo_params={"n": 6, "seed": 1},
                       scheduler=sched, init="arbitrary", replicate=rep)
        for sched in ("synchronous", "central-random")
        for rep in (0, 1)
    ]
    specs.append(ExperimentSpec(
        experiment="EXP-TINY", protocol="sst", topology="ring",
        topo_params={"n": 6, "seed": 1}, scheduler="central-min-id",
        init="arbitrary", skip="documented exclusion"))
    specs.append(ExperimentSpec(
        experiment="EXP-TINY-FAULTS", protocol="malleable-tree",
        topology="random", topo_params={"n": 8, "seed": 2},
        scheduler="synchronous", init="arbitrary", faults=2))
    return Campaign("tiny", "executor test campaign", tuple(specs),
                    root_seed)


# ----------------------------------------------------------------------
# spec model
# ----------------------------------------------------------------------

class TestSpec:
    def test_fingerprint_ignores_param_order(self):
        a = ExperimentSpec(experiment="E", protocol="sst", topology="ring",
                           topo_params={"n": 6, "seed": 1})
        b = ExperimentSpec(experiment="E", protocol="sst", topology="ring",
                           topo_params={"seed": 1, "n": 6})
        assert a == b
        assert a.fingerprint(0) == b.fingerprint(0)

    def test_fingerprint_sensitivity(self):
        base = ExperimentSpec(experiment="E", protocol="sst",
                              topology="ring", topo_params={"n": 6})
        assert base.fingerprint(0) != base.fingerprint(1)  # root seed
        bigger = ExperimentSpec(experiment="E", protocol="sst",
                                topology="ring", topo_params={"n": 7})
        assert base.fingerprint(0) != bigger.fingerprint(0)
        rep = ExperimentSpec(experiment="E", protocol="sst",
                             topology="ring", topo_params={"n": 6},
                             replicate=1)
        assert base.fingerprint(0) != rep.fingerprint(0)

    def test_dict_round_trip(self):
        spec = ExperimentSpec(experiment="E", protocol="guided-mst",
                              topology="random",
                              topo_params={"n": 8, "weighted": True},
                              init="random-tree", init_params={"seed": 1},
                              faults=3, stop="legal", max_rounds=40)
        clone = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.fingerprint(5) == spec.fingerprint(5)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            ExperimentSpec(experiment="E")  # neither protocol nor analysis
        with pytest.raises(ValueError, match="exactly one"):
            ExperimentSpec(experiment="E", protocol="sst",
                           analysis="fr-subclass")
        with pytest.raises(ValueError, match="stop"):
            ExperimentSpec(experiment="E", protocol="sst", topology="ring",
                           stop="whenever")

    def test_grid_order_and_count(self):
        combos = list(grid(a=[1, 2, 3], b=["x", "y"]))
        assert len(combos) == 6
        assert combos[0] == {"a": 1, "b": "x"}
        assert combos[-1] == {"a": 3, "b": "y"}

    def test_campaign_rejects_duplicate_runs(self):
        spec = ExperimentSpec(experiment="E", protocol="sst",
                              topology="ring", topo_params={"n": 6})
        with pytest.raises(ValueError, match="duplicate"):
            Campaign("dup", "dup", (spec, spec))

    def test_experiment_subset_shares_fingerprints(self):
        campaign = tiny_campaign()
        sub = experiment_subset(campaign, "EXP-TINY-FAULTS")
        assert len(sub) == 1
        assert set(sub.fingerprints()) <= set(campaign.fingerprints())
        with pytest.raises(KeyError):
            experiment_subset(campaign, "EXP-NOPE")

    def test_registered_campaigns_build(self):
        for name in CAMPAIGNS:
            campaign = get_campaign(name, root_seed=3)
            assert len(campaign) > 0
            assert campaign.root_seed == 3


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------

class TestRunner:
    def test_records_are_pure_functions_of_spec_and_seed(self):
        spec = tiny_campaign().specs[0]
        a, b = run_spec(spec, 0), run_spec(spec, 0)
        assert canonical_record(a) == canonical_record(b)
        assert canonical_record(a) != canonical_record(run_spec(spec, 1))

    def test_skip_spec_is_recorded_not_executed(self):
        spec = next(s for s in tiny_campaign().specs if s.skip)
        record = run_spec(spec, 0)
        assert record["metrics"] == {"skipped": "documented exclusion"}

    def test_fault_spec_records_recovery(self):
        spec = next(s for s in tiny_campaign().specs if s.faults)
        record, context = execute(spec, 0)
        m = record["metrics"]
        assert m["silent"] and m["recovered_silent"]
        assert len(m["fault_victims"]) == spec.faults
        assert context["simulator"].is_silent()

    def test_record_is_json_plain(self):
        record = run_spec(tiny_campaign().specs[0], 0)
        assert json.loads(json.dumps(record)) == record


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------

class TestStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        records = [run_spec(s, 0) for s in tiny_campaign().specs[:2]]
        for r in records:
            store.append(r)
        assert store.records() == records
        assert store.fingerprints() == {r["fingerprint"] for r in records}

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        record = run_spec(tiny_campaign().specs[0], 0)
        store.append(record)
        newer = dict(record, metrics={"moves": -1})
        store.append(newer)
        assert len(store) == 1
        assert store.by_fingerprint()[record["fingerprint"]] == newer

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        record = run_spec(tiny_campaign().specs[0], 0)
        store.append(record)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"fingerprint": "dead, torn mid-wr')  # killed here
        assert store.records() == [record]

    def test_corrupt_middle_raises(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(run_spec(tiny_campaign().specs[0], 0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"fingerprint": "x"}) + "\n")
        with pytest.raises(ValueError, match="corrupt record"):
            store.records()

    def test_canonical_strips_timing(self, tmp_path):
        store = ResultStore(None)
        record = run_spec(tiny_campaign().specs[0], 0)
        store.append(record)
        canon = store.canonical_records()[record["fingerprint"]]
        assert "timing" not in canon and "metrics" in canon


# ----------------------------------------------------------------------
# executor: parallelism, resume, interruption
# ----------------------------------------------------------------------

class TestExecutor:
    def test_worker_count_is_invisible(self, tmp_path):
        campaign = tiny_campaign()
        s1 = ResultStore(tmp_path / "w1.jsonl")
        s2 = ResultStore(tmp_path / "w2.jsonl")
        run_campaign(campaign, store=s1, workers=1)
        run_campaign(campaign, store=s2, workers=3)
        assert s1.canonical_records() == s2.canonical_records()
        # even the line *order* matches: the store file is reproducible
        fps1 = [r["fingerprint"] for r in s1.records()]
        fps2 = [r["fingerprint"] for r in s2.records()]
        assert fps1 == fps2 == campaign.fingerprints()

    def test_resume_skips_completed_work(self, tmp_path, monkeypatch):
        campaign = tiny_campaign()
        store = ResultStore(tmp_path / "r.jsonl")
        executed = []
        real = runner.run_spec

        def counting(spec, root_seed, trace_dir=None):
            executed.append(spec.fingerprint(root_seed))
            return real(spec, root_seed, trace_dir=trace_dir)

        monkeypatch.setattr(runner, "run_spec", counting)
        run_campaign(campaign, store=store, max_runs=2)
        assert len(executed) == 2
        records = run_campaign(campaign, store=store)
        assert len(executed) == len(campaign)          # no duplicate work
        assert len(records) == len(campaign)
        assert len(set(executed)) == len(executed)
        # a third pass is a no-op
        run_campaign(campaign, store=store)
        assert len(executed) == len(campaign)

    def test_kill_mid_campaign_then_rerun(self, tmp_path):
        campaign = tiny_campaign()
        reference = ResultStore(tmp_path / "ref.jsonl")
        run_campaign(campaign, store=reference)

        # simulate a campaign killed mid-write: a prefix of completed
        # records plus one torn line
        path = tmp_path / "killed.jsonl"
        with open(tmp_path / "ref.jsonl", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines[:3]) + "\n")
            fh.write(lines[3][: len(lines[3]) // 2])  # torn tail

        store = ResultStore(path)
        records = run_campaign(campaign, store=store)
        assert len(records) == len(campaign)
        fps = [r["fingerprint"] for r in store.records()]
        assert len(fps) == len(set(fps))               # no duplicates
        # identical final report data, interruption or not
        assert store.canonical_records() == reference.canonical_records()

    def test_progress_callback(self):
        seen = []
        campaign = tiny_campaign()
        run_campaign(campaign,
                     progress=lambda done, total, rec:
                     seen.append((done, total, rec["experiment"])))
        assert len(seen) == len(campaign)
        assert seen[-1][0] == seen[-1][1] == len(campaign)


# ----------------------------------------------------------------------
# campaign content sanity (fast families only)
# ----------------------------------------------------------------------

class TestCampaigns:
    def test_smoke_campaign_is_multi_protocol(self):
        campaign = get_campaign("smoke")
        protocols = {s.protocol for s in campaign.specs}
        assert {"sst", "malleable-tree", "guided-bfs"} <= protocols
        records = run_campaign(campaign)
        executed = [r for r in records if "skipped" not in r["metrics"]]
        assert all(r["metrics"]["silent"] for r in executed)

    def test_schedulers_campaign_declares_exclusions(self):
        campaign = get_campaign("schedulers")
        skipped = [s for s in campaign.specs if s.skip]
        assert {(s.protocol, s.scheduler) for s in skipped} \
            == set(EXCLUDED_DAEMONS)


# ----------------------------------------------------------------------
# the real CLI
# ----------------------------------------------------------------------

class TestCLI:
    def cli(self, *args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd, env=env, capture_output=True, text=True, timeout=300)

    def test_smoke_run_resume_status_report(self, tmp_path):
        run1 = self.cli("campaign", "run", "--smoke", "--workers", "4",
                        "--store", "s.jsonl", cwd=tmp_path)
        assert run1.returncode == 0, run1.stderr
        assert "12 executed, 0 cached" in run1.stdout

        run2 = self.cli("campaign", "run", "--smoke", "--store", "s.jsonl",
                        cwd=tmp_path)
        assert run2.returncode == 0, run2.stderr
        assert "0 executed, 12 cached" in run2.stdout

        status = self.cli("campaign", "status", "--smoke",
                          "--store", "s.jsonl", cwd=tmp_path)
        assert status.returncode == 0, status.stderr
        assert "complete" in status.stdout

        report = self.cli("campaign", "report", "--smoke",
                          "--store", "s.jsonl", cwd=tmp_path)
        assert report.returncode == 0, report.stderr
        assert "EXP-SMOKE" in report.stdout

        csv = self.cli("campaign", "report", "--smoke", "--store", "s.jsonl",
                       "--format", "csv", cwd=tmp_path)
        assert csv.returncode == 0 and "," in csv.stdout

    def test_list_names_every_campaign(self, tmp_path):
        out = self.cli("campaign", "list", cwd=tmp_path)
        assert out.returncode == 0
        for name in CAMPAIGNS:
            assert name in out.stdout

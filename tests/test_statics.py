"""``repro.statics`` — the analyzer caught red-handed, series by series.

Each rule series gets a deliberately broken fixture protocol defined in
*this* module (the analyzer follows MRO source files, so test fixtures
are first-class analysis targets): an L-series locality leak, a W-series
in-place register write, an S-series schema typo and hard-coded slot, a
D-series ambient coin flip and set iteration, and a C-series dict/slot
write divergence.  On top of the synthetic fixtures:

* the PR 1 regression — a ``GuidedMST`` variant that consults the global
  detector *without* the certificate boundary — must light up L-series
  findings on the offending layer, found purely by AST inspection,
  without executing a single move;
* the real registry must be clean (every finding waived or baselined),
  which is exactly the CI gate;
* waivers and the committed baseline must round-trip.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from pathlib import Path

from repro.certify.oracle import DigestLayer
from repro.core.sst import SpanningTreeProtocol
from repro.core.swap import MalleableTreeProtocol
from repro.core.tasks import (
    ORACLE_DIGEST_FIELDS,
    SWAP,
    WORK,
    GuidedMST,
    NCALabelLayer,
    guided_mst_protocol,
)
from repro.graphs import generators
from repro.runtime.protocol import (
    RULE_ENTRYPOINTS,
    ComposedProtocol,
    Protocol,
)
from repro.runtime.registers import NONE, RegisterSpec, counter_field
from repro.statics import analyze_protocol, analyze_registry, finalize
from repro.statics.analyzer import DEFAULT_BASELINE, analyze_runtime_bridges
from repro.statics.model import load_baseline, waiver_codes, write_baseline
from repro.statics.report import REPORT_SCHEMA, build_report, render_ascii

REPO_ROOT = Path(__file__).resolve().parents[1]

NET = generators.ring(5, seed=0, weighted=True)


def _rules(findings) -> set[str]:
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# synthetic fixtures, one per rule series
# ----------------------------------------------------------------------

class _TwoField(Protocol):
    """Shared two-register spec so fixtures stay one-method small."""

    def register_spec(self, net) -> RegisterSpec:
        return RegisterSpec([
            counter_field("x", lambda n: n.n_bound),
            counter_field("y", lambda n: n.n_bound),
        ])


class LeakyLocality(_TwoField):
    """L-series bait: a global BFS inside a 1-hop-declared rule."""

    name = "fixture-leaky"

    def step(self, view):
        dist = view.net.bfs_distances(view.net.min_id)
        want = dist[view.id] % 2
        if view["x"] != want:
            return {"x": want}
        return None


class DeclaredGlobal(LeakyLocality):
    """The same leak, but honestly declared — must not fire L-series."""

    name = "fixture-global"
    read_locality = "global"


class NeighborWriter(_TwoField):
    """W-series bait: mutates neighbor and own registers in place."""

    name = "fixture-writer"

    def step(self, view):
        for _u, st in view.nbr_states():
            st["x"] = 0
        view.state.update({"y": 1})
        return None


class SchemaTypo(_TwoField):
    """S-series bait: unknown field literal + hard-coded slot index."""

    name = "fixture-typo"

    def step(self, view):
        if view["zz"]:
            return {"x": 1}
        return None

    def fast_step_slots(self, schema):
        x = schema.slot("x")

        def rule(net, config, node, own, nbr_rows):
            if own[1]:
                return {x: 1}
            return None

        return rule


class CoinFlipper(_TwoField):
    """D-series bait: ambient RNG plus unordered-set iteration."""

    name = "fixture-coin"

    def step(self, view):
        if random.random() < 0.5:
            return {"x": (view["x"] + 1) % 2}
        for u in set(view.neighbors):
            if view.nbr(u)["x"]:
                return {"y": 1}
        return None


class DriftingPort(_TwoField):
    """C-series bait: the slots port silently drops the ``y`` write."""

    name = "fixture-drift"

    def step(self, view):
        if view["x"] != view["y"]:
            return {"x": view["y"], "y": view["y"]}
        return None

    def fast_step_slots(self, schema):
        x = schema.slot("x")
        y = schema.slot("y")

        def rule(net, config, node, own, nbr_rows):
            if own[x] != own[y]:
                return {x: own[y]}
            return None

        return rule


class WaivedLeak(_TwoField):
    """A single L001 suppressed by an inline waiver on its own line."""

    name = "fixture-waived"

    def step(self, view):
        size = view.net.n  # statics: ignore[L001] -- n is a probe constant
        if view["x"] != size % 2:
            return {"x": size % 2}
        return None


class CleanPair(_TwoField):
    """A well-formed rule: the analyzer must stay silent."""

    name = "fixture-clean"

    def step(self, view):
        lo = min((view.nbr(u)["x"] for u in view.neighbors), default=0)
        if view["x"] != lo:
            return {"x": lo}
        return None


class ProbedClean(_TwoField):
    """A clean rule plus a global-sweeping observer (the telemetry
    layer's ``probe_potential``): observers live outside the rule
    surface, so the analyzer must stay silent."""

    name = "fixture-probed"

    def step(self, view):
        lo = min((view.nbr(u)["x"] for u in view.neighbors), default=0)
        if view["x"] != lo:
            return {"x": lo}
        return None

    def probe_potential(self, net, config):
        total = 0
        for v in net.nodes:  # a global sweep — legal *in a probe*
            total += config[v]["x"]
        return total


class ProbeChaser(ProbedClean):
    """A rule that *calls* its own observer: traversal must stop at the
    observer boundary instead of flagging the probe's global sweep as a
    locality leak inside ``step``."""

    name = "fixture-probe-chaser"

    def step(self, view):
        total = self.probe_potential(view.net, view._config)
        if view["x"] != total % 2:
            return {"x": total % 2}
        return None


class UncertifiedMST(GuidedMST):
    """PR 1's bug, re-introduced on purpose: the root consults the
    global detector directly, with no ``CertifiedOracle`` boundary, while
    the layer still inherits ``read_locality = "neighborhood"``."""

    def next_phase(self, view, phase, cand):
        if phase == SWAP:
            return WORK, NONE
        net = view.net
        config = view._config
        payload = self._decide(net, config)  # no consult(): global reads leak
        if payload is None:
            return None
        return SWAP, payload


def _uncertified_protocol() -> ComposedProtocol:
    digest = DigestLayer(fields=ORACLE_DIGEST_FIELDS)
    return ComposedProtocol(
        [MalleableTreeProtocol(), NCALabelLayer(), digest,
         UncertifiedMST(digest)],
        name="uncertified-mst")


def _analyze(proto_cls):
    return analyze_protocol(proto_cls(), net=NET)


# ----------------------------------------------------------------------
# per-series detection
# ----------------------------------------------------------------------

def test_locality_fixture_fires_l001():
    findings = _analyze(LeakyLocality)
    hits = [f for f in findings if f.rule == "L001"]
    assert len(hits) >= 2  # bfs_distances and min_id
    for f in hits:
        assert f.protocol == "fixture-leaky"
        assert f.layer == "LeakyLocality"
        assert f.path == "step"
        assert f.site.file.endswith("test_statics.py")
        assert f.site.line > 0
        assert f.active


def test_honest_global_declaration_is_not_flagged():
    findings = _analyze(DeclaredGlobal)
    assert not [f for f in findings if f.series == "L"]


def test_unused_global_declaration_fires_l003():
    class LazyGlobal(CleanPair):
        name = "fixture-lazy-global"
        read_locality = "global"

    findings = analyze_protocol(LazyGlobal(), net=NET)
    assert "L003" in _rules(findings)


def test_write_ownership_fixture_fires_w_series():
    findings = _analyze(NeighborWriter)
    rules = _rules(findings)
    assert "W001" in rules  # st["x"] = 0 on a neighbor row
    assert "W002" in rules  # view.state.update(...)


def test_schema_fixture_fires_s_series():
    findings = _analyze(SchemaTypo)
    rules = _rules(findings)
    assert "S001" in rules  # view["zz"] is not a registered field
    assert "S002" in rules  # own[1] hard-codes a slot index


def test_determinism_fixture_fires_d_series():
    findings = _analyze(CoinFlipper)
    rules = _rules(findings)
    assert "D001" in rules  # random.random()
    assert "D002" in rules  # for u in set(...)


def test_consistency_fixture_fires_c002():
    findings = _analyze(DriftingPort)
    c = [f for f in findings if f.series == "C"]
    assert c and all(f.rule == "C002" for f in c)
    assert any("y" in f.message for f in c)


def test_clean_fixture_is_silent():
    assert _analyze(CleanPair) == []


def test_probe_outside_rule_surface_is_silent():
    # a global-sweeping probe_potential next to a clean step: observers
    # are not rule entrypoints, so the sweep is never even scanned
    assert _analyze(ProbedClean) == []


def test_probe_boundary_stops_traversal():
    # the rule *calls* the observer — without the boundary the probe's
    # `for v in net.nodes` sweep would fire L001 inside step's closure
    findings = _analyze(ProbeChaser)
    assert not [f for f in findings if "nodes" in f.message], findings
    assert not [f for f in findings if f.series == "L"], findings


# ----------------------------------------------------------------------
# the PR 1 regression, statically
# ----------------------------------------------------------------------

def test_uncertified_oracle_caught_without_execution():
    findings = analyze_protocol(_uncertified_protocol(), net=NET)
    leaks = [f for f in findings
             if f.series == "L" and f.layer == "UncertifiedMST"]
    assert leaks, "bypassing CertifiedOracle.consult must leak L-series"
    # the chain names the traversal from the entrypoint into the detector
    assert any("_decide" in " ".join(f.chain) or "_decide" in f.function
               for f in leaks)


def test_certified_guided_mst_is_local():
    findings = analyze_protocol(guided_mst_protocol(), net=NET)
    assert not [f for f in findings if f.series == "L"], (
        "the consult() boundary must shield the certified detector")


def test_misdeclared_guided_mst_locality_fires():
    proto = guided_mst_protocol()
    proto.layers[3].read_locality = "global"
    findings = analyze_protocol(proto, net=NET)
    assert any(f.rule == "L003" and f.layer == "GuidedMST"
               for f in findings)


# ----------------------------------------------------------------------
# waivers and baseline
# ----------------------------------------------------------------------

def test_waiver_codes_parsing():
    assert waiver_codes("x = 1  # statics: ignore[L001, D]") == {"L001", "D"}
    assert waiver_codes("x = 1  # a plain comment") == frozenset()


def test_inline_waiver_suppresses_finding():
    findings = finalize(_analyze(WaivedLeak))
    assert len(findings) == 1
    f = findings[0]
    assert f.rule == "L001" and f.waived and not f.active
    assert f.waived_at and f.waived_at.endswith(str(f.site.line))


def test_baseline_roundtrip(tmp_path):
    first = _analyze(LeakyLocality)
    assert first
    path = tmp_path / "baseline.json"
    write_baseline(path, first)
    assert load_baseline(path) == {f.fingerprint() for f in first}
    second = finalize(_analyze(LeakyLocality), baseline=path)
    assert all(f.baselined for f in second)
    assert not [f for f in second if f.active]


def test_fingerprints_are_stable_across_runs():
    a = {f.fingerprint() for f in _analyze(LeakyLocality)}
    b = {f.fingerprint() for f in _analyze(LeakyLocality)}
    assert a == b


# ----------------------------------------------------------------------
# report, contract metadata, registry gate
# ----------------------------------------------------------------------

def test_json_report_schema():
    findings = finalize(_analyze(LeakyLocality))
    report = build_report(findings, ["fixture-leaky"])
    assert report["schema"] == REPORT_SCHEMA
    assert report["tool"] == "repro.statics"
    assert report["protocols"] == ["fixture-leaky"]
    assert report["counts"]["total"] == len(findings)
    assert report["counts"]["active"] == len(findings)
    record = report["findings"][0]
    for key in ("rule", "series", "protocol", "layer", "path", "function",
                "file", "line", "message", "chain", "fingerprint", "active"):
        assert key in record
    json.dumps(report)  # must stay serializable (it is the CI artifact)
    assert "L001" in render_ascii(report)


def test_rule_contract_metadata():
    contract = SpanningTreeProtocol().rule_contract()
    assert contract["read_locality"] == "neighborhood"
    assert set(contract["entrypoints"]) == set(RULE_ENTRYPOINTS)
    assert contract["entrypoints"]["step"] is True
    assert contract["entrypoints"]["fast_step_slots"] is True
    assert contract["layers"] is None

    composed = guided_mst_protocol().rule_contract()
    layer_classes = [layer["class"] for layer in composed["layers"]]
    assert [cls.rsplit(".", 1)[-1] for cls in layer_classes] == [
        "MalleableTreeProtocol", "NCALabelLayer", "DigestLayer", "GuidedMST"]


def test_registry_is_clean():
    findings = finalize(analyze_registry(),
                        baseline=REPO_ROOT / DEFAULT_BASELINE)
    active = [f.to_json() for f in findings if f.active]
    assert not active, active
    # the known bgr-mdst global detector exists and is waived at its
    # chain call site, proving transitive waivers round-trip
    bgr = [f for f in findings if f.protocol == "bgr-mdst"]
    assert bgr and all(f.waived for f in bgr)


def test_runtime_bridges_are_clean():
    assert analyze_runtime_bridges() == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "statics", *argv],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=600)


def test_cli_check_json_gate():
    proc = _run_cli("check", "--format", "json")
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["schema"] == REPORT_SCHEMA
    assert report["counts"]["active"] == 0


def test_cli_rules_catalog():
    proc = _run_cli("rules")
    assert proc.returncode == 0
    for rule_id in ("L001", "W001", "S001", "D001", "C001"):
        assert rule_id in proc.stdout


def test_cli_unknown_protocol_is_usage_error():
    proc = _run_cli("check", "--protocol", "no-such-protocol")
    assert proc.returncode == 2
    assert "unknown protocol" in proc.stderr

"""Tests for Section VIII at the sequential level: the marking cascade,
FR-tree membership, Algorithm 4, the exact-MDST oracle, and the FR PLS
(Lemma 8.1)."""

import math

import pytest
from dataclasses import replace
from hypothesis import given, settings, strategies as st

from repro.baselines import exact_minimum_degree
from repro.baselines.exact_mdst import spanning_tree_with_max_degree
from repro.core import bfs_tree, dfs_tree, random_spanning_tree, tree_from_edges
from repro.core.fr import fr_marking, fuerer_raghavachari, is_fr_tree
from repro.graphs import (
    complete_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_connected_graph,
    ring,
    star_graph,
    theta_graph,
    wheel_graph,
)
from repro.labeling.fr_pls import FRTreePLS

SMALL = [
    ring(8, seed=1),
    path_graph(7, seed=2),
    grid_graph(3, 3, seed=3),
    theta_graph([2, 3, 4], seed=4),
    wheel_graph(8, seed=5),
    complete_graph(7, seed=6),
    random_connected_graph(10, seed=7),
    random_connected_graph(10, extra_edges=20, seed=8),
]

IDS = [f"g{i}n{n.n}" for i, n in enumerate(SMALL)]


class TestExactMDST:
    def test_path_graph_opt_2(self):
        net = path_graph(6, seed=9)
        assert exact_minimum_degree(net) == 2

    def test_star_graph_opt_is_hub_degree(self):
        net = star_graph(7, seed=10)
        assert exact_minimum_degree(net) == 6

    def test_ring_opt_2(self):
        net = ring(9, seed=11)
        assert exact_minimum_degree(net) == 2

    def test_complete_graph_hamiltonian(self):
        net = complete_graph(8, seed=12)
        assert exact_minimum_degree(net) == 2  # K_n has a Hamiltonian path

    def test_grid_is_hamiltonian(self):
        net = grid_graph(3, 4, seed=13)
        assert exact_minimum_degree(net) == 2

    def test_degree_bound_respected(self):
        net = random_connected_graph(10, seed=14)
        k = exact_minimum_degree(net)
        edges = spanning_tree_with_max_degree(net, k)
        tree = tree_from_edges(net, edges, root=net.min_id)
        assert tree.max_degree() == k
        assert spanning_tree_with_max_degree(net, k - 1) is None


class TestMarkingCascade:
    def test_low_degree_nodes_good(self):
        net = random_connected_graph(12, seed=15)
        tree = bfs_tree(net)
        m = fr_marking(net, tree)
        for v in net.nodes:
            if tree.degree(v) <= m.degree - 2:
                assert v in m.good

    def test_witnesses_only_on_formerly_bad(self):
        net = random_connected_graph(12, seed=16)
        tree = bfs_tree(net)
        m = fr_marking(net, tree)
        for x in m.witness:
            assert tree.degree(x) >= m.degree - 1
            assert x in m.good

    def test_fragments_are_connected_good_components(self):
        net = random_connected_graph(14, seed=17)
        tree = random_spanning_tree(net, seed=18)
        m = fr_marking(net, tree)
        # fragment ids are owned by members at hop distance 0
        for v in m.good:
            assert (m.fragments[v] == v) == (m.fragment_dist[v] == 0)
        by_frag = {}
        for v in m.good:
            by_frag.setdefault(m.fragments[v], set()).add(v)
        for owner, members in by_frag.items():
            assert owner in members
            assert net.is_connected_subset(members) or _tree_connected(tree, members)

    def test_hamiltonian_path_is_fr(self):
        """The paper's example: a Hamiltonian path is an FR-tree (all nodes
        of degree >= k-1 = 1 may stay bad)."""
        net = ring(8, scramble_ids=False)
        parent = {i: i - 1 if i > 1 else None for i in net.nodes}
        tree = tree_from_edges(
            net, [(i, i + 1) for i in range(1, 8)], root=1)
        assert tree.max_degree() == 2
        assert is_fr_tree(net, tree)

    def test_star_tree_in_star_graph_is_fr(self):
        """In a star graph the only spanning tree is the star: trivially FR
        (no alternative edges exist)."""
        net = star_graph(6, seed=19)
        tree = bfs_tree(net)
        assert is_fr_tree(net, tree)


def _tree_connected(tree, members):
    members = set(members)
    start = next(iter(members))
    seen = {start}
    stack = [start]
    while stack:
        x = stack.pop()
        for y in tree.tree_neighbors(x):
            if y in members and y not in seen:
                seen.add(y)
                stack.append(y)
    return seen == members


class TestAlgorithm4:
    @pytest.mark.parametrize("net", SMALL, ids=IDS)
    def test_output_is_fr_tree(self, net):
        for seed in range(3):
            run = fuerer_raghavachari(net, random_spanning_tree(net, seed=seed))
            assert is_fr_tree(net, run.tree)
            assert run.marking.is_fr

    @pytest.mark.parametrize("net", SMALL, ids=IDS)
    def test_degree_within_one_of_optimal(self, net):
        """Theorem 2.2 of [33] through our pipeline, checked against the
        exact oracle."""
        opt = exact_minimum_degree(net)
        for seed in range(3):
            run = fuerer_raghavachari(net, random_spanning_tree(net, seed=seed))
            assert run.degree <= opt + 1, (run.degree, opt)

    def test_degree_history_non_increasing(self):
        net = random_connected_graph(12, extra_edges=24, seed=20)
        run = fuerer_raghavachari(net, dfs_tree(net))
        for a, b in zip(run.degree_history, run.degree_history[1:]):
            assert b <= a

    def test_improves_bad_initial_tree(self):
        """A star-ish DFS tree of a dense graph has a high degree; FR must
        bring it within +1 of optimal."""
        net = complete_graph(10, seed=21)
        start = bfs_tree(net)  # in K_n the BFS tree is a star: degree n-1
        assert start.max_degree() == net.n - 1
        run = fuerer_raghavachari(net, start)
        assert run.degree <= 3  # OPT = 2 (Hamiltonian path)

    def test_lollipop(self):
        net = lollipop_graph(6, 4, seed=22)
        opt = exact_minimum_degree(net)
        run = fuerer_raghavachari(net)
        assert run.degree <= opt + 1

    def test_hypercube(self):
        net = hypercube_graph(3, seed=23)
        run = fuerer_raghavachari(net)
        assert run.degree <= exact_minimum_degree(net) + 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_graphs_property(self, seed):
        net = random_connected_graph(9, extra_edges=seed % 12,
                                     seed=seed % 500)
        run = fuerer_raghavachari(net, random_spanning_tree(net, seed=seed))
        assert is_fr_tree(net, run.tree)
        assert run.degree <= exact_minimum_degree(net) + 1


class TestFRTreePLS:
    """Lemma 8.1: O(log n)-bit certificates for FR-trees."""

    def _fr_instance(self, net, seed=0):
        run = fuerer_raghavachari(net, random_spanning_tree(net, seed=seed))
        return run.tree, run.marking

    @pytest.mark.parametrize("net", SMALL, ids=IDS)
    def test_prover_accepted(self, net):
        tree, marking = self._fr_instance(net)
        pls = FRTreePLS()
        labels = pls.prove(net, tree, marking)
        res = pls.verify(net, labels)
        assert res.accepted, res.rejecting_nodes

    def test_prove_rejects_non_fr_tree(self):
        net = complete_graph(8, seed=24)
        star = bfs_tree(net)
        assert not is_fr_tree(net, star)
        with pytest.raises(ValueError, match="FR-tree"):
            FRTreePLS().prove(net, star)

    def test_good_degree_k_node_rejected(self):
        net = random_connected_graph(12, extra_edges=18, seed=25)
        tree, marking = self._fr_instance(net)
        pls = FRTreePLS()
        labels = pls.prove(net, tree, marking)
        hot = [v for v in net.nodes if tree.degree(v) == marking.degree][0]
        bad = dict(labels)
        bad[hot] = replace(bad[hot], good=True,
                           frag=hot, fdist=0)
        assert not pls.verify(net, bad)

    def test_inflated_degree_claim_rejected(self):
        """Claiming k = real degree + 1 breaks the dk_dist owner chain:
        nobody has degree k, so no node can hold dk_dist = 0."""
        net = random_connected_graph(12, seed=26)
        tree, marking = self._fr_instance(net)
        pls = FRTreePLS()
        labels = pls.prove(net, tree, marking)
        bad = {v: replace(lab, k=lab.k + 1) for v, lab in labels.items()}
        assert not pls.verify(net, bad)

    def test_ghost_fragment_id_rejected(self):
        net = random_connected_graph(12, seed=27)
        tree, marking = self._fr_instance(net)
        pls = FRTreePLS()
        labels = pls.prove(net, tree, marking)
        good_nodes = [v for v in net.nodes if labels[v].good]
        if not good_nodes:
            pytest.skip("instance has no good nodes")
        v = good_nodes[0]
        bad = dict(labels)
        bad[v] = replace(bad[v], frag=0, fdist=3)  # nobody owns id 0
        assert not pls.verify(net, bad)

    def test_cross_fragment_edge_rejected(self):
        """Forging two fragment ids across a graph edge between good nodes
        violates Definition 8.1 (3) and is caught at an endpoint."""
        net = random_connected_graph(14, extra_edges=20, seed=28)
        tree, marking = self._fr_instance(net)
        pls = FRTreePLS()
        labels = pls.prove(net, tree, marking)
        # find a graph edge between good nodes
        pair = None
        for u, v in net.edges:
            if labels[u].good and labels[v].good:
                pair = (u, v)
                break
        if pair is None:
            pytest.skip("no good-good edge in this instance")
        u, v = pair
        bad = dict(labels)
        bad[v] = replace(bad[v], frag=v, fdist=0)
        assert not pls.verify(net, bad)

    def test_label_bits_logarithmic(self):
        pls = FRTreePLS()
        for n in (8, 16, 32):
            net = random_connected_graph(n, seed=29)
            tree, marking = self._fr_instance(net)
            labels = pls.prove(net, tree, marking)
            bits = pls.max_label_bits(net, labels)
            assert bits <= 10 * math.log2(net.id_space) + 20


class TestFRSubclassStrictness:
    """Context for Proposition 8.1: FR-trees are a strict subclass of the
    degree-(OPT+1) spanning trees — some near-optimal trees are NOT
    FR-trees, which is why the PLS certifies FR-ness, not near-optimality."""

    def test_near_optimal_non_fr_tree_exists(self):
        found = False
        for seed in range(60):
            net = random_connected_graph(8, extra_edges=6, seed=seed)
            opt = exact_minimum_degree(net)
            for tseed in range(6):
                t = random_spanning_tree(net, seed=tseed)
                if t.max_degree() == opt + 1 and not is_fr_tree(net, t):
                    found = True
                    break
            if found:
                break
        assert found, "expected some degree-(OPT+1) tree that is not FR"

    def test_fr_trees_always_within_one(self):
        for seed in range(20):
            net = random_connected_graph(8, extra_edges=seed % 10, seed=seed)
            opt = exact_minimum_degree(net)
            for tseed in range(4):
                t = random_spanning_tree(net, seed=tseed)
                if is_fr_tree(net, t):
                    assert t.max_degree() <= opt + 1

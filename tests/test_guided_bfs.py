"""End-to-end distributed reproduction of the Section III example:
silent self-stabilizing PLS-guided BFS construction (Theorem 3.1 instance).

The composed protocol (malleable tree layer + phase layer) must, from any
initial configuration, reach a silent configuration whose tree is a BFS
tree of the min-identity root — improving the tree through Section IV
switches chosen by the potential's local detector along the way.
"""

import math

import pytest

from repro.core import bfs_tree, dfs_tree
from repro.core.bfs import is_bfs_tree
from repro.core.swap import MalleableTreeProtocol, tree_of_config
from repro.core.tasks import guided_bfs_protocol
from repro.graphs import (
    grid_graph,
    lollipop_graph,
    random_connected_graph,
    ring,
    theta_graph,
)
from repro.runtime import (
    CentralRandomScheduler,
    DistributedRandomScheduler,
    Simulator,
    StarvingScheduler,
    SynchronousScheduler,
    corrupt_random_nodes,
    max_register_bits,
    random_configuration,
)

NETS = [
    ring(8, seed=1),
    grid_graph(3, 3, seed=2),
    theta_graph([3, 4], seed=3),
    lollipop_graph(4, 3, seed=4),
    random_connected_graph(10, seed=5),
]

IDS = [f"g{i}n{n.n}" for i, n in enumerate(NETS)]


def legal_config_with_tree(net, tree):
    """A configuration whose tree layer encodes ``tree`` with correct
    labels but whose task layer starts at defaults."""
    proto = guided_bfs_protocol()
    base = MalleableTreeProtocol().legal_configuration(net, tree)
    cfg = proto.initial_configuration(net)
    for v in net.nodes:
        cfg[v].update(base[v])
    return proto, cfg


class TestGuidedBFSConvergence:
    @pytest.mark.parametrize("net", NETS, ids=IDS)
    def test_from_non_bfs_tree(self, net):
        """Start from a legal but non-BFS tree: the task layer must drive
        Section IV switches until the tree is BFS."""
        start = dfs_tree(net)
        proto, cfg = legal_config_with_tree(net, start)
        sim = Simulator(net, proto, SynchronousScheduler(), config=cfg)
        result = sim.run(max_rounds=400 * net.n * net.n)
        assert result.silent
        tree = tree_of_config(net, sim.config)
        assert is_bfs_tree(net, tree)

    @pytest.mark.parametrize("net", NETS, ids=IDS)
    def test_from_arbitrary_configuration(self, net):
        proto = guided_bfs_protocol()
        for seed in range(3):
            cfg = random_configuration(net, proto, seed=seed)
            sim = Simulator(net, proto, config=cfg)
            result = sim.run(max_rounds=400 * net.n * net.n)
            assert result.silent, seed
            tree = tree_of_config(net, sim.config)
            assert is_bfs_tree(net, tree), seed

    def test_already_bfs_is_silent_quickly(self):
        net = random_connected_graph(12, seed=6)
        proto, cfg = legal_config_with_tree(net, bfs_tree(net))
        sim = Simulator(net, proto, config=cfg)
        result = sim.run(max_rounds=10 * net.n)
        assert result.silent
        assert tree_of_config(net, sim.config).same_edges(bfs_tree(net))

    @pytest.mark.parametrize("make_sched", [
        lambda: SynchronousScheduler(),
        lambda: CentralRandomScheduler(seed=7),
        lambda: DistributedRandomScheduler(0.5, seed=8),
        lambda: StarvingScheduler(None, seed=9),
    ], ids=["sync", "central", "distributed", "starving"])
    def test_under_schedulers(self, make_sched):
        net = grid_graph(3, 3, seed=10)
        start = dfs_tree(net)
        proto, cfg = legal_config_with_tree(net, start)
        sim = Simulator(net, proto, make_sched(), config=cfg)
        result = sim.run(max_rounds=3000 * net.n)
        assert result.silent
        assert is_bfs_tree(net, tree_of_config(net, sim.config))

    def test_fault_recovery(self):
        net = random_connected_graph(10, seed=11)
        proto = guided_bfs_protocol()
        sim = Simulator(net, proto,
                        config=random_configuration(net, proto, seed=12))
        sim.run(max_rounds=400 * net.n * net.n)
        corrupted, _ = corrupt_random_nodes(net, sim.spec, sim.config,
                                            k=3, seed=13)
        sim2 = Simulator(net, proto, config=corrupted)
        result = sim2.run(max_rounds=400 * net.n * net.n)
        assert result.silent
        assert is_bfs_tree(net, tree_of_config(net, sim2.config))

    def test_silence_certified(self):
        net = theta_graph([3, 4], seed=14)
        proto, cfg = legal_config_with_tree(net, dfs_tree(net))
        sim = Simulator(net, proto, config=cfg)
        sim.run(max_rounds=400 * net.n * net.n)
        assert sim.confirm_silent()


class TestGuidedBFSComplexity:
    def test_register_bits_logarithmic(self):
        for n in (8, 16, 32):
            net = random_connected_graph(n, seed=15)
            proto, cfg = legal_config_with_tree(net, dfs_tree(net))
            sim = Simulator(net, proto, config=cfg)
            sim.run(max_rounds=400 * n * n)
            bits = max_register_bits(net, sim.spec, sim.config)
            assert bits <= 20 * math.log2(net.id_space) + 40

    def test_loop_free_throughout(self):
        """The tree-layer invariant holds across the whole guided run."""
        net = lollipop_graph(4, 3, seed=16)

        def invariant(n, cfg):
            try:
                tree_of_config(n, cfg)
                return True
            except ValueError:
                return False

        proto, cfg = legal_config_with_tree(net, dfs_tree(net))
        sim = Simulator(net, proto, SynchronousScheduler(), config=cfg,
                        invariant=invariant)
        result = sim.run(max_rounds=400 * net.n * net.n)
        assert result.silent
        assert result.invariant_violations == 0

    def test_root_stays_min_id(self):
        net = random_connected_graph(12, seed=17)
        proto, cfg = legal_config_with_tree(net, dfs_tree(net))
        sim = Simulator(net, proto, config=cfg)
        sim.run(max_rounds=400 * net.n * net.n)
        assert tree_of_config(net, sim.config).root == net.min_id

"""The deterministic-seeding contract for parallel experiment workers.

Three properties keep campaign records a pure function of
``(spec, root seed)``:

1. no helper on the run path reads or writes module-level ``random``
   state;
2. every randomized helper accepts an injected :class:`random.Random`
   (and its legacy ``seed=`` path draws exactly what it always did);
3. concurrent runs sharing a process never perturb each other — two
   interleaved runs reproduce two isolated runs bit for bit.
"""

import random

from repro.core.sst import SpanningTreeProtocol
from repro.experiments import ExperimentSpec, canonical_record, run_spec
from repro.graphs import generators, random_connected_graph, ring
from repro.runtime import (
    CentralRandomScheduler,
    Simulator,
    corrupt_random_nodes,
    inject_random_faults,
    random_configuration,
)


def _net():
    return random_connected_graph(10, seed=3)


def _sim(sched_seed: int, cfg_seed: int):
    net = _net()
    proto = SpanningTreeProtocol()
    cfg = random_configuration(net, proto, seed=cfg_seed)
    return Simulator(net, proto, CentralRandomScheduler(seed=sched_seed),
                     config=cfg)


def _run_isolated(sched_seed: int, cfg_seed: int):
    sim = _sim(sched_seed, cfg_seed)
    result = sim.run(max_rounds=100_000)
    return result.moves, sim.config


def test_interleaved_runs_reproduce_isolated_runs():
    moves_a, config_a = _run_isolated(1, 11)
    moves_b, config_b = _run_isolated(2, 22)

    # same two runs, their rounds interleaved in one process
    sim_a, sim_b = _sim(1, 11), _sim(2, 22)
    progressed = True
    while progressed:
        progressed = sim_a.run_round() | sim_b.run_round()
    assert sim_a.is_silent() and sim_b.is_silent()
    assert (sim_a.moves, sim_a.config) == (moves_a, config_a)
    assert (sim_b.moves, sim_b.config) == (moves_b, config_b)


def test_run_path_never_touches_global_random():
    random.seed(1234)
    before = random.getstate()
    spec = ExperimentSpec(experiment="EXP-TEST", protocol="sst",
                          topology="ring", topo_params={"n": 6, "seed": 1},
                          scheduler="central-random", init="arbitrary",
                          faults=2)
    record = run_spec(spec, root_seed=7)
    assert record["metrics"]["silent"]
    assert random.getstate() == before

    # and seeding the global RNG differently changes nothing in the record
    random.seed(999)
    assert canonical_record(run_spec(spec, root_seed=7)) \
        == canonical_record(record)


def test_random_configuration_rng_matches_seed_path():
    net = _net()
    proto = SpanningTreeProtocol()
    assert random_configuration(net, proto, seed=5) == \
        random_configuration(net, proto, rng=random.Random(5))


def test_corrupt_random_nodes_rng_matches_seed_path():
    net = _net()
    proto = SpanningTreeProtocol()
    spec = proto.register_spec(net)
    cfg = proto.initial_configuration(net)
    by_seed = corrupt_random_nodes(net, spec, cfg, k=3, seed=9)
    by_rng = corrupt_random_nodes(net, spec, cfg, k=3,
                                  rng=random.Random(9))
    assert by_seed == by_rng


def test_inject_random_faults_rng_precedence():
    sim1 = _sim(1, 11)
    sim2 = _sim(1, 11)
    v1 = inject_random_faults(sim1, k=3, seed=4)
    v2 = inject_random_faults(sim2, k=3, rng=random.Random(4))
    assert v1 == v2 and sim1.config == sim2.config

    # seed=None falls back to the simulator's own injected stream
    sim3, sim4 = _sim(1, 11), _sim(1, 11)
    sim3.rng = random.Random(77)
    sim4.rng = random.Random(77)
    assert inject_random_faults(sim3, k=2, seed=None) == \
        inject_random_faults(sim4, k=2, seed=None)
    assert sim3.config == sim4.config


def test_generators_accept_injected_rng():
    for name in generators.__all__:
        fn = getattr(generators, name)
        if name == "grid_graph":
            a, b = fn(3, 4, rng=random.Random(2)), fn(3, 4, rng=random.Random(2))
        elif name == "lollipop_graph":
            a, b = fn(4, 3, rng=random.Random(2)), fn(4, 3, rng=random.Random(2))
        elif name == "caterpillar_graph":
            a, b = fn(4, 2, rng=random.Random(2)), fn(4, 2, rng=random.Random(2))
        elif name == "hypercube_graph":
            a, b = fn(3, rng=random.Random(2)), fn(3, rng=random.Random(2))
        elif name == "theta_graph":
            a, b = (fn([3, 4], rng=random.Random(2)),
                    fn([3, 4], rng=random.Random(2)))
        else:
            a, b = fn(8, rng=random.Random(2)), fn(8, rng=random.Random(2))
        assert a.nodes == b.nodes and a.edges == b.edges, name


def test_single_stage_generator_rng_matches_seed_path():
    # generators whose seed path feeds one Random into _build draw the
    # same instance from rng=Random(seed)
    a, b = ring(8, seed=3), ring(8, rng=random.Random(3))
    assert a.nodes == b.nodes and a.edges == b.edges
    a = generators.complete_graph(6, seed=4, weighted=True)
    b = generators.complete_graph(6, rng=random.Random(4), weighted=True)
    assert a.nodes == b.nodes and a.weights == b.weights
